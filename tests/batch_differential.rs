//! The lane-batched differential gate: a `BatchSession` must be
//! **bit-identical** to per-destination solo runs — outputs *and* step
//! accounting — at every lane count and on every backend, including the
//! fault-injection, step-budget, and cancellation paths. A degraded
//! lane (cancelled, over budget, corrupted) must never perturb its
//! batchmates.
//!
//! The CI `batch` job greps this suite's summary line
//! (`batched_bit_identical: true`) out of the run, so keep the final
//! assertion message stable.

use ppa_graph::{gen, WeightMatrix};
use ppa_machine::faults::{FaultMap, SwitchFault};
use ppa_machine::{CancelToken, Coord};
use ppa_mcp::batch::{replicate, BatchSession, LaneLimit};
use ppa_mcp::mcp::McpOutput;
use ppa_mcp::{McpError, McpSession};
use ppa_ppc::Ppa;

/// The lane-count axis of the differential matrix: a degenerate batch,
/// a small one, a word-sized one, and the 64-lane maximum.
const LANE_COUNTS: [usize; 4] = [1, 3, 8, 64];

/// Solo oracle: a fresh scalar machine pinned to the batch's word width
/// (the bit-serial `min` cost scales with `h`, so stats only compare
/// across equal widths).
fn solo(w: &WeightMatrix, d: usize, word_bits: u32) -> McpOutput {
    let ppa = Ppa::square(w.n()).with_word_bits(word_bits);
    McpSession::from_ppa(ppa, w)
        .and_then(|mut s| s.solve(d))
        .expect("solo oracle run")
}

fn wavefront(n: usize, lanes: usize) -> Vec<usize> {
    (0..lanes).map(|l| l % n).collect()
}

fn assert_wave_matches_solo(
    w: &WeightMatrix,
    dests: &[usize],
    word_bits: u32,
    wave: Vec<Result<McpOutput, McpError>>,
    label: &str,
) {
    for (l, out) in wave.into_iter().enumerate() {
        let got = out.unwrap_or_else(|e| panic!("{label}: lane {l} failed: {e}"));
        let want = solo(w, dests[l], word_bits);
        assert_eq!(got, want, "{label}: lane {l} destination {}", dests[l]);
    }
}

#[test]
fn packed_batches_are_bit_identical_at_every_lane_count() {
    let n = 6;
    let w = gen::random_connected(n, 0.35, 12, 31);
    for lanes in LANE_COUNTS {
        let mut batch =
            BatchSession::new_packed(&replicate(&w, lanes)).expect("batch construction");
        let dests = wavefront(n, lanes);
        let wave = batch.solve(&dests).expect("batched solve");
        assert_wave_matches_solo(
            &w,
            &dests,
            batch.word_bits(),
            wave,
            &format!("packed x{lanes}"),
        );
    }
}

#[test]
fn threaded_batches_are_bit_identical_at_every_lane_count() {
    let n = 6;
    let w = gen::random_connected(n, 0.35, 12, 31);
    for lanes in LANE_COUNTS {
        let mut batch =
            BatchSession::new_threaded(&replicate(&w, lanes), 3).expect("batch construction");
        let dests = wavefront(n, lanes);
        let wave = batch.solve(&dests).expect("batched solve");
        assert_wave_matches_solo(
            &w,
            &dests,
            batch.word_bits(),
            wave,
            &format!("threaded x{lanes}"),
        );
    }
}

#[test]
fn scalar_batches_are_bit_identical_at_small_lane_counts() {
    // The scalar backend is the semantics oracle; keep its quadratic
    // cost in check by stopping at 8 lanes.
    let n = 6;
    let w = gen::random_connected(n, 0.35, 12, 31);
    for lanes in [1usize, 3, 8] {
        let mut batch = BatchSession::new(&replicate(&w, lanes)).expect("batch construction");
        let dests = wavefront(n, lanes);
        let wave = batch.solve(&dests).expect("batched solve");
        assert_wave_matches_solo(
            &w,
            &dests,
            batch.word_bits(),
            wave,
            &format!("scalar x{lanes}"),
        );
    }
}

#[test]
fn independent_graphs_solve_like_their_solo_twins() {
    // Phase 2 of the tentpole: every lane a *different* problem.
    let graphs: Vec<WeightMatrix> = (0..8)
        .map(|s| gen::random_digraph(7, 0.4, 11, 100 + s))
        .collect();
    let mut batch = BatchSession::new_packed(&graphs).expect("batch construction");
    let h = batch.word_bits();
    let dests: Vec<usize> = (0..8).map(|l| (l * 3) % 7).collect();
    let wave = batch.solve(&dests).expect("batched solve");
    for (l, out) in wave.into_iter().enumerate() {
        let got = out.unwrap_or_else(|e| panic!("lane {l} failed: {e}"));
        assert_eq!(got, solo(&graphs[l], dests[l], h), "lane {l}");
    }
}

#[test]
fn batched_all_pairs_pads_ragged_wavefronts_correctly() {
    let w = gen::random_digraph(7, 0.35, 9, 12);
    let solo_ap = McpSession::new(&w)
        .and_then(|mut s| s.all_pairs())
        .expect("solo all-pairs");
    // lanes > n (every wave padded) and lanes that leave a ragged tail.
    for lanes in [3usize, 8] {
        let mut batch = BatchSession::new_packed(&replicate(&w, lanes)).expect("batch");
        // Word widths agree automatically: both fit the same graph.
        assert_eq!(
            batch.word_bits(),
            McpSession::new(&w).unwrap().ppa().word_bits()
        );
        let ap = batch.all_pairs().expect("batched all-pairs");
        assert_eq!(ap, solo_ap, "lanes={lanes}");
    }
}

#[test]
fn empty_fault_map_leaves_batches_bit_identical() {
    let n = 6;
    let w = gen::random_connected(n, 0.3, 10, 77);
    let dests = wavefront(n, 3);
    let mut healthy = BatchSession::new_packed(&replicate(&w, 3)).expect("batch");
    let want = healthy.solve(&dests).expect("healthy solve");
    let mut faulted = BatchSession::new_packed(&replicate(&w, 3)).expect("batch");
    faulted
        .ppa_mut()
        .machine_mut()
        .attach_faults(FaultMap::new());
    let got = faulted.solve(&dests).expect("empty-map solve");
    for (l, (a, b)) in want.into_iter().zip(got).enumerate() {
        assert_eq!(a.unwrap(), b.unwrap(), "lane {l}");
    }
}

#[test]
fn stuck_open_fault_corrupts_only_its_own_lane() {
    // A StuckOpen switch adds a spurious bus head. Planted inside lane
    // 1's column window it can re-partition lane 1's buses, but no
    // cluster it creates can cross a lane boundary — the neighbouring
    // lanes' results must stay bit-identical to solo runs.
    let n = 6;
    let w = gen::random_connected(n, 0.35, 12, 5);
    let dests = wavefront(n, 3);
    let mut batch = BatchSession::new_packed(&replicate(&w, 3)).expect("batch");
    let h = batch.word_bits();
    let mut fm = FaultMap::new();
    fm.inject(Coord::new(2, n + 1), SwitchFault::StuckOpen); // lane 1, interior
    batch.ppa_mut().machine_mut().attach_faults(fm);
    let wave = batch.solve_verified(&dests).expect("machine-level success");
    for l in [0usize, 2] {
        let got = wave[l]
            .clone()
            .unwrap_or_else(|e| panic!("healthy lane {l} failed: {e}"));
        assert_eq!(got, solo(&w, dests[l], h), "healthy lane {l}");
    }
    // Lane 1 is allowed any fate but a silent wrong answer: the
    // verified solve either catches the corruption or the fault was
    // benign for these bus patterns and the result is exact.
    match &wave[1] {
        Ok(out) => assert_eq!(
            out.sow,
            solo(&w, dests[1], h).sow,
            "faulty lane went undetected"
        ),
        Err(e) => assert!(e.indicates_corruption(), "unexpected lane-1 error: {e}"),
    }
}

#[test]
fn lane_budgets_reproduce_solo_step_limits_exactly() {
    let n = 6;
    let w = gen::random_connected(n, 0.3, 10, 9);
    let lanes = 3;
    let probe = BatchSession::new_packed(&replicate(&w, lanes)).expect("batch");
    let h = probe.word_bits();
    // The true solo cost of destination 1 on a fresh machine.
    let mut session = McpSession::from_ppa(Ppa::square(n).with_word_bits(h), &w).expect("session");
    session.solve(1).expect("full solve");
    let full = session.into_ppa().steps().total();

    for budget in [4u64, full / 2, full - 1, full] {
        let mut solo_ppa = Ppa::square(n).with_word_bits(h);
        solo_ppa.limit_steps(budget);
        let want = McpSession::from_ppa(solo_ppa, &w).and_then(|mut s| s.solve(1));

        let mut batch = BatchSession::new_packed(&replicate(&w, lanes)).expect("batch");
        let limits = vec![
            LaneLimit::unlimited(),
            LaneLimit {
                step_budget: Some(budget),
                ..LaneLimit::default()
            },
            LaneLimit::unlimited(),
        ];
        let wave = batch
            .solve_with(&[0, 1, 2], &limits)
            .expect("batched solve");
        match (&wave[1], &want) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "budget {budget}"),
            (Err(a), Err(b)) => assert_eq!(a, b, "budget {budget}"),
            (got, want) => panic!("budget {budget}: batch {got:?} vs solo {want:?}"),
        }
        // The limited lane's fate never leaks into its batchmates.
        for l in [0usize, 2] {
            let got = wave[l]
                .clone()
                .unwrap_or_else(|e| panic!("budget {budget}: lane {l} failed: {e}"));
            assert_eq!(got, solo(&w, l, h), "budget {budget}: lane {l}");
        }
    }
}

#[test]
fn cancelled_lane_resolves_typed_without_perturbing_batchmates() {
    let n = 6;
    let w = gen::random_connected(n, 0.35, 12, 21);
    for lanes in [3usize, 8] {
        let mut batch = BatchSession::new_packed(&replicate(&w, lanes)).expect("batch");
        let h = batch.word_bits();
        let token = CancelToken::new();
        token.cancel();
        let mut limits = vec![LaneLimit::unlimited(); lanes];
        limits[1].cancel = Some(token);
        let dests = wavefront(n, lanes);
        let wave = batch.solve_with(&dests, &limits).expect("batched solve");
        assert!(
            wave[1].as_ref().is_err_and(|e| e.is_cancelled()),
            "lanes={lanes}: cancelled lane must fail typed, got {:?}",
            wave[1]
        );
        for (l, out) in wave.into_iter().enumerate() {
            if l == 1 {
                continue;
            }
            let got = out.unwrap_or_else(|e| panic!("lanes={lanes}: lane {l} failed: {e}"));
            assert_eq!(got, solo(&w, dests[l], h), "lanes={lanes}: lane {l}");
        }
    }
}

/// The summary assertion the CI `batch` job greps for. Re-runs a small
/// slice of the matrix end to end so the greppable line attests an
/// actual differential pass, not just compilation.
#[test]
fn batch_gate_summary() {
    let n = 6;
    let w = gen::random_connected(n, 0.35, 12, 31);
    let mut identical = true;
    for lanes in [1usize, 3, 8] {
        let mut batch = BatchSession::new_packed(&replicate(&w, lanes)).expect("batch");
        let h = batch.word_bits();
        let dests = wavefront(n, lanes);
        let wave = batch.solve(&dests).expect("batched solve");
        for (l, out) in wave.into_iter().enumerate() {
            identical &= out.expect("lane result") == solo(&w, dests[l], h);
        }
    }
    println!("batched_bit_identical: {identical}");
    assert!(identical, "batched_bit_identical: false");
}
