//! Integration: every architecture computes the same answer, and the
//! step counts show the complexity shapes of the paper's comparison
//! (the substance behind experiment T4).

#![allow(clippy::needless_range_loop)]
use ppa_baselines::{all_solvers, Gcn, Hypercube, PlainMesh, SequentialBf};
use ppa_suite::prelude::*;

#[test]
fn all_architectures_agree_with_ppa_on_random_graphs() {
    for seed in 0..12u64 {
        let n = 7 + seed as usize % 8;
        let w = gen::random_digraph(n, 0.3, 12, seed);
        let d = seed as usize % n;
        let mut ppa = Ppa::square(n).with_word_bits(fit_word_bits(&w));
        let out = minimum_cost_path(&mut ppa, &w, d).unwrap();
        let mut expect = out.sow.clone();
        expect[d] = 0;
        for solver in all_solvers(16) {
            let mut got = solver.solve(&w, d).dist;
            got[d] = 0;
            assert_eq!(got, expect, "{} seed {seed}", solver.name());
        }
    }
}

#[test]
fn all_architectures_agree_on_iteration_counts() {
    // The outer dynamic program is identical everywhere, so the number of
    // improving rounds must match across every model.
    let w = gen::random_connected(14, 0.12, 10, 3);
    let seq = SequentialBf::new().solve(&w, 2);
    let mesh = PlainMesh::new(12).solve(&w, 2);
    let cube = Hypercube::new(12).solve(&w, 2);
    let gcn = Gcn::new(12).solve(&w, 2);
    assert_eq!(seq.iterations, mesh.iterations);
    assert_eq!(seq.iterations, cube.iterations);
    assert_eq!(seq.iterations, gcn.iterations);
}

/// Fits `ln`-scaling family: measures step growth from n to 4n on a
/// p-fixed workload and classifies it.
fn growth(word_steps: impl Fn(usize) -> u64) -> f64 {
    let a = word_steps(8) as f64;
    let b = word_steps(32) as f64;
    b / a
}

#[test]
fn complexity_shapes_flat_log_linear_quadratic() {
    let star = |n: usize| gen::star(n, 0, 5, 1); // p = 1 for every n
    let h = 16;

    // PPA (bit-serial buses): flat in n.
    let ppa_steps = |n: usize| {
        let w = star(n);
        let mut ppa = Ppa::square(n).with_word_bits(h);
        minimum_cost_path(&mut ppa, &w, 0)
            .unwrap()
            .stats
            .total
            .total()
    };
    let g = growth(ppa_steps);
    assert!((0.9..1.1).contains(&g), "PPA growth {g}");

    // GCN: flat in n.
    let g = growth(|n| Gcn::new(h).solve(&star(n), 0).bit_steps);
    assert!((0.9..1.1).contains(&g), "GCN growth {g}");

    // Hypercube: log n — steps grow by ~log(32)/log(8) = 5/3.
    let g = growth(|n| Hypercube::new(h).solve(&star(n), 0).word_steps);
    assert!((1.2..2.2).contains(&g), "hypercube growth {g}");

    // Plain mesh: linear — about 4x.
    let g = growth(|n| PlainMesh::new(h).solve(&star(n), 0).word_steps);
    assert!((3.0..5.0).contains(&g), "mesh growth {g}");

    // Sequential: quadratic — about 16x.
    let g = growth(|n| SequentialBf::new().solve(&star(n), 0).word_steps);
    assert!((12.0..20.0).contains(&g), "sequential growth {g}");
}

#[test]
fn ppa_and_gcn_share_the_h_scaling() {
    // The paper's equivalence claim, in bit-steps: both scale linearly
    // with the word width.
    let w = gen::ring(10);
    let mut ppa8 = Ppa::square(10).with_word_bits(8);
    let mut ppa32 = Ppa::square(10).with_word_bits(32);
    let p8 = minimum_cost_path(&mut ppa8, &w, 0)
        .unwrap()
        .stats
        .total
        .total() as f64;
    let p32 = minimum_cost_path(&mut ppa32, &w, 0)
        .unwrap()
        .stats
        .total
        .total() as f64;
    let ppa_ratio = p32 / p8;

    let g8 = Gcn::new(8).solve(&w, 0).bit_steps as f64;
    let g32 = Gcn::new(32).solve(&w, 0).bit_steps as f64;
    let gcn_ratio = g32 / g8;

    assert!((1.5..4.2).contains(&ppa_ratio), "ppa {ppa_ratio}");
    assert!((1.5..4.2).contains(&gcn_ratio), "gcn {gcn_ratio}");
    // And they track each other within a factor.
    assert!(
        (ppa_ratio / gcn_ratio - 1.0).abs() < 0.5,
        "{ppa_ratio} vs {gcn_ratio}"
    );
}

#[test]
fn crossover_hypercube_vs_ppa_depends_on_h_vs_log_n() {
    // In bit-steps: PPA costs ~c1 * p * h; bit-serial hypercube costs
    // ~c2 * p * h * log n. The hypercube should therefore lose ground as
    // n grows with h fixed.
    let h = 16;
    let per_iter = |n: usize| {
        let w = gen::star(n, 0, 5, 1);
        let mut ppa = Ppa::square(n).with_word_bits(h);
        let ppa_steps = minimum_cost_path(&mut ppa, &w, 0)
            .unwrap()
            .stats
            .total
            .total();
        let cube = Hypercube::new(h).solve(&w, 0).bit_steps;
        cube as f64 / ppa_steps as f64
    };
    let small = per_iter(8);
    let large = per_iter(64);
    assert!(
        large > small,
        "hypercube/PPA bit-step ratio must grow with n: {small} -> {large}"
    );
}

#[test]
fn unreachable_vertices_agree_everywhere() {
    let w = gen::path(9); // strictly one-directional chain
    let d = 4;
    let mut ppa = Ppa::square(9).with_word_bits(8);
    let out = minimum_cost_path(&mut ppa, &w, d).unwrap();
    for solver in all_solvers(8) {
        let r = solver.solve(&w, d);
        for i in 0..9 {
            assert_eq!(
                r.dist[i] == INF,
                out.sow[i] == INF && i != d,
                "{} vertex {i}",
                solver.name()
            );
        }
    }
}
