//! Property-based tests over the whole stack (proptest).
//!
//! Strategy-level invariants:
//! * bus laws — broadcast is cluster-constant and idempotent, the wired
//!   OR equals the per-cluster fold, reversing a shift twice restores the
//!   interior;
//! * combination laws — the bit-serial `min`/`max` equal the per-cluster
//!   reference folds for arbitrary values, masks and directions;
//! * algorithm laws — MCP cost vectors equal Bellman-Ford on arbitrary
//!   digraphs, `PTN` chains re-sum to their claimed costs, and the
//!   interpreted PPC program agrees with the native implementation;
//! * engine laws — threaded execution is bit-identical to sequential.

#![allow(clippy::needless_range_loop)]
use ppa_suite::prelude::*;
use proptest::prelude::*;

/// An arbitrary direction.
fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

/// An arbitrary small weighted digraph as an edge list.
fn digraph(max_n: usize) -> impl Strategy<Value = WeightMatrix> {
    (2..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1i64..30), 0..(n * n));
        edges.prop_map(move |es| {
            let mut m = WeightMatrix::new(n);
            for (i, j, w) in es {
                if i != j {
                    m.set(i, j, w);
                }
            }
            m
        })
    })
}

/// A value plane and an Open mask guaranteed to drive every line for the
/// given direction (at least the first line position is open).
fn plane_and_mask(n: usize) -> impl Strategy<Value = (Vec<i64>, Vec<bool>)> {
    (
        proptest::collection::vec(0i64..=255, n * n),
        proptest::collection::vec(any::<bool>(), n * n),
    )
}

fn force_driver(dim: Dim, dir: Direction, open: &mut Parallel<bool>) {
    // Ensure every line has at least one Open node.
    let axis = dir.axis();
    for line in 0..dim.lines(axis) {
        let mut any = false;
        for pos in 0..dim.line_len(axis) {
            let idx = dim.line_index(dir, line, pos);
            if open.as_slice()[idx] {
                any = true;
                break;
            }
        }
        if !any {
            let idx = dim.line_index(dir, line, 0);
            open.as_mut_slice()[idx] = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn broadcast_is_cluster_constant_and_idempotent(
        (vals, mask) in plane_and_mask(6),
        dir in direction(),
    ) {
        let n = 6;
        let dim = Dim::square(n);
        let mut ppa = Ppa::square(n).with_word_bits(8);
        let src = Parallel::from_vec(dim, vals);
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);

        let once = ppa.broadcast(&src, dir, &open).unwrap();
        // Idempotence: broadcasting the broadcast changes nothing.
        let twice = ppa.broadcast(&once, dir, &open).unwrap();
        prop_assert_eq!(&once, &twice);
        // Every Open node holds its own value.
        for (c, &is_open) in open.enumerate() {
            if is_open {
                prop_assert_eq!(once.get(c), src.get(c));
            }
        }
    }

    #[test]
    fn bus_or_equals_cluster_fold(
        (vals, mask) in plane_and_mask(5),
        dir in direction(),
    ) {
        let n = 5;
        let dim = Dim::square(n);
        let mut ppa = Ppa::square(n);
        let bits = Parallel::from_vec(dim, vals.iter().map(|v| v % 2 == 0).collect());
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);

        let got = ppa.bus_or(&bits, dir, &open).unwrap();
        // Reference fold via cluster heads.
        let heads = ppa_machine::bus::cluster_heads(dim, dir, &open).unwrap();
        let mut acc = vec![false; dim.len()];
        for (i, &h) in heads.iter().enumerate() {
            if bits.as_slice()[i] {
                acc[h] = true;
            }
        }
        for (i, &h) in heads.iter().enumerate() {
            prop_assert_eq!(got.as_slice()[i], acc[h]);
        }
    }

    #[test]
    fn min_equals_cluster_reference(
        (vals, mask) in plane_and_mask(6),
        dir in direction(),
    ) {
        let n = 6;
        let dim = Dim::square(n);
        let mut ppa = Ppa::square(n).with_word_bits(8);
        let src = Parallel::from_vec(dim, vals);
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);

        let got = ppa.min(&src, dir, &open).unwrap();
        let maxed = ppa.max(&src, dir, &open).unwrap();
        let heads = ppa_machine::bus::cluster_heads(dim, dir, &open).unwrap();
        let mut best = vec![i64::MAX; dim.len()];
        let mut worst = vec![i64::MIN; dim.len()];
        for (i, &h) in heads.iter().enumerate() {
            best[h] = best[h].min(src.as_slice()[i]);
            worst[h] = worst[h].max(src.as_slice()[i]);
        }
        for (i, &h) in heads.iter().enumerate() {
            prop_assert_eq!(got.as_slice()[i], best[h], "min at {}", i);
            prop_assert_eq!(maxed.as_slice()[i], worst[h], "max at {}", i);
        }
    }

    #[test]
    fn shift_round_trip_preserves_interior(vals in proptest::collection::vec(0i64..100, 25)) {
        let dim = Dim::square(5);
        let mut ppa = Ppa::square(5);
        let src = Parallel::from_vec(dim, vals);
        let east = ppa.shift(&src, Direction::East, -1).unwrap();
        let back = ppa.shift(&east, Direction::West, -1).unwrap();
        for (c, &v) in src.enumerate() {
            if c.col < 4 {
                prop_assert_eq!(*back.get(c), v);
            }
        }
    }

    #[test]
    fn mcp_cost_vector_equals_bellman_ford(w in digraph(9), d_pick in 0usize..9) {
        let d = d_pick % w.n();
        let out = minimum_cost_path_auto(&w, d).unwrap();
        let oracle = reference::bellman_ford_to_dest(&w, d);
        let mut expect = oracle.dist.clone();
        expect[d] = 0;
        prop_assert_eq!(&out.sow, &expect);
        prop_assert!(validate::is_valid_solution(&w, d, &out.sow, &out.ptn));
    }

    #[test]
    fn ptn_paths_resum_to_sow(w in digraph(8), d_pick in 0usize..8) {
        let d = d_pick % w.n();
        let out = minimum_cost_path_auto(&w, d).unwrap();
        for (src, p) in all_paths(&out) {
            prop_assert_eq!(path_cost(&w, &p), Some(out.sow[src]));
        }
    }

    #[test]
    fn interpreted_ppc_agrees_with_native(w in digraph(7), d_pick in 0usize..7) {
        let d = d_pick % w.n();
        let h = fit_word_bits(&w).clamp(2, 62);
        let mut ippa = Ppa::square(w.n()).with_word_bits(h);
        let interp = run_minimum_cost_path(&mut ippa, &w, d).unwrap();
        let mut nppa = Ppa::square(w.n()).with_word_bits(h);
        let native = ppa_mcp::minimum_cost_path(&mut nppa, &w, d).unwrap();
        prop_assert_eq!(&interp.sow, &native.sow);
    }

    #[test]
    fn threaded_equals_sequential(w in digraph(8), threads in 2usize..5) {
        let d = 0;
        let h = fit_word_bits(&w).clamp(2, 62);
        let mut seq = Ppa::square(w.n()).with_word_bits(h);
        let a = ppa_mcp::minimum_cost_path(&mut seq, &w, d).unwrap();
        let mut thr = Ppa::square_with_mode(w.n(), ExecMode::threaded(threads)).with_word_bits(h);
        let b = ppa_mcp::minimum_cost_path(&mut thr, &w, d).unwrap();
        prop_assert_eq!(a.sow, b.sow);
        prop_assert_eq!(a.stats.total, b.stats.total);
    }

    #[test]
    fn baselines_agree_with_oracle(w in digraph(8), d_pick in 0usize..8) {
        let d = d_pick % w.n();
        let oracle = reference::bellman_ford_to_dest(&w, d);
        for solver in all_solvers(fit_word_bits(&w).max(8)) {
            let got = solver.solve(&w, d);
            prop_assert_eq!(&got.dist[..], &oracle.dist[..], "{}", solver.name());
        }
    }

    #[test]
    fn closure_matches_floyd_warshall_reachability(w in digraph(7)) {
        let mut ppa = Ppa::square(w.n());
        let tc = transitive_closure(&mut ppa, &w).unwrap();
        let fw = reference::floyd_warshall(&w);
        for i in 0..w.n() {
            for j in 0..w.n() {
                prop_assert_eq!(tc[i][j], fw[i][j] != INF);
            }
        }
    }
}
