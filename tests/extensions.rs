//! Integration tests for the extension layers: the widest-path semiring
//! variant, the boolean specializations, the collective toolbox, fault
//! injection, and the ablation variants — all across crate boundaries.

#![allow(clippy::needless_range_loop)]
use ppa_machine::faults::{bist_patterns, FaultMap, SwitchFault};
use ppa_mcp::closure::hop_levels;
use ppa_mcp::variants::{minimum_cost_path_variant, BusModel, MinModel, VariantConfig};
use ppa_mcp::widest::{widest_path, widest_path_oracle};
use ppa_suite::prelude::*;
use ppc_lang::programs;

fn machine_for(w: &WeightMatrix) -> Ppa {
    Ppa::square(w.n()).with_word_bits(fit_word_bits(w).clamp(4, 62))
}

#[test]
fn widest_and_shortest_disagree_when_they_should() {
    // Wide detour vs narrow shortcut: shortest takes the direct edge,
    // widest the detour.
    let w = WeightMatrix::from_edges(3, &[(0, 2, 2), (0, 1, 9), (1, 2, 8)]);
    let mut a = machine_for(&w);
    let cheap = minimum_cost_path(&mut a, &w, 2).unwrap();
    let mut b = machine_for(&w);
    let wide = widest_path(&mut b, &w, 2).unwrap();
    assert_eq!(cheap.ptn[0], 2, "shortest goes direct (cost 2)");
    assert_eq!(wide.ptn[0], 1, "widest detours (bottleneck 8)");
}

#[test]
fn widest_sweep_against_oracle() {
    for seed in 0..15u64 {
        let n = 6 + seed as usize % 7;
        let w = gen::random_digraph(n, 0.35, 25, seed);
        let d = seed as usize % n;
        let mut ppa = machine_for(&w);
        let out = widest_path(&mut ppa, &w, d).unwrap();
        let oracle = widest_path_oracle(&w, d);
        for i in 0..n {
            if i != d {
                assert_eq!(out.cap[i], oracle[i], "seed {seed} vertex {i}");
            }
        }
    }
}

#[test]
fn three_implementations_of_widest_agree() {
    let w = gen::random_connected(9, 0.2, 30, 17);
    let d = 4;
    let mut a = machine_for(&w);
    let native = widest_path(&mut a, &w, d).unwrap();
    let mut b = machine_for(&w);
    let interpreted = programs::run_widest_path(&mut b, &w, d).unwrap();
    let oracle = widest_path_oracle(&w, d);
    for i in 0..9 {
        if i != d {
            assert_eq!(native.cap[i], oracle[i], "native vs oracle at {i}");
            assert_eq!(interpreted[i], oracle[i], "interpreted vs oracle at {i}");
        }
    }
}

#[test]
fn hop_levels_lower_bound_weighted_paths() {
    // With weights >= 1, cost(i) >= hops(i); with unit weights, equality.
    let w = gen::random_connected(12, 0.2, 9, 8);
    let mut a = Ppa::square(12);
    let hops = hop_levels(&mut a, &w, 0).unwrap();
    let mut b = machine_for(&w);
    let mcp = minimum_cost_path(&mut b, &w, 0).unwrap();
    for i in 1..12 {
        match hops.level[i] {
            None => assert_eq!(mcp.sow[i], INF),
            Some(h) => assert!(mcp.sow[i] >= h as i64, "vertex {i}"),
        }
    }

    let unit = gen::ring(9);
    let mut c = Ppa::square(9);
    let hops = hop_levels(&mut c, &unit, 0).unwrap();
    let mut d = machine_for(&unit);
    let mcp = minimum_cost_path(&mut d, &unit, 0).unwrap();
    for i in 1..9 {
        assert_eq!(hops.level[i].map(|h| h as i64), Some(mcp.sow[i]));
    }
}

#[test]
fn collective_toolbox_composes_with_algorithms() {
    // Use count_line to compute out-degrees on the machine and compare
    // with the matrix view.
    let w = gen::random_digraph(10, 0.3, 9, 3);
    let mut ppa = Ppa::square(10).with_word_bits(8);
    let adj = Parallel::from_fn(ppa.dim(), |c| w.has_edge(c.row, c.col));
    let deg = ppa.count_line(&adj, Direction::East).unwrap();
    for i in 0..10 {
        assert_eq!(*deg.at(i, 0), w.out_degree(i) as i64, "vertex {i}");
    }
    // leader() finds each row's first neighbour.
    let col = ppa.col_index();
    let nm1 = ppa.constant(9i64);
    let l = ppa.eq(&col, &nm1).unwrap();
    let has_any = (0..10).all(|i| w.out_degree(i) > 0);
    if has_any {
        let lead = ppa.leader(&adj, Direction::West, &l).unwrap();
        for i in 0..10 {
            let first = (0..10).find(|&j| w.has_edge(i, j)).unwrap() as i64;
            assert_eq!(*lead.at(i, 0), first, "vertex {i}");
        }
    }
}

#[test]
fn ablation_variants_agree_on_all_families() {
    let configs = [
        VariantConfig::reference(),
        VariantConfig {
            bus: BusModel::Linear,
            min: MinModel::BitSerial,
        },
        VariantConfig {
            bus: BusModel::Circular,
            min: MinModel::Word,
        },
        VariantConfig {
            bus: BusModel::Linear,
            min: MinModel::Word,
        },
    ];
    for family in [
        gen::Family::Sparse,
        gen::Family::Ring,
        gen::Family::Geometric,
    ] {
        let w = family.build(8, 12, 55);
        let mut reference: Option<Vec<Weight>> = None;
        for config in configs {
            let mut ppa = machine_for(&w);
            let out = minimum_cost_path_variant(&mut ppa, &w, 3, config).unwrap();
            match &reference {
                None => reference = Some(out.sow.clone()),
                Some(r) => assert_eq!(&out.sow, r, "{family:?} {config:?}"),
            }
        }
    }
}

#[test]
fn single_stuck_fault_never_escapes_bist() {
    let dim = ppa_machine::Dim::square(6);
    let patterns = bist_patterns(dim);
    for r in 0..6 {
        for c in 0..6 {
            for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                let mut fm = FaultMap::new();
                fm.inject(Coord::new(r, c), fault);
                assert!(
                    patterns.iter().any(|p| fm.distorts(p)),
                    "({r},{c}) {fault:?}"
                );
            }
        }
    }
}

#[test]
fn faulty_statement_10_configuration_is_detected_or_corrupts() {
    // For the MCP switch patterns, any distorting fault either produces
    // a machine-level bus fault (detected) or changes some PE's read.
    let dim = ppa_machine::Dim::square(5);
    let d = 2;
    let intended = ppa_machine::Plane::from_fn(dim, |c| c.row == d);
    let src = ppa_machine::Plane::from_fn(dim, |c| (c.row * 5 + c.col) as i64);
    let healthy =
        ppa_machine::bus::broadcast(ExecMode::Sequential, dim, &src, Direction::South, &intended)
            .unwrap();
    for r in 0..5 {
        for c in 0..5 {
            for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                let mut fm = FaultMap::new();
                fm.inject(Coord::new(r, c), fault);
                if !fm.distorts(&intended) {
                    continue;
                }
                let effective = fm.apply(&intended);
                match ppa_machine::bus::broadcast(
                    ExecMode::Sequential,
                    dim,
                    &src,
                    Direction::South,
                    &effective,
                ) {
                    Err(_) => {} // undriven line -> surfaced as an error
                    Ok(faulty) => {
                        assert_ne!(
                            healthy, faulty,
                            "distorting fault at ({r},{c}) {fault:?} had no observable effect"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn widest_matches_across_word_widths() {
    let w = gen::random_connected(8, 0.25, 20, 9);
    let mut a = Ppa::square(8).with_word_bits(8);
    let x = widest_path(&mut a, &w, 1).unwrap();
    let mut b = Ppa::square(8).with_word_bits(20);
    let y = widest_path(&mut b, &w, 1).unwrap();
    // Capacities are width-independent (only `MAXINT` at d differs).
    for i in 0..8 {
        if i != 1 {
            assert_eq!(x.cap[i], y.cap[i], "vertex {i}");
        }
    }
}
