//! Three-way differential conformance suite for the threaded backend:
//! random programs and random graphs must produce identical results AND
//! identical step reports on [`ThreadedBackend`], [`PackedBackend`], and
//! the scalar reference — at every tested thread count {1, 2, 3, 8},
//! including runs with injected faults and step budgets.
//!
//! Thread count is a host-side tuning knob; the simulated machine must
//! not be able to observe it. Every threaded runtime here is built with
//! `min_parallel = 0` so even these small arrays go through the worker
//! pool rendezvous rather than the inline fast path.

use ppa_graph::gen;
use ppa_machine::{
    Dim, Direction, ExecMode, Machine, PackedBackend, ThreadedBackend, TransientFaults,
};
use ppa_mcp::mcp::{fit_word_bits, minimum_cost_path};
use ppa_ppc::{Parallel, Ppa};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A threaded PPC runtime that always exercises the worker pool.
fn threaded_ppa(n: usize, h: u32, threads: usize) -> Ppa<ThreadedBackend> {
    Ppa::from_machine(Machine::with_backend(
        Dim::square(n),
        ExecMode::Sequential,
        ThreadedBackend::with_min_parallel(threads, 0),
    ))
    .with_word_bits(h)
}

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

/// Ensures every line has at least one Open node so the collectives never
/// trip the all-lines-driven guardrail.
fn force_driver(dim: Dim, dir: Direction, open: &mut Parallel<bool>) {
    let axis = dir.axis();
    for line in 0..dim.lines(axis) {
        let any =
            (0..dim.line_len(axis)).any(|pos| open.as_slice()[dim.line_index(dir, line, pos)]);
        if !any {
            let idx = dim.line_index(dir, line, 0);
            open.as_mut_slice()[idx] = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn collectives_match_scalar_and_packed_at_every_thread_count(
        args in (3usize..=7).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0i64..=255, n * n),
                proptest::collection::vec(any::<bool>(), n * n),
            )
        }),
        dir in direction(),
        h in 4u32..=10,
    ) {
        let (n, vals, mask) = args;
        let dim = Dim::square(n);
        let cap = (1i64 << h) - 1;
        let vals: Vec<i64> = vals.into_iter().map(|v| v.min(cap)).collect();
        let src = Parallel::from_vec(dim, vals);
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);

        let mut s = Ppa::square(n).with_word_bits(h);
        let mut p = Ppa::<PackedBackend>::packed(n).with_word_bits(h);
        let min_s = s.min(&src, dir, &open).unwrap();
        let max_s = s.max(&src, dir, &open).unwrap();
        let min_p = p.min(&src, dir, &open).unwrap();
        let max_p = p.max(&src, dir, &open).unwrap();
        prop_assert_eq!(&min_s, &min_p);
        prop_assert_eq!(&max_s, &max_p);

        for threads in THREAD_COUNTS {
            let mut t = threaded_ppa(n, h, threads);
            let min_t = t.min(&src, dir, &open).unwrap();
            let max_t = t.max(&src, dir, &open).unwrap();
            prop_assert_eq!(&min_t, &min_s, "min diverged at {} threads", threads);
            prop_assert_eq!(&max_t, &max_s, "max diverged at {} threads", threads);
            prop_assert_eq!(t.steps(), s.steps(), "steps diverged at {} threads", threads);
        }
    }

    #[test]
    fn mcp_matches_scalar_and_packed_at_every_thread_count(
        (n, seed) in (4usize..=8, 0u64..1000),
        dest_pick in 0usize..8,
    ) {
        let w = gen::random_digraph(n, 0.4, 15, seed);
        let h = fit_word_bits(&w).clamp(2, 62);
        let d = dest_pick % n;

        let mut s = Ppa::square(n).with_word_bits(h);
        let a = minimum_cost_path(&mut s, &w, d).unwrap();
        let mut p = Ppa::<PackedBackend>::packed(n).with_word_bits(h);
        let b = minimum_cost_path(&mut p, &w, d).unwrap();
        prop_assert_eq!(&a.sow, &b.sow);
        prop_assert_eq!(&a.ptn, &b.ptn);
        prop_assert_eq!(s.steps(), p.steps());

        for threads in THREAD_COUNTS {
            let mut t = threaded_ppa(n, h, threads);
            let c = minimum_cost_path(&mut t, &w, d).unwrap();
            prop_assert_eq!(&c.sow, &a.sow, "sow diverged at {} threads", threads);
            prop_assert_eq!(&c.ptn, &a.ptn, "ptn diverged at {} threads", threads);
            prop_assert_eq!(c.iterations, a.iterations);
            prop_assert_eq!(t.steps(), s.steps(), "steps diverged at {} threads", threads);
        }
    }

    #[test]
    fn transient_faults_land_identically_at_every_thread_count(
        seed in 0u64..500,
        p_fault in prop_oneof![Just(0.002f64), Just(0.01), Just(1.0)],
    ) {
        let n = 6;
        let w = gen::random_connected(n, 0.45, 9, seed);
        let h = fit_word_bits(&w).clamp(2, 62);

        let mut s = Ppa::square(n).with_word_bits(h);
        s.machine_mut()
            .attach_transient_faults(TransientFaults::new(p_fault, seed));
        let want = minimum_cost_path(&mut s, &w, 0);

        for threads in THREAD_COUNTS {
            let mut t = threaded_ppa(n, h, threads);
            t.machine_mut()
                .attach_transient_faults(TransientFaults::new(p_fault, seed));
            let got = minimum_cost_path(&mut t, &w, 0);
            // Fault routing lives on the issue side, so the corrupted
            // run — success or failure — must be bit-identical too.
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.sow, &b.sow, "faulty sow diverged at {} threads", threads);
                    prop_assert_eq!(&a.ptn, &b.ptn, "faulty ptn diverged at {} threads", threads);
                }
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "faulty error diverged at {} threads", threads
                ),
                (a, b) => prop_assert!(
                    false,
                    "divergent fault outcome at {} threads: {:?} vs {:?}", threads, a, b
                ),
            }
            prop_assert_eq!(t.steps(), s.steps());
        }
    }

    #[test]
    fn step_budgets_exhaust_on_the_same_step_at_every_thread_count(
        seed in 0u64..200,
        budget in 5u64..400,
    ) {
        let n = 6;
        let w = gen::random_connected(n, 0.45, 9, seed);
        let h = fit_word_bits(&w).clamp(2, 62);

        let mut s = Ppa::square(n).with_word_bits(h);
        s.limit_steps(budget);
        let want = minimum_cost_path(&mut s, &w, 0);
        let want_left = s.steps_remaining();

        for threads in THREAD_COUNTS {
            let mut t = threaded_ppa(n, h, threads);
            t.limit_steps(budget);
            let got = minimum_cost_path(&mut t, &w, 0);
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.sow, &b.sow);
                    prop_assert_eq!(&a.ptn, &b.ptn);
                }
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "budget error diverged at {} threads", threads
                ),
                (a, b) => prop_assert!(
                    false,
                    "divergent budget outcome at {} threads: {:?} vs {:?}", threads, a, b
                ),
            }
            // Exhaustion lands on the same controller step: the budget
            // left over must agree exactly, not just the error kind.
            prop_assert_eq!(t.steps_remaining(), want_left, "at {} threads", threads);
            prop_assert_eq!(t.steps(), s.steps());
        }
    }
}
