//! Cross-architecture observability: the PPA and every comparator model
//! (hypercube, GCN, plain mesh, sequential) emit profiles through the
//! *same* ppa-obs API, on the same bit-step time axis, with the same
//! structural invariants — balanced span traces whose step totals match
//! the architecture's own accounting, and a `steps.total` counter that
//! agrees with the trace clock.

use ppa_obs::{MemorySink, Metrics, Recorder};
use ppa_suite::prelude::*;

/// One architecture's observed run: its trace, its metrics, the step total
/// it reports through its native accounting, and its distance vector.
struct Profile {
    name: &'static str,
    sink: MemorySink,
    metrics: Metrics,
    native_steps: u64,
    dist: Vec<Weight>,
}

fn ppa_profile(w: &WeightMatrix, d: usize) -> Profile {
    let mut ppa = Ppa::square(w.n()).with_word_bits(fit_word_bits(w).clamp(4, 62));
    let sink = MemorySink::new();
    ppa.install_sink(sink.clone());
    ppa.enable_metrics();
    let out = minimum_cost_path(&mut ppa, w, d).unwrap();
    let metrics = ppa.take_metrics();
    let _ = ppa.take_sink();
    let mut dist = out.sow.clone();
    dist[d] = 0;
    Profile {
        name: "ppa",
        sink,
        metrics,
        native_steps: out.stats.total.total(),
        dist,
    }
}

fn baseline_profile(solver: &dyn McpSolver, w: &WeightMatrix, d: usize) -> Profile {
    let sink = MemorySink::new();
    let mut rec = Recorder::new(sink.clone());
    let out = solver.solve_observed(w, d, Some(&mut rec));
    let mut dist = out.dist.clone();
    dist[d] = 0;
    Profile {
        name: solver.name(),
        sink,
        metrics: rec.finish(),
        native_steps: out.bit_steps,
        dist,
    }
}

#[test]
fn every_architecture_profiles_through_the_same_api() {
    let w = gen::random_connected(9, 0.3, 15, 11);
    let d = 4;

    let mut profiles = vec![ppa_profile(&w, d)];
    for solver in all_solvers(fit_word_bits(&w).clamp(4, 62)) {
        profiles.push(baseline_profile(solver.as_ref(), &w, d));
    }
    assert_eq!(profiles.len(), 5);

    let reference = profiles[0].dist.clone();
    for p in &profiles {
        // Observation never perturbs the answer.
        assert_eq!(p.dist, reference, "{} disagrees", p.name);

        // The trace is balanced and its clock covers exactly the steps the
        // architecture accounts for natively (controller steps for the
        // PPA, bit-steps for the baselines — one shared time axis).
        assert!(p.sink.balanced(), "{}: unbalanced trace", p.name);
        assert_eq!(p.sink.total_steps(), p.native_steps, "{}", p.name);
        assert_eq!(
            p.metrics.counter("steps.total"),
            p.native_steps,
            "{}",
            p.name
        );
        assert!(p.native_steps > 0, "{}: nothing ran", p.name);

        // Every architecture exposes its outer loop as iteration spans...
        let totals = p.sink.span_totals();
        assert!(
            totals.iter().any(|(path, _)| path.contains("iteration[0]")),
            "{}: no iteration span in {totals:?}",
            p.name
        );
        // ...and a steps-per-iteration histogram under the shared naming
        // scheme (`mcp.*` for the PPA controller, `solver.*` for the
        // self-clocked baseline recorders).
        let hist = p
            .metrics
            .histogram("mcp.steps_per_iteration")
            .or_else(|| p.metrics.histogram("solver.steps_per_iteration"))
            .unwrap_or_else(|| panic!("{}: no iteration histogram", p.name));
        assert!(hist.count > 0, "{}", p.name);

        // The snapshot every architecture produces is the same JSON shape.
        let back = Metrics::from_json(&p.metrics.to_json()).unwrap();
        assert_eq!(back, p.metrics, "{}", p.name);
    }
}
