//! Integration: the interpreted PPC programs against the native runtime.
//!
//! The paper's validation path was "write it in PPC, simulate it"; ours
//! adds a second, independently coded implementation (the native Rust one)
//! and demands agreement between the two on every workload.

#![allow(clippy::needless_range_loop)]
use ppa_suite::prelude::*;
use ppc_lang::programs;

fn machine_for(w: &WeightMatrix) -> Ppa {
    Ppa::square(w.n()).with_word_bits(fit_word_bits(w).clamp(2, 62))
}

#[test]
fn interpreted_and_native_agree_across_families() {
    for family in gen::Family::ALL {
        let w = family.build(8, 10, 31);
        for d in [0, 3, 7] {
            let mut ippa = machine_for(&w);
            let interp = programs::run_minimum_cost_path(&mut ippa, &w, d).unwrap();
            let mut nppa = machine_for(&w);
            let native = minimum_cost_path(&mut nppa, &w, d).unwrap();
            assert_eq!(interp.sow, native.sow, "family {} dest {d}", family.label());
            assert!(
                validate::is_valid_solution(&w, d, &interp.sow, &interp.ptn),
                "family {} dest {d}",
                family.label()
            );
        }
    }
}

#[test]
fn interpreted_iteration_structure_matches_native() {
    // Same do-while structure => same number of global-or step records.
    let w = gen::ring(7);
    let mut ippa = machine_for(&w);
    programs::run_minimum_cost_path(&mut ippa, &w, 0).unwrap();
    let mut nppa = machine_for(&w);
    minimum_cost_path(&mut nppa, &w, 0).unwrap();
    use ppa_machine::Op;
    assert_eq!(
        ippa.machine().controller().steps(Op::GlobalOr),
        nppa.machine().controller().steps(Op::GlobalOr),
        "both must run the same number of do-while iterations"
    );
    assert_eq!(
        ippa.machine().controller().steps(Op::BusOr),
        nppa.machine().controller().steps(Op::BusOr),
        "bit-serial scans must issue identical wired-OR counts"
    );
}

#[test]
fn min_routine_from_source_equals_builtin_across_shapes() {
    for (n, h, salt) in [(3usize, 6u32, 1u64), (5, 8, 2), (8, 10, 3)] {
        let mut spa = Ppa::square(n).with_word_bits(h);
        let values = Parallel::from_fn(spa.dim(), |c| {
            ((c.row as u64 * 97 + c.col as u64 * 31 + salt) % (1 << h.min(10))) as i64
        });
        let from_source = programs::run_min_routine(&mut spa, &values).unwrap();

        let mut bpa = Ppa::square(n).with_word_bits(h);
        let col = bpa.col_index();
        let nm1 = bpa.constant(n as i64 - 1);
        let l = bpa.eq(&col, &nm1).unwrap();
        let builtin = bpa.min(&values, Direction::West, &l).unwrap();
        assert_eq!(from_source, builtin, "n={n} h={h}");
    }
}

#[test]
fn source_programs_type_check() {
    ppc_lang::parse(programs::MINIMUM_COST_PATH).unwrap();
    ppc_lang::parse(programs::MIN_ROUTINE).unwrap();
}

#[test]
fn lexer_parser_sema_reject_malformed_variants() {
    // A sweep of broken versions of the real program must fail in the
    // right phase.
    let bad_token = programs::MIN_ROUTINE.replace("enable", "en$able");
    assert!(matches!(
        ppc_lang::parse(&bad_token),
        Err(e) if e.phase == ppc_lang::error::Phase::Lex
    ));

    let bad_syntax = programs::MIN_ROUTINE.replace("for (", "for ((");
    assert!(matches!(
        ppc_lang::parse(&bad_syntax),
        Err(e) if e.phase == ppc_lang::error::Phase::Parse
    ));

    let bad_types = programs::MIN_ROUTINE.replace("L = COL == N - 1;", "L = COL + 1;");
    assert!(matches!(
        ppc_lang::parse(&bad_types),
        Err(e) if e.phase == ppc_lang::error::Phase::Sema
    ));
}

#[test]
fn interpreter_surfaces_bus_faults_with_positions() {
    // Broadcasting with an all-Short mask leaves every line undriven.
    let src = "parallel int x; x = broadcast(x, SOUTH, ROW == N);";
    let program = ppc_lang::parse(src).unwrap();
    let mut ppa = Ppa::square(3);
    let mut interp = ppc_lang::Interpreter::new(&mut ppa);
    let err = interp.run(&program).unwrap_err();
    assert_eq!(err.phase, ppc_lang::error::Phase::Runtime);
    assert!(err.message.contains("bus fault"), "{err}");
}

#[test]
fn interpreted_reachability_program() {
    // The boolean DP written directly in PPC: does j reach d?
    let src = r#"
        parallel logical A;      // adjacency, preloaded: A[i][j] = edge i -> j
        int d;
        parallel logical REACH;
        parallel logical NEW;
        logical go;
        // Init: REACH[d][i] = edge i -> d (column d folded through the
        // diagonal into row d, as in the MCP initialization).
        where (ROW == d)
            REACH = broadcast(broadcast(A, EAST, COL == d), SOUTH, ROW == COL);
        do {
            // Column j carries "j reaches d"; a row-wide wired-OR asks
            // "does any successor of i reach d?".
            NEW = or(A && broadcast(REACH, SOUTH, ROW == d), WEST, COL == N - 1);
            NEW = broadcast(NEW, SOUTH, ROW == COL);
            go = any(NEW && !REACH && ROW == d);
            where (ROW == d) REACH = REACH || NEW;
        } while (go);
    "#;
    let program = ppc_lang::parse(src).unwrap();
    let w = gen::random_digraph(7, 0.22, 5, 13);
    let d = 2usize;
    let mut ppa = Ppa::square(7);
    // A[i][j] = edge j -> i? No: A[i][j] = edge i -> j, and the broadcast
    // of REACH along columns carries "j reaches d".
    let adj = Parallel::from_fn(ppa.dim(), |c| w.has_edge(c.row, c.col));
    let mut interp = ppc_lang::Interpreter::new(&mut ppa);
    interp.bind("A", ppc_lang::Value::PBool(adj));
    interp.bind("d", ppc_lang::Value::Int(d as i64));
    interp.run(&program).unwrap();
    let reach = interp.get_parallel_bool("REACH").unwrap().clone();
    let oracle = reference::transitive_closure(&w);
    for j in 0..7 {
        if j != d {
            assert_eq!(*reach.at(d, j), oracle[j][d], "vertex {j}");
        }
    }
}

#[test]
fn scalar_programs_cost_zero_simd_steps() {
    let src = r#"
        int total;
        int i;
        for (i = 1; i <= 100; i = i + 1) total = total + i;
        if (total == 5050) total = 1; else total = 0;
    "#;
    let program = ppc_lang::parse(src).unwrap();
    let mut ppa = Ppa::square(4);
    let mut interp = ppc_lang::Interpreter::new(&mut ppa);
    interp.run(&program).unwrap();
    assert_eq!(interp.get_int("total"), Some(1));
    assert_eq!(interp.ppa().steps().total(), 0);
}
