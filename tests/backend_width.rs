//! Width-differential conformance suite for the wide-word backends:
//! random programs and random graphs must produce identical results AND
//! identical per-class step reports on the scalar reference, the packed
//! backend at both word widths (`W64`, `W256`), and the threaded
//! backend on 256-bit words at every tested thread count {1, 4, 8} —
//! including runs with injected transient faults, exhausted step
//! budgets, and cooperative cancellation.
//!
//! The machine word is a host-side representation choice; the simulated
//! machine must not be able to observe it. Every threaded runtime here
//! is built with `min_parallel = 0` so even these small arrays go
//! through the worker pool rendezvous rather than the inline fast path.

use ppa_graph::gen;
use ppa_machine::{
    CancelToken, Dim, Direction, ExecMode, Machine, PackedBackend, ThreadedBackend,
    TransientFaults, W256,
};
use ppa_mcp::mcp::{fit_word_bits, minimum_cost_path};
use ppa_ppc::{Parallel, Ppa};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// A packed PPC runtime on 256-bit SWAR words.
fn packed256_ppa(n: usize, h: u32) -> Ppa<PackedBackend<W256>> {
    Ppa::<PackedBackend<W256>>::packed_wide(n).with_word_bits(h)
}

/// A threaded 256-bit runtime that always exercises the worker pool.
fn threaded256_ppa(n: usize, h: u32, threads: usize) -> Ppa<ThreadedBackend<W256>> {
    Ppa::from_machine(Machine::with_backend(
        Dim::square(n),
        ExecMode::Sequential,
        ThreadedBackend::<W256>::with_min_parallel(threads, 0),
    ))
    .with_word_bits(h)
}

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

/// Ensures every line has at least one Open node so the collectives never
/// trip the all-lines-driven guardrail.
fn force_driver(dim: Dim, dir: Direction, open: &mut Parallel<bool>) {
    let axis = dir.axis();
    for line in 0..dim.lines(axis) {
        let any =
            (0..dim.line_len(axis)).any(|pos| open.as_slice()[dim.line_index(dir, line, pos)]);
        if !any {
            let idx = dim.line_index(dir, line, 0);
            open.as_mut_slice()[idx] = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn collectives_match_scalar_at_both_widths(
        args in (3usize..=7).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0i64..=255, n * n),
                proptest::collection::vec(any::<bool>(), n * n),
            )
        }),
        dir in direction(),
        h in 4u32..=10,
    ) {
        let (n, vals, mask) = args;
        let dim = Dim::square(n);
        let cap = (1i64 << h) - 1;
        let vals: Vec<i64> = vals.into_iter().map(|v| v.min(cap)).collect();
        let src = Parallel::from_vec(dim, vals);
        let mut open = Parallel::from_vec(dim, mask);
        force_driver(dim, dir, &mut open);

        let mut s = Ppa::square(n).with_word_bits(h);
        let min_s = s.min(&src, dir, &open).unwrap();
        let max_s = s.max(&src, dir, &open).unwrap();

        let mut p64 = Ppa::<PackedBackend>::packed(n).with_word_bits(h);
        prop_assert_eq!(&p64.min(&src, dir, &open).unwrap(), &min_s);
        prop_assert_eq!(&p64.max(&src, dir, &open).unwrap(), &max_s);
        prop_assert_eq!(p64.steps(), s.steps());

        let mut p256 = packed256_ppa(n, h);
        prop_assert_eq!(&p256.min(&src, dir, &open).unwrap(), &min_s, "w256 min diverged");
        prop_assert_eq!(&p256.max(&src, dir, &open).unwrap(), &max_s, "w256 max diverged");
        prop_assert_eq!(p256.steps(), s.steps(), "w256 steps diverged");

        for threads in THREAD_COUNTS {
            let mut t = threaded256_ppa(n, h, threads);
            prop_assert_eq!(
                &t.min(&src, dir, &open).unwrap(), &min_s,
                "w256 min diverged at {} threads", threads
            );
            prop_assert_eq!(
                &t.max(&src, dir, &open).unwrap(), &max_s,
                "w256 max diverged at {} threads", threads
            );
            prop_assert_eq!(t.steps(), s.steps(), "w256 steps diverged at {} threads", threads);
        }
    }

    #[test]
    fn mcp_matches_scalar_at_both_widths(
        (n, seed) in (4usize..=8, 0u64..1000),
        dest_pick in 0usize..8,
    ) {
        let w = gen::random_digraph(n, 0.4, 15, seed);
        let h = fit_word_bits(&w).clamp(2, 62);
        let d = dest_pick % n;

        let mut s = Ppa::square(n).with_word_bits(h);
        let a = minimum_cost_path(&mut s, &w, d).unwrap();

        let mut p64 = Ppa::<PackedBackend>::packed(n).with_word_bits(h);
        let b = minimum_cost_path(&mut p64, &w, d).unwrap();
        prop_assert_eq!(&b.sow, &a.sow);
        prop_assert_eq!(&b.ptn, &a.ptn);
        prop_assert_eq!(p64.steps(), s.steps());

        let mut p256 = packed256_ppa(n, h);
        let c = minimum_cost_path(&mut p256, &w, d).unwrap();
        prop_assert_eq!(&c.sow, &a.sow, "w256 sow diverged");
        prop_assert_eq!(&c.ptn, &a.ptn, "w256 ptn diverged");
        prop_assert_eq!(c.iterations, a.iterations);
        prop_assert_eq!(p256.steps(), s.steps(), "w256 steps diverged");

        for threads in THREAD_COUNTS {
            let mut t = threaded256_ppa(n, h, threads);
            let e = minimum_cost_path(&mut t, &w, d).unwrap();
            prop_assert_eq!(&e.sow, &a.sow, "w256 sow diverged at {} threads", threads);
            prop_assert_eq!(&e.ptn, &a.ptn, "w256 ptn diverged at {} threads", threads);
            prop_assert_eq!(e.iterations, a.iterations);
            prop_assert_eq!(t.steps(), s.steps(), "w256 steps diverged at {} threads", threads);
        }
    }

    #[test]
    fn transient_faults_land_identically_at_both_widths(
        seed in 0u64..500,
        p_fault in prop_oneof![Just(0.002f64), Just(0.01), Just(1.0)],
    ) {
        let n = 6;
        let w = gen::random_connected(n, 0.45, 9, seed);
        let h = fit_word_bits(&w).clamp(2, 62);

        let mut s = Ppa::square(n).with_word_bits(h);
        s.machine_mut()
            .attach_transient_faults(TransientFaults::new(p_fault, seed));
        let want = minimum_cost_path(&mut s, &w, 0);

        // Fault routing lives on the issue side, so the corrupted run —
        // success or failure — must be bit-identical at every width.
        let check = |got: Result<ppa_mcp::McpOutput, ppa_mcp::McpError>,
                         label: &str|
         -> Result<(), TestCaseError> {
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.sow, &b.sow, "faulty sow diverged on {}", label);
                    prop_assert_eq!(&a.ptn, &b.ptn, "faulty ptn diverged on {}", label);
                }
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "faulty error diverged on {}", label
                ),
                (a, b) => prop_assert!(
                    false,
                    "divergent fault outcome on {}: {:?} vs {:?}", label, a, b
                ),
            }
            Ok(())
        };

        let mut p256 = packed256_ppa(n, h);
        p256.machine_mut()
            .attach_transient_faults(TransientFaults::new(p_fault, seed));
        check(minimum_cost_path(&mut p256, &w, 0), "packed256")?;
        prop_assert_eq!(p256.steps(), s.steps());

        for threads in THREAD_COUNTS {
            let mut t = threaded256_ppa(n, h, threads);
            t.machine_mut()
                .attach_transient_faults(TransientFaults::new(p_fault, seed));
            check(minimum_cost_path(&mut t, &w, 0), &format!("threaded256 x{threads}"))?;
            prop_assert_eq!(t.steps(), s.steps());
        }
    }

    #[test]
    fn step_budgets_exhaust_on_the_same_step_at_both_widths(
        seed in 0u64..200,
        budget in 5u64..400,
    ) {
        let n = 6;
        let w = gen::random_connected(n, 0.45, 9, seed);
        let h = fit_word_bits(&w).clamp(2, 62);

        let mut s = Ppa::square(n).with_word_bits(h);
        s.limit_steps(budget);
        let want = minimum_cost_path(&mut s, &w, 0);
        let want_left = s.steps_remaining();

        let check = |got: Result<ppa_mcp::McpOutput, ppa_mcp::McpError>,
                         label: &str|
         -> Result<(), TestCaseError> {
            match (&want, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.sow, &b.sow, "sow diverged on {}", label);
                    prop_assert_eq!(&a.ptn, &b.ptn, "ptn diverged on {}", label);
                }
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(),
                    "budget error diverged on {}", label
                ),
                (a, b) => prop_assert!(
                    false,
                    "divergent budget outcome on {}: {:?} vs {:?}", label, a, b
                ),
            }
            Ok(())
        };

        // Exhaustion lands on the same controller step: the budget left
        // over must agree exactly, not just the error kind.
        let mut p256 = packed256_ppa(n, h);
        p256.limit_steps(budget);
        check(minimum_cost_path(&mut p256, &w, 0), "packed256")?;
        prop_assert_eq!(p256.steps_remaining(), want_left, "packed256 budget drift");
        prop_assert_eq!(p256.steps(), s.steps());

        for threads in THREAD_COUNTS {
            let mut t = threaded256_ppa(n, h, threads);
            t.limit_steps(budget);
            check(minimum_cost_path(&mut t, &w, 0), &format!("threaded256 x{threads}"))?;
            prop_assert_eq!(t.steps_remaining(), want_left, "at {} threads", threads);
            prop_assert_eq!(t.steps(), s.steps());
        }
    }

    #[test]
    fn cancellation_fires_on_the_same_step_at_both_widths(
        seed in 0u64..200,
    ) {
        let n = 6;
        let w = gen::random_connected(n, 0.45, 9, seed);
        let h = fit_word_bits(&w).clamp(2, 62);

        // A pre-raised token is the deterministic case: every backend
        // must refuse at its first fallible instruction with the same
        // typed error and the same number of issued steps.
        let cancelled = || {
            let token = CancelToken::new();
            token.cancel();
            token
        };

        let mut s = Ppa::square(n).with_word_bits(h);
        s.attach_cancel(cancelled());
        let want = minimum_cost_path(&mut s, &w, 0);
        let want_err = match &want {
            Err(e) => e.to_string(),
            Ok(_) => return Err(TestCaseError::fail("cancelled scalar run succeeded")),
        };

        let mut p256 = packed256_ppa(n, h);
        p256.attach_cancel(cancelled());
        let got = minimum_cost_path(&mut p256, &w, 0);
        prop_assert_eq!(
            got.err().map(|e| e.to_string()),
            Some(want_err.clone()),
            "packed256 cancel outcome diverged"
        );
        prop_assert_eq!(p256.steps(), s.steps(), "packed256 cancel steps diverged");

        for threads in THREAD_COUNTS {
            let mut t = threaded256_ppa(n, h, threads);
            t.attach_cancel(cancelled());
            let got = minimum_cost_path(&mut t, &w, 0);
            prop_assert_eq!(
                got.err().map(|e| e.to_string()),
                Some(want_err.clone()),
                "threaded256 x{} cancel outcome diverged", threads
            );
            prop_assert_eq!(t.steps(), s.steps(), "cancel steps diverged at {} threads", threads);
        }
    }
}

/// Lane seams must be invisible to 256-bit words: a two-lane batch on a
/// 20-vertex graph builds a 20 x 40 machine whose flat bit indices 256
/// and 512 — interior 256-bit word boundaries — fall in the middle of
/// lane 0 and lane 1 respectively, so every W256 word spans both sides
/// of a seam. Each lane must still match a solo scalar run exactly.
#[test]
fn lane_seam_straddling_a_w256_word_boundary_is_invisible() {
    use ppa_mcp::batch::replicate;
    use ppa_mcp::BatchSession;

    let n = 20usize;
    let lanes = 2usize;
    let w = gen::random_connected(n, 0.3, 25, 0xA11CE);
    let graphs = replicate(&w, lanes);
    let dests = [3usize, 17];

    let mut batch = BatchSession::<PackedBackend<W256>>::new_packed_wide(&graphs).unwrap();
    let wave = batch.solve(&dests).unwrap();
    let word_bits = batch.word_bits();

    for (lane, &d) in dests.iter().enumerate() {
        let got = wave[lane].as_ref().expect("lane converges");
        let solo = Ppa::square(n).with_word_bits(word_bits);
        let want = ppa_mcp::McpSession::from_ppa(solo, &w)
            .and_then(|mut s| s.solve(d))
            .unwrap();
        assert_eq!(
            got.sow, want.sow,
            "lane {lane}: SOW diverged across the seam"
        );
        assert_eq!(
            got.ptn, want.ptn,
            "lane {lane}: PTN diverged across the seam"
        );
        assert_eq!(
            got.stats.total, want.stats.total,
            "lane {lane}: step report diverged across the seam"
        );
    }
}
