//! Full-stack integration: the PPA algorithm against the sequential
//! oracles, across graph families, sizes and destinations (experiment T5:
//! "validated through simulation").

#![allow(clippy::needless_range_loop)]
use ppa_suite::prelude::*;

fn machine_for(w: &WeightMatrix) -> Ppa {
    Ppa::square(w.n()).with_word_bits(fit_word_bits(w).clamp(2, 62))
}

#[test]
fn every_family_every_destination_small() {
    for family in gen::Family::ALL {
        let w = family.build(9, 12, 2024);
        for d in 0..w.n() {
            let mut ppa = machine_for(&w);
            let out = minimum_cost_path(&mut ppa, &w, d).unwrap();
            let violations = validate::validate_solution(&w, d, &out.sow, &out.ptn);
            assert!(
                violations.is_empty(),
                "family {} dest {d}: {violations:?}",
                family.label()
            );
        }
    }
}

#[test]
fn random_sweep_many_seeds() {
    for seed in 0..40u64 {
        let n = 6 + (seed as usize % 10);
        let density = 0.1 + (seed as f64 % 7.0) / 10.0;
        let w = gen::random_digraph(n, density, 25, seed);
        let d = seed as usize % n;
        let mut ppa = machine_for(&w);
        let out = minimum_cost_path(&mut ppa, &w, d).unwrap();
        assert!(
            validate::is_valid_solution(&w, d, &out.sow, &out.ptn),
            "seed {seed} n {n}"
        );
    }
}

#[test]
fn larger_instance_matches_oracle() {
    let w = gen::random_connected(40, 0.15, 50, 1);
    let mut ppa = machine_for(&w);
    let out = minimum_cost_path(&mut ppa, &w, 17).unwrap();
    let oracle = reference::bellman_ford_to_dest(&w, 17);
    let mut expect = oracle.dist.clone();
    expect[17] = 0;
    assert_eq!(out.sow, expect);
}

#[test]
fn iterations_equal_max_hops_plus_detection() {
    for seed in 0..10u64 {
        let w = gen::random_connected(12, 0.12, 9, seed);
        let mut ppa = machine_for(&w);
        let out = minimum_cost_path(&mut ppa, &w, 3).unwrap();
        let p = max_hops(&out);
        // p improving hop-lengths need p-1 improving iterations after the
        // 1-edge init, plus exactly one no-change iteration to detect.
        assert_eq!(out.iterations, p.max(1), "seed {seed} (p = {p})");
    }
}

#[test]
fn apsp_matches_floyd_warshall_and_closure_matches_reachability() {
    let w = gen::random_digraph(10, 0.25, 9, 77);
    let mut ppa = machine_for(&w);
    let ap = all_pairs(&mut ppa, &w).unwrap();
    let fw = reference::floyd_warshall(&w);
    assert_eq!(ap.matrix(), fw);

    let mut cpa = Ppa::square(w.n());
    let tc = transitive_closure(&mut cpa, &w).unwrap();
    let want = reference::transitive_closure(&w);
    assert_eq!(tc, want);
    // Consistency between the two: finite distance <=> reachable.
    for i in 0..w.n() {
        for j in 0..w.n() {
            assert_eq!(tc[i][j], fw[i][j] != INF, "{i}->{j}");
        }
    }
}

#[test]
fn single_source_composes_with_destination_runs() {
    let w = gen::random_connected(12, 0.2, 15, 5);
    let mut ppa = machine_for(&w);
    let from3 = single_source(&mut ppa, &w, 3).unwrap();
    let mut rppa = machine_for(&w.reversed());
    let to3_rev = minimum_cost_path(&mut rppa, &w.reversed(), 3).unwrap();
    assert_eq!(from3.dist, to3_rev.sow);
}

#[test]
fn per_iteration_steps_are_flat_in_n_and_linear_in_h() {
    // Flat in n (the PPA's whole point):
    let mut per_n = Vec::new();
    for n in [6usize, 12, 24] {
        let w = gen::padded_path(n, 3);
        let mut ppa = Ppa::square(n).with_word_bits(12);
        let out = minimum_cost_path(&mut ppa, &w, 3).unwrap();
        assert!(out.stats.iterations_uniform());
        per_n.push(out.stats.per_iteration[0].total());
    }
    assert!(per_n.windows(2).all(|w| w[0] == w[1]), "{per_n:?}");

    // Linear in h (two bit-serial scans dominate):
    let w = gen::padded_path(8, 3);
    let mut per_h = Vec::new();
    for h in [8u32, 16, 32] {
        let mut ppa = Ppa::square(8).with_word_bits(h);
        let out = minimum_cost_path(&mut ppa, &w, 3).unwrap();
        per_h.push(out.stats.per_iteration[0].total() as f64);
    }
    let r1 = per_h[1] / per_h[0];
    let r2 = per_h[2] / per_h[1];
    assert!((1.6..2.2).contains(&r1), "{per_h:?}");
    assert!((1.6..2.2).contains(&r2), "{per_h:?}");
}

#[test]
fn total_steps_are_linear_in_p() {
    let n = 20;
    let mut totals = Vec::new();
    for p in [2usize, 4, 8, 16] {
        let w = gen::padded_path(n, p);
        let mut ppa = Ppa::square(n).with_word_bits(10);
        let out = minimum_cost_path(&mut ppa, &w, p).unwrap();
        assert_eq!(out.iterations, p);
        totals.push(out.stats.total.total() as f64);
    }
    // Doubling p should roughly double total steps (init is small).
    for pair in totals.windows(2) {
        let r = pair[1] / pair[0];
        assert!((1.7..2.3).contains(&r), "{totals:?}");
    }
}

#[test]
fn threaded_engine_is_bit_identical_to_sequential() {
    let w = gen::random_connected(16, 0.2, 20, 9);
    let mut seq = Ppa::square(16).with_word_bits(12);
    let a = minimum_cost_path(&mut seq, &w, 5).unwrap();
    let mut thr = Ppa::square_with_mode(16, ExecMode::threaded(4)).with_word_bits(12);
    let b = minimum_cost_path(&mut thr, &w, 5).unwrap();
    assert_eq!(a.sow, b.sow);
    assert_eq!(a.ptn, b.ptn);
    assert_eq!(
        a.stats.total, b.stats.total,
        "step counts must not depend on host threads"
    );
}

#[test]
fn word_width_exactly_at_boundary() {
    // Worst path cost 14 fits h=4 (MAXINT 15); 15 does not.
    let w = WeightMatrix::from_edges(3, &[(0, 1, 7), (1, 2, 7)]);
    assert_eq!(fit_word_bits(&w), 4);
    let mut ppa = Ppa::square(3).with_word_bits(4);
    let out = minimum_cost_path(&mut ppa, &w, 2).unwrap();
    assert_eq!(out.sow[0], 14);

    let w = WeightMatrix::from_edges(3, &[(0, 1, 8), (1, 2, 7)]);
    let mut ppa = Ppa::square(3).with_word_bits(4);
    assert!(matches!(
        minimum_cost_path(&mut ppa, &w, 2),
        Err(McpError::WordWidthTooSmall { .. })
    ));
}

#[test]
fn dense_graph_converges_in_two_iterations() {
    let w = gen::complete(10, 9, 3);
    let mut ppa = machine_for(&w);
    let out = minimum_cost_path(&mut ppa, &w, 4).unwrap();
    // Complete graph: all optimal paths have <= 2 edges with these
    // weights, so at most 2 improving + 1 detection iterations.
    assert!(out.iterations <= 3, "{}", out.iterations);
    assert!(validate::is_valid_solution(&w, 4, &out.sow, &out.ptn));
}

#[test]
fn no_edges_graph_is_all_unreachable() {
    let w = WeightMatrix::new(5);
    let out = minimum_cost_path_auto(&w, 2).unwrap();
    for i in 0..5 {
        if i == 2 {
            assert_eq!(out.sow[i], 0);
        } else {
            assert_eq!(out.sow[i], INF);
            assert_eq!(out.ptn[i], i);
        }
    }
}
