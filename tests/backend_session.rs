//! Integration checks for the pluggable-backend acceptance criteria:
//! the packed backend solves MCP bit-identically to the scalar backend
//! (outputs *and* step counters), sessions match the one-shot drivers,
//! and a session reuses its plan cache and mask arena across
//! destinations instead of re-allocating.

use ppa_graph::gen;
use ppa_machine::PackedBackend;
use ppa_mcp::{apsp, mcp::minimum_cost_path, McpSession};
use ppa_ppc::Ppa;

#[test]
fn packed_mcp_matches_scalar_mcp_exactly() {
    for (n, seed) in [(8usize, 1u64), (12, 7), (16, 42)] {
        let w = gen::random_connected(n, 0.3, 20, seed);
        let h = ppa_mcp::mcp::fit_word_bits(&w).clamp(2, 62);

        let mut scalar = Ppa::square(n).with_word_bits(h);
        let mut packed = Ppa::<PackedBackend>::packed(n).with_word_bits(h);
        let a = minimum_cost_path(&mut scalar, &w, 0).unwrap();
        let b = minimum_cost_path(&mut packed, &w, 0).unwrap();

        assert_eq!(a.sow, b.sow, "n={n} seed={seed}");
        assert_eq!(a.ptn, b.ptn, "n={n} seed={seed}");
        assert_eq!(a.iterations, b.iterations, "n={n} seed={seed}");
        // The acceptance bar: identical instruction streams, class by
        // class, not just identical answers.
        assert_eq!(scalar.steps(), packed.steps(), "n={n} seed={seed}");
    }
}

#[test]
fn packed_session_all_pairs_matches_scalar_apsp_driver() {
    let w = gen::random_connected(10, 0.3, 15, 9);
    let mut session = McpSession::new_packed(&w).unwrap();
    let by_session = session.all_pairs().unwrap();

    let mut ppa = Ppa::square(10).with_word_bits(session.ppa().word_bits());
    let by_driver = apsp::all_pairs(&mut ppa, &w).unwrap();

    assert_eq!(by_session.matrix_flat(), by_driver.matrix_flat());
    assert_eq!(by_session.total_iterations(), by_driver.total_iterations());
}

#[test]
fn session_reuses_planes_and_plans_across_destinations() {
    let n = 12;
    let w = gen::random_connected(n, 0.25, 18, 17);
    let ppa = Ppa::<PackedBackend>::packed(n).with_word_bits(16);
    let mut session = McpSession::from_ppa(ppa, &w).unwrap();

    session.solve(0).unwrap();
    let warm = session.exec_stats();
    assert!(warm.arena_fresh > 0, "first solve must populate the arena");

    for d in 1..n {
        session.solve(d).unwrap();
    }
    let done = session.exec_stats();
    assert_eq!(
        done.arena_fresh, warm.arena_fresh,
        "destinations after the first must not allocate new planes"
    );
    assert!(done.arena_reused > warm.arena_reused);
    assert!(
        done.plan_hit_rate() > 0.9,
        "bus-plan cache should be warm across destinations: {done:?}"
    );
}
