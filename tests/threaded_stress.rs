//! Seeded concurrency stress for the threaded backend: cancel and
//! budget-exhaust solves mid-flight, over and over, against a backend
//! whose worker pool is forced into play on every micro-op. The suite
//! must neither deadlock nor poison a mutex (a wedged pool would hang
//! the test, which CI runs under a hard `timeout`), and every
//! deterministic interruption must produce the *identical*
//! `MachineError` — on the identical controller step — as the scalar
//! reference.

use ppa_graph::gen;
use ppa_machine::{CancelToken, Dim, ExecMode, Machine, ThreadedBackend};
use ppa_mcp::mcp::{fit_word_bits, minimum_cost_path};
use ppa_mcp::McpSession;
use ppa_ppc::Ppa;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const ITERATIONS: usize = 120;

fn threaded_ppa(n: usize, h: u32, threads: usize) -> Ppa<ThreadedBackend> {
    Ppa::from_machine(Machine::with_backend(
        Dim::square(n),
        ExecMode::Sequential,
        ThreadedBackend::with_min_parallel(threads, 0),
    ))
    .with_word_bits(h)
}

/// Budget exhaustion mid-solve, ≥100 times, against the scalar oracle:
/// the threaded backend must fail with the same `MachineError` (wrapped
/// identically by the solver) and leave the same number of budgeted
/// steps unspent, for a rotating set of thread counts.
#[test]
fn budget_exhaustion_is_deterministic_across_the_pool() {
    let mut rng = SmallRng::seed_from_u64(0x7EAD);
    for iter in 0..ITERATIONS {
        let n = rng.gen_range(5..=7);
        let w = gen::random_connected(n, 0.45, 9, iter as u64);
        let h = fit_word_bits(&w).clamp(2, 62);
        let budget = rng.gen_range(3..250u64);
        let threads = [2, 3, 8][iter % 3];

        let mut s = Ppa::square(n).with_word_bits(h);
        s.limit_steps(budget);
        let want = minimum_cost_path(&mut s, &w, 0);

        let mut t = threaded_ppa(n, h, threads);
        t.limit_steps(budget);
        let got = minimum_cost_path(&mut t, &w, 0);

        match (&want, &got) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.sow, b.sow, "iter {iter}");
                assert_eq!(a.ptn, b.ptn, "iter {iter}");
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "iter {iter}");
                assert!(
                    b.is_step_budget_exhausted(),
                    "iter {iter}: wrong error class {b:?}"
                );
            }
            (a, b) => panic!("iter {iter}: divergent outcomes {a:?} vs {b:?}"),
        }
        assert_eq!(
            t.steps_remaining(),
            s.steps_remaining(),
            "iter {iter}: exhaustion did not land on the same controller step"
        );
    }
}

/// Cancellation mid-solve, ≥100 times: a watchdog thread fires the
/// token at a seeded delay while the pool is mid-rendezvous. Whatever
/// the race decides, the solve must return (no deadlock), the session
/// must stay usable (no poisoned mutex, no wedged worker), and the
/// outcome is either the scalar reference answer or a clean
/// `MachineError::Cancelled` — never anything in between.
#[test]
fn midflight_cancellation_never_wedges_the_pool() {
    let mut rng = SmallRng::seed_from_u64(0xCA9CE1);
    let n = 6;
    let w = gen::random_connected(n, 0.45, 9, 99);
    let h = fit_word_bits(&w).clamp(2, 62);
    let want = minimum_cost_path(&mut Ppa::square(n).with_word_bits(h), &w, 0).unwrap();

    // One long-lived backend: the same pool absorbs all the cancelled
    // solves, so a single leaked or wedged worker would fail the run.
    let threads = 3;
    let mut t = threaded_ppa(n, h, threads);
    let mut cancelled = 0u32;
    for iter in 0..ITERATIONS {
        let token = CancelToken::new();
        t.attach_cancel(token.clone());
        let delay = Duration::from_micros(rng.gen_range(0..400));
        let killer = std::thread::spawn(move || {
            std::thread::sleep(delay);
            token.cancel();
        });
        match minimum_cost_path(&mut t, &w, 0) {
            Ok(out) => {
                assert_eq!(out.sow, want.sow, "iter {iter}");
                assert_eq!(out.ptn, want.ptn, "iter {iter}");
            }
            Err(e) if e.is_cancelled() => cancelled += 1,
            Err(other) => panic!("iter {iter}: unexpected failure {other:?}"),
        }
        killer.join().expect("cancel thread must not panic");
        t.reset_steps();
    }
    // The seeded delays straddle the solve duration, so both races must
    // actually occur; a pool that serializes everything (or one that
    // never completes) would push all 120 to one side.
    assert!(cancelled > 0, "no solve was ever cancelled mid-flight");

    // And the pool still computes correctly after all that abuse.
    t.attach_cancel(CancelToken::new());
    let after = minimum_cost_path(&mut t, &w, 0).unwrap();
    assert_eq!(after.sow, want.sow);
    assert_eq!(after.ptn, want.ptn);
}

/// Pre-cancelled runs are the deterministic edge of the race above:
/// every thread count must refuse on the very first costed step with
/// the exact scalar error.
#[test]
fn precancelled_solves_fail_identically_to_scalar() {
    let w = gen::random_connected(6, 0.45, 9, 7);
    let h = fit_word_bits(&w).clamp(2, 62);

    let mut s = Ppa::square(6).with_word_bits(h);
    let token = CancelToken::new();
    token.cancel();
    s.attach_cancel(token);
    let want = minimum_cost_path(&mut s, &w, 0).unwrap_err();

    for threads in [1, 2, 3, 8] {
        let mut t = threaded_ppa(6, h, threads);
        let token = CancelToken::new();
        token.cancel();
        t.attach_cancel(token);
        let got = minimum_cost_path(&mut t, &w, 0).unwrap_err();
        assert_eq!(got.to_string(), want.to_string(), "threads={threads}");
        assert_eq!(t.steps(), s.steps(), "threads={threads}");
    }
}

/// Session-level smoke over the public constructor (default
/// `min_parallel`, the configuration `--backend threaded` ships): the
/// threaded session must equal the scalar session on a full all-pairs
/// campaign.
#[test]
fn threaded_session_matches_scalar_all_pairs() {
    let w = gen::random_connected(9, 0.3, 14, 5);
    let scalar = McpSession::new(&w).unwrap().all_pairs().unwrap();
    for threads in [1, 4] {
        let threaded = McpSession::new_threaded(&w, threads)
            .unwrap()
            .all_pairs()
            .unwrap();
        assert_eq!(
            scalar.matrix_flat(),
            threaded.matrix_flat(),
            "threads={threads}"
        );
        assert_eq!(
            scalar.total_iterations(),
            threaded.total_iterations(),
            "threads={threads}"
        );
    }
}
