//! Offline shim for the `rand` API surface this workspace uses.
//!
//! The build container cannot reach crates.io, so this crate provides an
//! API-compatible `rngs::SmallRng` + `Rng`/`SeedableRng` subset backed by
//! xoshiro256++ (seeded via splitmix64). Determinism per seed is all the
//! graph generators need; the exact stream differs from upstream `rand`,
//! which only shifts which random graphs the tests see, not their
//! statistical properties.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding entry points (the subset used: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits over [0, 1), the conventional mapping.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`; panics when empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `0..=span` using Lemire-style rejection to avoid
/// modulo bias.
fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    // Accept only draws below the largest multiple of `bound` ≤ 2^64.
    let limit = (1u128 << 64) / bound as u128 * bound as u128;
    loop {
        let v = rng.next_u64();
        if (v as u128) < limit {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128 - 1) as u64;
                let off = sample_span(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let off = sample_span(rng, span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64, u32, u64, usize);

/// The generator trait (the subset used: `gen`, `gen_bool`, `gen_range`).
pub trait Rng {
    /// The raw 64-bit output every other method is derived from.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `range`; panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Named generators (the subset used: `SmallRng`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = r.gen_range(1..=15);
            assert!((1..=15).contains(&v));
            let u: usize = r.gen_range(0..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_gen_bool_frequency() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut hits = 0u32;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            if r.gen_bool(0.25) {
                hits += 1;
            }
        }
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
