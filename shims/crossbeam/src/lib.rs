//! Offline shim for the `crossbeam` API surface this workspace uses.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible implementation of
//! `crossbeam::thread::scope` on top of `std::thread::scope` (stable since
//! Rust 1.63). Only the calls the engine makes are provided.

#![forbid(unsafe_code)]

/// Scoped threads (the `crossbeam::thread` subset).
pub mod thread {
    use std::thread as std_thread;

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std_thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// The scope passed to spawned closures.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std_thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Matching crossbeam's signature, the
        /// closure receives the scope (so it can spawn further threads).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before returning.
    ///
    /// crossbeam returns `Err` only when a spawned thread panicked *and*
    /// was not joined; with `std::thread::scope` an unjoined panicking
    /// child re-raises the panic instead, so the `Err` arm here is
    /// unreachable in practice — callers' `.expect(...)` stays valid.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total = super::thread::scope(|scope| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = scope.spawn(move |_| a.iter().sum::<u64>());
            let hb = scope.spawn(move |_| b.iter().sum::<u64>());
            ha.join().unwrap() + hb.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let r = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
