//! Collection strategies (the subset used: `vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable size arguments for [`vec`]: an exact length or a range.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn pick_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        if self.start >= self.end {
            self.start
        } else {
            rng.gen_range(self.clone())
        }
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn pick_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// A `Vec` strategy: each element drawn independently from `element`.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of values from `element` with length given by `len`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut r = TestRng::for_case("collection", 0);
        for _ in 0..100 {
            assert_eq!(vec(0i64..5, 9usize).generate(&mut r).len(), 9);
            let l = vec(0i64..5, 2..5usize).generate(&mut r).len();
            assert!((2..5).contains(&l));
            let li = vec(0i64..5, 0..=3usize).generate(&mut r).len();
            assert!(li <= 3);
        }
    }
}
