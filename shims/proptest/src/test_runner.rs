//! The deterministic case runner behind the `proptest!` macro.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating one case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds the RNG for one case, derived from the test name and case
    /// index so every run of the suite sees the same inputs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (the subset used: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs over.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `body` over `config.cases` deterministic cases, panicking (as a
/// normal test failure) on the first case whose assertions fail.
pub fn run(
    config: &ProptestConfig,
    test_name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(e) = body(&mut rng) {
            panic!(
                "property '{test_name}' failed at case {case}/{}:\n{e}",
                config.cases
            );
        }
    }
}
