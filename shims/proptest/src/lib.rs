//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! The build container cannot reach crates.io, so this crate provides an
//! API-compatible subset: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_recursive` / `boxed`,
//! range/tuple/collection/option/regex-literal strategies, and the
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros backed by a deterministic random-case runner.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its seed instead of a
//!   minimized input;
//! * value distributions differ (uniform rather than size-biased), which
//!   changes *which* random cases run, not what the properties assert;
//! * the regex strategy supports only the literal/class/`{m,n}` subset
//!   the test suite uses and panics on anything fancier.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob import every test file starts from.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Chooses uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a regular test that runs the body over `config.cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}
