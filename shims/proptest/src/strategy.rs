//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus `Sized` combinators, so strategies
/// can be boxed ([`BoxedStrategy`]) for recursion and heterogeneous
/// unions.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with a strategy derived from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Regenerates until `pred` accepts the value. `reason` matches the
    /// upstream signature; it is reported if generation keeps failing.
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: std::fmt::Display,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.to_string(),
            pred,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the composite case, nested at most
    /// `depth` levels. `desired_size` and `expected_branch_size` are
    /// accepted for API compatibility; the shim bounds size by depth
    /// alone.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
        }
        cur
    }

    /// Erases the strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, `any`, regex string literals, tuples.
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i32, i64, u32, u64, usize);

/// Types with a canonical full-domain strategy (the `Arbitrary` subset).
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for i64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for usize {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// An arbitrary value of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String-literal strategies generate strings matching the literal as a
/// regex. Supported subset: literal characters, `[...]` classes with
/// ranges, and `{m}` / `{m,n}` quantifiers — everything the test suite's
/// patterns use. Unsupported syntax panics at generation time.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal character.
        let class: Vec<(char, char)> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("regex shim: unclosed '[' in {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "regex shim: empty class in {pattern:?}");
                i = close + 1;
                ranges
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("regex shim: trailing '\\' in {pattern:?}"));
                i += 2;
                vec![(c, c)]
            }
            c @ (']' | '{' | '}' | '(' | ')' | '*' | '+' | '?' | '|' | '.' | '^' | '$') => {
                panic!("regex shim: unsupported syntax {c:?} in {pattern:?}")
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Parse an optional {m} / {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("regex shim: unclosed '{{' in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().unwrap(),
                    n.trim().parse::<usize>().unwrap(),
                ),
                None => {
                    let m = body.trim().parse::<usize>().unwrap();
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let reps = rng.gen_range(lo..=hi);
        for _ in 0..reps {
            let (a, b) = class[rng.gen_range(0..class.len())];
            let span = b as u32 - a as u32;
            let c = char::from_u32(a as u32 + rng.gen_range(0..=span))
                .unwrap_or_else(|| panic!("regex shim: bad class range in {pattern:?}"));
            out.push(c);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let (a, b) = (0i64..10, 5usize..=6).generate(&mut r);
            assert!((0..10).contains(&a));
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let u = Union::new(vec![
            Just(1u64).boxed(),
            Just(2u64).boxed(),
            Just(3u64).boxed(),
        ]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn filter_and_map_compose() {
        let s = (0i64..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(s.generate(&mut r) % 2, 1);
        }
    }

    #[test]
    fn regex_literal_matches_ident_shape() {
        let s = "[a-z][a-z0-9_]{0,6}";
        let mut r = rng();
        for _ in 0..300 {
            let v = Strategy::generate(&s, &mut r);
            assert!((1..=7).contains(&v.len()), "{v:?}");
            let mut cs = v.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 24, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..200 {
            if matches!(s.generate(&mut r), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }
}
