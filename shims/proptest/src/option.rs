//! `Option` strategies (the subset used: `of`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An `Option` strategy; generates `Some` three times out of four,
/// mirroring upstream's default weighting.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0..4u32) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` of a value from `inner`, or `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;
    use crate::test_runner::TestRng;

    #[test]
    fn produces_both_variants() {
        let s = of(Just(7u64));
        let mut r = TestRng::for_case("option", 0);
        let (mut some, mut none) = (false, false);
        for _ in 0..200 {
            match s.generate(&mut r) {
                Some(7) => some = true,
                None => none = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(some && none);
    }
}
