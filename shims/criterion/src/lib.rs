//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! same macros and types the benches are written against, backed by a
//! deliberately small timing loop: each benchmark runs a short warm-up
//! and a fixed number of timed batches, then prints a mean per-iteration
//! time. No statistics engine, no HTML reports — enough to run every
//! `[[bench]]` target and eyeball regressions.
//!
//! Bench binaries also execute under `cargo test` (their `harness = false`
//! mains run as test executables), so the per-benchmark work is kept to a
//! few milliseconds.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function-name + parameter id, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the timed loop.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, batching iterations until the sampling budget
    /// (a few milliseconds) is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also reveals panics early).
        black_box(routine());
        let budget = Duration::from_millis(5);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }

    fn report(&self, label: &str) {
        let per = self.total.as_nanos() / self.iters as u128;
        println!(
            "bench: {label:<40} {per:>12} ns/iter ({} iters)",
            self.iters
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim's sampling budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmarks `f` under `name` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, |b| f(b));
        self
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        b.report(label);
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main`, running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("min", 64).to_string(), "min/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
