//! Bottleneck routing: widest paths to an uplink.
//!
//! The paper's dynamic program is generic over the cost semiring. This
//! example swaps `(min, +)` for `(max, min)` and solves bandwidth
//! reservation: every switch in a network wants the route to the uplink
//! whose narrowest link is widest. Same machine, same `O(p * h)` bus
//! schedule, different algebra — and a different optimal tree, which the
//! example prints side by side with the shortest-cost one.
//!
//! Run with: `cargo run --example bandwidth_routing`

#![allow(clippy::needless_range_loop)]
use ppa_mcp::widest::{widest_path, widest_path_oracle};
use ppa_suite::prelude::*;

fn main() {
    let n = 14;
    // Capacities in Mbit/s on a sparse random fabric.
    let w = gen::random_connected(n, 0.18, 95, 2209);
    let uplink = 0;

    let mut ppa = Ppa::square(n).with_word_bits(fit_word_bits(&w));
    let wide = widest_path(&mut ppa, &w, uplink).expect("fabric fits the machine");
    let mut ppa2 = Ppa::square(n).with_word_bits(fit_word_bits(&w));
    let cheap = minimum_cost_path(&mut ppa2, &w, uplink).expect("fabric fits the machine");

    println!(
        "fabric: {n} switches, {} links; uplink at switch {uplink}\n",
        w.edge_count()
    );
    println!("  switch | widest route: capacity, next hop | cheapest route: cost, next hop");
    println!("  ------ | --------------------------------- | ------------------------------");
    let mut diverge = 0;
    for i in 0..n {
        if i == uplink {
            continue;
        }
        let (capacity, wn) = (wide.cap[i], wide.ptn[i]);
        let (cost, cn) = (cheap.sow[i], cheap.ptn[i]);
        let mark = if wn != cn {
            diverge += 1;
            "  <- differs"
        } else {
            ""
        };
        println!(
            "  {i:6} | {:9} Mbit/s via {wn:2}          | cost {cost:4} via {cn:2}{mark}",
            capacity
        );
    }
    println!(
        "\n{} of {} switches take a different first hop for bandwidth than for cost.",
        diverge,
        n - 1
    );

    // Oracle check for the widest tree.
    let oracle = widest_path_oracle(&w, uplink);
    for i in 0..n {
        if i != uplink {
            assert_eq!(wide.cap[i], oracle[i], "switch {i}");
        }
    }
    println!("\nbottleneck capacities verified against the sequential (max, min) oracle.");
    println!(
        "steps: widest {} vs shortest {} — same O(p*h) schedule, different semiring.",
        wide.stats.total.total(),
        cheap.stats.total.total()
    );
}
