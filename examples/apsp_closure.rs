//! All-pairs distances and transitive closure on one machine.
//!
//! The paper's solver answers one destination per run; reusing the same
//! array for all `n` destinations yields the full distance matrix
//! (`O(n * p * h)` steps), and the boolean specialization yields the
//! transitive closure at `O(n * p)` — the direction of the paper's
//! reference [6]. This example prints both matrices and the step bill.
//!
//! Run with: `cargo run --example apsp_closure`

use ppa_suite::prelude::*;

fn main() {
    let n = 8;
    let w = gen::random_digraph(n, 0.22, 9, 1234);
    println!("graph: {n} vertices, {} edges\n", w.edge_count());

    // All-pairs minimum costs: n destination runs.
    let mut ppa = Ppa::square(n).with_word_bits(fit_word_bits(&w));
    let before = ppa.steps().total();
    let ap = all_pairs(&mut ppa, &w).expect("fits the machine");
    let apsp_steps = ppa.steps().total() - before;

    println!("all-pairs minimum costs (rows = from, cols = to; . = unreachable):");
    print!("      ");
    for j in 0..n {
        print!("{j:5}");
    }
    println!();
    for i in 0..n {
        print!("  {i:2} |");
        for j in 0..n {
            let d = ap.dist(i, j);
            if d == INF {
                print!("    .");
            } else {
                print!("{d:5}");
            }
        }
        println!();
    }

    // Transitive closure: n boolean runs, no bit-serial scans needed.
    let mut cpa = Ppa::square(n);
    let before = cpa.steps().total();
    let tc = transitive_closure(&mut cpa, &w).expect("fits the machine");
    let closure_steps = cpa.steps().total() - before;

    println!("\ntransitive closure (# reachable per vertex):");
    for (i, row) in tc.iter().enumerate() {
        let reach: Vec<String> = row
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(j, _)| j.to_string())
            .collect();
        println!("  {i} -> {{{}}}", reach.join(", "));
    }

    // Cross-checks.
    let fw = reference::floyd_warshall(&w);
    assert_eq!(ap.matrix(), fw);
    assert_eq!(tc, reference::transitive_closure(&w));
    println!("\nboth matrices verified against Floyd-Warshall / sequential closure.");
    println!(
        "steps: APSP {apsp_steps} (O(n*p*h)) vs closure {closure_steps} (O(n*p)) — \
         the boolean semiring saves the whole bit-serial factor."
    );
}
