//! Robot navigation over weighted terrain.
//!
//! A rover on a `rows x cols` terrain grid must reach the charging dock;
//! each move costs the terrain difficulty of the cell entered. The grid
//! is a graph (4-neighbour, one vertex per cell), the dock is the
//! destination, and the paper's algorithm computes the optimal policy for
//! *every* start cell at once — which is exactly what the `PTN` output
//! is: a next-hop field. The example prints the terrain, the policy
//! arrows, and traces one rover.
//!
//! Run with: `cargo run --example robot_grid`

#![allow(clippy::needless_range_loop)]
use ppa_suite::prelude::*;

const ROWS: usize = 6;
const COLS: usize = 7;

fn cell(r: usize, c: usize) -> usize {
    r * COLS + c
}

fn main() {
    let n = ROWS * COLS;
    let w = gen::grid(ROWS, COLS, 9, 42);
    let dock = cell(ROWS - 1, COLS - 1);

    let mut ppa = Ppa::square(n).with_word_bits(fit_word_bits(&w));
    let out = minimum_cost_path(&mut ppa, &w, dock).expect("grid fits");

    println!("cost-to-dock field (dock at bottom-right, marked **):");
    for r in 0..ROWS {
        for c in 0..COLS {
            let v = cell(r, c);
            if v == dock {
                print!("  **");
            } else {
                print!("{:4}", out.sow[v]);
            }
        }
        println!();
    }

    println!("\nnext-hop policy (follow the arrows to charge):");
    for r in 0..ROWS {
        for c in 0..COLS {
            let v = cell(r, c);
            let glyph = if v == dock {
                '@'
            } else {
                let nxt = out.ptn[v];
                if nxt == v + 1 {
                    '>'
                } else if v > 0 && nxt == v - 1 {
                    '<'
                } else if nxt == v + COLS {
                    'v'
                } else if v >= COLS && nxt == v - COLS {
                    '^'
                } else {
                    '?'
                }
            };
            print!(" {glyph}");
        }
        println!();
    }

    // Trace one rover from the top-left corner.
    let start = cell(0, 0);
    let path = extract_path(&out, start).expect("grid is connected");
    let pretty: Vec<String> = path
        .iter()
        .map(|&v| format!("({},{})", v / COLS, v % COLS))
        .collect();
    println!(
        "\nrover at (0,0): cost {} over {} moves\n  {}",
        out.sow[start],
        path.len() - 1,
        pretty.join(" -> ")
    );
    assert_eq!(path_cost(&w, &path), Some(out.sow[start]));

    // Every cell's policy is optimal: check against Floyd-Warshall.
    let fw = reference::floyd_warshall(&w);
    for v in 0..n {
        assert_eq!(out.sow[v], fw[v][dock], "cell {v}");
    }
    println!("\npolicy verified optimal for all {n} cells (Floyd-Warshall).");
    println!(
        "solved in {} SIMD steps, {} iterations (longest optimal route {} moves)",
        out.stats.total.total(),
        out.iterations,
        max_hops(&out)
    );
}
