//! Figure-1 companion: how switch boxes partition the PPA buses.
//!
//! Renders the switch configurations and the resulting bus clusters for
//! the exact patterns the MCP algorithm programs: the destination-row
//! broadcast of statement 10, the row-minimum clusters of statement 11,
//! and the diagonal fold of statement 16.
//!
//! Run with: `cargo run --example bus_partition`

use ppa_machine::{render, Dim, Direction, Plane};

fn show(title: &str, dim: Dim, dir: Direction, open: &Plane<bool>) {
    println!("=== {title} ===");
    print!("{}", render::render_switches(dim, dir, open));
    print!("{}", render::render_clusters(dim, dir, open));
    println!();
}

fn main() {
    let dim = Dim::square(8);
    let d = 2; // destination vertex of the running example

    // Statement 10: `broadcast(SOW, SOUTH, ROW == d)` — the destination
    // row opens its switches and drives every (circular) column bus.
    let row_d = Plane::from_fn(dim, |c| c.row == d);
    show(
        "statement 10: ROW == d opens, data moves South (one cluster per column)",
        dim,
        Direction::South,
        &row_d,
    );

    // Statement 11: `min(SOW, WEST, COL == n-1)` — the last column heads
    // one whole-row cluster per row.
    let last_col = Plane::from_fn(dim, |c| c.col == dim.cols - 1);
    show(
        "statement 11: COL == n-1 opens, data moves West (one cluster per row)",
        dim,
        Direction::West,
        &last_col,
    );

    // Statement 16: `broadcast(MIN_SOW, SOUTH, ROW == COL)` — the diagonal
    // drives the columns; note row d reads values injected *below* it,
    // which is why the model needs circular buses.
    let diag = Plane::from_fn(dim, |c| c.row == c.col);
    show(
        "statement 16: ROW == COL opens, data moves South (diagonal drives columns)",
        dim,
        Direction::South,
        &diag,
    );

    // A free-form pattern: multiple clusters per line, like the paper's
    // Figure 1 discussion of dynamic partitioning.
    let stripes = Plane::from_fn(dim, |c| c.col % 3 == 0);
    show(
        "dynamic partitioning: every third column opens, data moves East",
        dim,
        Direction::East,
        &stripes,
    );
}
