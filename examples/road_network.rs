//! Road-network routing: every intersection to the hospital.
//!
//! The single-destination structure of the paper's algorithm is exactly
//! the "everyone routes to one facility" problem: ambulance dispatch,
//! evacuation planning, hub logistics. This example builds a random
//! geometric road network, solves all-routes-to-hub on the PPA, verifies
//! against Dijkstra, and prints a small routing table plus the parallel
//! speed story.
//!
//! Run with: `cargo run --example road_network`

#![allow(clippy::needless_range_loop)]
use ppa_baselines::{McpSolver, SequentialBf};
use ppa_suite::prelude::*;

fn main() {
    let n = 24;
    let seed = 20260706;
    // Roads: ~unit-square city, edges between nearby intersections,
    // weights proportional to distance.
    let w = gen::geometric(n, 0.42, 60, seed);
    let hub = 0;
    println!(
        "road network: {n} intersections, {} road segments (density {:.2})",
        w.edge_count(),
        w.density()
    );

    let mut ppa = Ppa::square(n).with_word_bits(fit_word_bits(&w));
    let out = minimum_cost_path(&mut ppa, &w, hub).expect("network fits the machine");

    let reachable = out.sow.iter().filter(|&&c| c != INF).count();
    println!("hub = intersection {hub}; {reachable}/{n} intersections can reach it\n");

    println!("routing table (first 10 intersections):");
    println!("  from   cost   next-hop   full route");
    for i in 0..10.min(n) {
        match extract_path(&out, i) {
            None => println!("  {i:4}      -          -   unreachable"),
            Some(p) => {
                let route: Vec<String> = p.iter().map(|v| v.to_string()).collect();
                println!(
                    "  {i:4}   {:4}   {:8}   {}",
                    out.sow[i],
                    out.ptn[i],
                    route.join(" -> ")
                );
            }
        }
    }

    // Oracle cross-check: Dijkstra must agree on every cost.
    let dj = reference::dijkstra_to_dest(&w, hub);
    for i in 0..n {
        let expect = if i == hub { 0 } else { dj[i] };
        assert_eq!(out.sow[i], expect, "intersection {i}");
    }
    println!("\nDijkstra cross-check passed for all {n} intersections.");

    // The parallel story: the PPA's step count vs the sequential sweep.
    let seq = SequentialBf::new().solve(&w, hub);
    println!(
        "\nSIMD steps on the PPA:        {:>8}   ({} iterations x ~{:.0} steps, O(p*h))",
        out.stats.total.total(),
        out.iterations,
        out.stats.steps_per_iteration()
    );
    println!(
        "sequential operations (CPU):  {:>8}   (O(p*n^2))",
        seq.word_steps
    );
    println!(
        "parallel advantage on this instance: {:.0}x fewer time steps",
        seq.word_steps as f64 / out.stats.total.total() as f64
    );
}
