//! Architecture face-off: PPA vs hypercube vs GCN vs plain mesh vs CPU.
//!
//! The paper's headline comparison — "PPA delivers the same performance,
//! in terms of computational complexity, as the hypercube interconnection
//! network of the Connection Machine, and as the Gated Connection
//! Network" — measured on one workload sweep. Every model runs the same
//! dynamic program; what differs is what each interconnect charges for
//! the broadcast and the row minimum.
//!
//! Run with: `cargo run --example architecture_faceoff`

use ppa_baselines::all_solvers;
use ppa_suite::prelude::*;

fn main() {
    let h = 16u32;
    println!("single-destination MCP, random digraphs (density 0.25, h = {h})\n");
    println!(
        "{:>5} {:>6} | {:>12} {:>12} {:>12} {:>12} {:>14}",
        "n", "p", "ppa(bit)", "gcn(bit)", "cube(word)", "mesh(word)", "seq(word ops)"
    );

    for n in [8usize, 16, 32, 48] {
        let w = gen::random_connected(n, 0.25, 30, 99 + n as u64);
        let d = 0;

        let mut ppa = Ppa::square(n).with_word_bits(h);
        let out = minimum_cost_path(&mut ppa, &w, d).expect("fits");

        let solvers = all_solvers(h);
        let mut row = std::collections::HashMap::new();
        for s in &solvers {
            let r = s.solve(&w, d);
            // All architectures must agree with the PPA on the answer.
            let mut expect = out.sow.clone();
            expect[d] = 0;
            let mut got = r.dist.clone();
            got[d] = 0;
            assert_eq!(got, expect, "{} disagrees", s.name());
            row.insert(s.name(), r);
        }

        println!(
            "{:>5} {:>6} | {:>12} {:>12} {:>12} {:>12} {:>14}",
            n,
            out.iterations,
            out.stats.total.total(),
            row["gcn"].bit_steps,
            row["hypercube"].word_steps,
            row["plain-mesh"].word_steps,
            row["sequential"].word_steps,
        );
    }

    println!(
        "\nreading the shape: PPA and GCN stay flat as n grows (O(p*h)); the\n\
         hypercube grows like log n; the plain mesh grows linearly; the CPU\n\
         quadratically — the paper's equivalence claim and the value of\n\
         reconfigurable buses, in one table."
    );
}
