//! City-block distance transform of a binary image on the PPA.
//!
//! The companion image kernel of the PPC toolchain (the paper mentions
//! the primitives were used to implement the EDT algorithm): one pixel
//! per PE, two separable 1-D passes, `O(n)` SIMD steps with **no**
//! bit-serial scans — the distance transform on this machine is
//! communication-bound, the shortest-path solver comparison-bound.
//!
//! Run with: `cargo run --example distance_transform`

use ppa_mcp::kernels::{distance_transform_l1, distance_transform_oracle};
use ppa_suite::prelude::*;

fn main() {
    let n = 12;
    let mut ppa = Ppa::square(n).with_word_bits(8);

    // A binary image: two blobs and a diagonal scratch.
    let image = Parallel::from_fn(ppa.dim(), |c| {
        let blob1 = c.row.abs_diff(2) + c.col.abs_diff(3) <= 1;
        let blob2 = c.row.abs_diff(8) + c.col.abs_diff(9) <= 1;
        let scratch = c.row + 4 == c.col + 8 && c.row >= 6;
        blob1 || blob2 || scratch
    });

    println!("input image (# = feature pixel):");
    for r in 0..n {
        print!("  ");
        for c in 0..n {
            print!("{}", if *image.at(r, c) { " #" } else { " ." });
        }
        println!();
    }

    ppa.reset_steps();
    let dt = distance_transform_l1(&mut ppa, &image)
        .expect("word width fits")
        .expect("image has features");
    let steps = ppa.steps();

    println!("\nL1 distance transform:");
    for r in 0..n {
        print!("  ");
        for c in 0..n {
            print!("{:2}", dt.at(r, c));
        }
        println!();
    }

    let oracle = distance_transform_oracle(&image).expect("non-empty");
    assert_eq!(dt, oracle);
    println!("\nverified against the brute-force oracle.");
    println!(
        "cost: {} SIMD steps total — {} shift, {} alu, 0 bus scans (O(n), not O(n*h))",
        steps.total(),
        steps.count(ppa_machine::Op::Shift),
        steps.count(ppa_machine::Op::Alu),
    );
}
