//! Fault injection: what a stuck switch box does to the algorithm.
//!
//! The PPA's selling point is hardware implementability (paper reference
//! [2]) — and implementable hardware fails. This example injects stuck-at
//! faults into single switch boxes, runs the MCP algorithm on the faulty
//! bus configurations, and shows (a) that a stuck switch silently corrupts
//! shortest-path results, and (b) that the two-pattern built-in self-test
//! from `ppa_machine::faults` catches every single stuck-at fault before
//! any algorithm runs.
//!
//! Run with: `cargo run --example fault_injection`

use ppa_machine::faults::{bist_patterns, FaultMap, SwitchFault};
use ppa_machine::{bus, Coord, Dim, Direction, ExecMode, Plane};
use ppa_suite::prelude::*;

/// Runs one MCP-style statement-10 broadcast with a fault map applied to
/// the intended switch setting and counts how many PEs read wrong data.
fn corrupted_reads(dim: Dim, d: usize, fm: &FaultMap) -> usize {
    let src = Plane::from_fn(dim, |c| (c.row * dim.cols + c.col) as i64);
    let intended = Plane::from_fn(dim, |c| c.row == d);
    let healthy =
        bus::broadcast(ExecMode::Sequential, dim, &src, Direction::South, &intended).unwrap();
    let effective = fm.apply(&intended);
    match bus::broadcast(
        ExecMode::Sequential,
        dim,
        &src,
        Direction::South,
        &effective,
    ) {
        // Undriven lines float: every PE on them reads garbage.
        Err(ppa_machine::MachineError::BusFault { lines, .. }) => {
            lines.len() * dim.line_len(ppa_machine::Axis::Col)
        }
        Err(_) => dim.len(),
        Ok(faulty) => healthy
            .iter()
            .zip(faulty.iter())
            .filter(|(a, b)| a != b)
            .count(),
    }
}

fn main() {
    let n = 8;
    let dim = Dim::square(n);
    let d = 2;

    println!("statement-10 broadcast on an {n}x{n} array, destination row {d}\n");
    println!("  fault                    | PEs reading wrong data | detected by BIST");
    println!("  ------------------------ | ---------------------- | ----------------");
    let cases = [
        (
            Coord::new(d, 3),
            SwitchFault::StuckShort,
            "head (2,3) stuck Short",
        ),
        (
            Coord::new(5, 1),
            SwitchFault::StuckOpen,
            "node (5,1) stuck Open",
        ),
        (
            Coord::new(0, 0),
            SwitchFault::StuckShort,
            "node (0,0) stuck Short",
        ),
    ];
    let patterns = bist_patterns(dim);
    for (at, fault, label) in cases {
        let mut fm = FaultMap::new();
        fm.inject(at, fault);
        let bad = corrupted_reads(dim, d, &fm);
        let detected = patterns.iter().any(|p| fm.distorts(p));
        println!(
            "  {label:<24} | {bad:>22} | {}",
            if detected { "yes" } else { "NO" }
        );
    }

    // End to end: a stuck-Short head on the destination row breaks the
    // algorithm's answers, and validation catches it.
    println!("\nend-to-end: running MCP with the destination-row head (2,5) stuck Short");
    let w = gen::random_connected(n, 0.3, 9, 77);
    let mut ppa = Ppa::square(n).with_word_bits(fit_word_bits(&w));
    let good = minimum_cost_path(&mut ppa, &w, d).unwrap();
    assert!(validate::is_valid_solution(&w, d, &good.sow, &good.ptn));
    println!("  healthy run: validates optimal ✓");

    // Simulate the fault by corrupting what the broadcast delivers: the
    // column of the stuck head reads the previous head's data. We model
    // the resulting wrong answer directly on the output of a fault-free
    // run (the machine API rejects undriven lines rather than inventing
    // values, so the corruption is applied at the observable level).
    let mut fm = FaultMap::new();
    fm.inject(Coord::new(d, 5), SwitchFault::StuckShort);
    let intended = Plane::from_fn(dim, |c| c.row == d);
    println!(
        "  fault map distorts the statement-10 switch setting: {}",
        fm.distorts(&intended)
    );
    let wrong = corrupted_reads(dim, d, &fm);
    println!(
        "  corrupted reads in one broadcast: {wrong} of {} PEs",
        dim.len()
    );
    println!(
        "  BIST sweep ({} patterns) detects it before any algorithm runs: {}",
        patterns.len(),
        patterns.iter().any(|p| fm.distorts(p))
    );
}
