//! Quickstart: solve one minimum-cost-path instance on the PPA.
//!
//! Builds a small weighted digraph, runs the paper's algorithm on a
//! simulated n x n Polymorphic Processor Array, and prints the costs,
//! the explicit paths, and the SIMD step accounting.
//!
//! Run with: `cargo run --example quickstart`

use ppa_suite::prelude::*;

fn main() {
    // A small delivery network: vertex 5 is the depot.
    let w = WeightMatrix::from_edges(
        6,
        &[
            (0, 1, 4),
            (0, 2, 2),
            (1, 3, 5),
            (2, 1, 1),
            (2, 3, 8),
            (2, 4, 10),
            (3, 5, 2),
            (4, 5, 3),
            (1, 5, 12),
            (3, 4, 1),
        ],
    );
    let depot = 5;

    // One PE per weight-matrix entry; word width sized for this input.
    let mut ppa = Ppa::square(w.n()).with_word_bits(fit_word_bits(&w));
    println!(
        "PPA: {} array, h = {} bits, MAXINT = {}",
        ppa.dim(),
        ppa.word_bits(),
        ppa.maxint()
    );

    let out = minimum_cost_path(&mut ppa, &w, depot).expect("solvable instance");

    println!("\nminimum costs to depot {depot}:");
    for (i, &cost) in out.sow.iter().enumerate() {
        let path = extract_path(&out, i);
        match (cost, path) {
            (INF, _) => println!("  vertex {i}: unreachable"),
            (c, Some(p)) => {
                let route: Vec<String> = p.iter().map(|v| v.to_string()).collect();
                println!("  vertex {i}: cost {c:3}  via {}", route.join(" -> "));
            }
            (c, None) => println!("  vertex {i}: cost {c} (pointer corrupt?)"),
        }
    }

    println!(
        "\niterations (max MCP hop-length + detection): {}",
        out.iterations
    );
    println!("{}", out.stats);
    println!(
        "per-iteration cost is O(h): {} steps for h = {} (independent of n)",
        out.stats.steps_per_iteration(),
        ppa.word_bits()
    );

    // Cross-check against the sequential oracle.
    let oracle = reference::bellman_ford_to_dest(&w, depot);
    assert_eq!(out.sow, {
        let mut d = oracle.dist.clone();
        d[depot] = 0;
        d
    });
    println!("\noracle check: PPA costs match Bellman-Ford exactly.");
}
