//! The language pipeline: run the paper's PPC source through the
//! interpreter and compare it with the native implementation.
//!
//! The paper implemented `minimum_cost_path()` in Polymorphic Parallel C
//! and validated it by simulation; this example does the same end to end:
//! parse → type-check → interpret on the simulated PPA, then cross-check
//! the output and the step counts against the hand-written Rust version,
//! and finally run the paper's bit-serial `min()` routine from its
//! printed source.
//!
//! Run with: `cargo run --example ppc_source`

use ppa_suite::prelude::*;
use ppc_lang::programs::{self, MINIMUM_COST_PATH, MIN_ROUTINE};

fn main() {
    let first_lines: String = MINIMUM_COST_PATH
        .lines()
        .filter(|l| !l.trim().is_empty())
        .take(8)
        .collect::<Vec<_>>()
        .join("\n");
    println!("interpreting the paper's PPC program (excerpt):\n{first_lines}\n...\n");

    let w = gen::random_connected(9, 0.2, 12, 7);
    let d = 4;

    // Interpreted run.
    let mut ippa = Ppa::square(w.n()).with_word_bits(fit_word_bits(&w));
    let interpreted = programs::run_minimum_cost_path(&mut ippa, &w, d).expect("program runs");

    // Native run.
    let mut nppa = Ppa::square(w.n()).with_word_bits(fit_word_bits(&w));
    let native = minimum_cost_path(&mut nppa, &w, d).expect("algorithm runs");

    println!("destination {d}: costs from each vertex");
    println!("  vertex   interpreted   native");
    for i in 0..w.n() {
        println!("  {i:6}   {:11}   {:6}", interpreted.sow[i], native.sow[i]);
    }
    assert_eq!(interpreted.sow, native.sow);
    assert!(validate::is_valid_solution(
        &w,
        d,
        &interpreted.sow,
        &interpreted.ptn
    ));
    println!("\ncosts identical; interpreted PTN validates optimal.");
    println!(
        "SIMD steps — interpreted: {}, native: {} (same O(p*h) shape)",
        interpreted.steps,
        native.stats.total.total()
    );

    // The paper's min() routine, from source.
    println!("\nrunning the paper's bit-serial min() routine from source:");
    println!("{MIN_ROUTINE}");
    let mut mppa = Ppa::square(5).with_word_bits(8);
    let values = Parallel::from_fn(mppa.dim(), |c| ((c.row * 41 + c.col * 17) % 250) as i64);
    let before = mppa.steps().total();
    let result = programs::run_min_routine(&mut mppa, &values).expect("routine runs");
    let steps = mppa.steps().total() - before;
    for r in 0..5 {
        let expect = *values.row(r).iter().min().unwrap();
        assert!(result.row(r).iter().all(|&v| v == expect));
        println!("  row {r}: values {:?} -> min {expect}", values.row(r));
    }
    println!("  routine cost: {steps} steps for h = 8 — O(h) as derived in Section 3.");
}
