//! # ppa-suite — reproduction of the IPPS'98 PPA minimum-cost-path system
//!
//! Umbrella crate re-exporting the whole workspace; the root package also
//! hosts the cross-crate integration tests (`tests/`) and the runnable
//! examples (`examples/`). See the individual crates for the real APIs:
//!
//! * [`machine`] — the Polymorphic Processor Array simulator;
//! * [`ppc`] — the Polymorphic Parallel C runtime;
//! * [`lang`] — the PPC language front end and interpreter;
//! * [`mcp`] — the paper's minimum-cost-path algorithm and extensions;
//! * [`graph`] — weight matrices, generators, sequential oracles;
//! * [`baselines`] — hypercube / GCN / plain-mesh / sequential comparators.
//!
//! ## Quickstart
//!
//! ```
//! use ppa_suite::prelude::*;
//!
//! let w = WeightMatrix::from_edges(3, &[(0, 1, 2), (1, 2, 2), (0, 2, 9)]);
//! let out = minimum_cost_path_auto(&w, 2).unwrap();
//! assert_eq!(out.sow, vec![4, 2, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ppa_baselines as baselines;
pub use ppa_graph as graph;
pub use ppa_machine as machine;
pub use ppa_mcp as mcp;
pub use ppa_ppc as ppc;
pub use ppc_lang as lang;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use ppa_baselines::{all_solvers, BaselineResult, McpSolver};
    pub use ppa_graph::{gen, reference, validate, Weight, WeightMatrix, INF};
    pub use ppa_machine::{Coord, Dim, Direction, ExecMode, StepReport};
    pub use ppa_mcp::apsp::{all_pairs, single_source};
    pub use ppa_mcp::closure::{reachability, transitive_closure};
    pub use ppa_mcp::mcp::{fit_word_bits, minimum_cost_path, minimum_cost_path_auto};
    pub use ppa_mcp::path::{all_paths, extract_path, max_hops, path_cost};
    pub use ppa_mcp::{McpError, McpOutput, McpStats};
    pub use ppa_ppc::{Parallel, Ppa, PpcError};
    pub use ppc_lang::programs::{run_minimum_cost_path, InterpretedMcp};
}
