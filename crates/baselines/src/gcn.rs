//! The Gated Connection Network baseline (paper reference \[5\]).
//!
//! Shu & Nash's GCN augments an SIMD array with gated tree interconnects
//! purpose-built for dynamic programming: a row or column can broadcast in
//! one (bit-serial) transfer and combine a minimum by the same
//! most-significant-bit-first elimination the PPA uses — the gates open
//! and close per bit plane. Per iteration the GCN therefore costs
//! `O(h)` steps, the same class as the PPA; the absolute constants differ
//! slightly (the GCN needs no head-forwarding pass because its tree root
//! holds the combine result directly).
//!
//! Bit-serial hardware has no separate "word" mode, so both accountings
//! of [`BaselineResult`] carry the same `O(h)`-per-iteration tally here.

use crate::cost::{BaselineResult, McpSolver, Meter};
use ppa_graph::{WeightMatrix, INF};
use ppa_obs::Recorder;

/// GCN MCP solver.
#[derive(Debug, Clone, Copy)]
pub struct Gcn {
    /// Word width `h` (every transfer/combine is a serial scan of `h`
    /// bit planes).
    pub word_bits: u32,
}

impl Gcn {
    /// Creates a solver for `h`-bit words.
    pub fn new(word_bits: u32) -> Self {
        Gcn { word_bits }
    }
}

impl McpSolver for Gcn {
    fn name(&self) -> &'static str {
        "gcn"
    }

    fn solve_observed(
        &self,
        w: &WeightMatrix,
        d: usize,
        rec: Option<&mut Recorder>,
    ) -> BaselineResult {
        let n = w.n();
        assert!(d < n, "destination out of range");
        let h = u64::from(self.word_bits);
        let mut meter = Meter::observed(rec);
        meter.enter(self.name());

        // Step 1: serial transfer of the one-edge costs into row d.
        let mut dist: Vec<i64> = (0..n).map(|i| w.get(i, d)).collect();
        dist[d] = 0;
        meter.flag_ops(h);

        let mut iterations = 0usize;
        loop {
            if meter.observing() {
                meter.enter(&format!("iteration[{iterations}]"));
            }
            iterations += 1;

            // Column broadcast through the gated tree: h bit planes.
            meter.flag_ops(h);
            // Local bit-serial add of W: h bit planes.
            meter.flag_ops(h);
            // Row minimum: MSB-first gated elimination, 2 gate settings
            // per bit plane, plus one serial read-out of the root value.
            meter.flag_ops(2 * h + h);
            // Update + change detection (bit-serial compare) + global-or.
            meter.flag_ops(h + 1);

            let mut next = dist.clone();
            let mut changed = false;
            for i in 0..n {
                if i == d {
                    continue;
                }
                for j in 0..n {
                    let wij = if i == j { 0 } else { w.get(i, j) };
                    if wij == INF || dist[j] == INF {
                        continue;
                    }
                    let cand = wij.saturating_add(dist[j]);
                    if cand < next[i] {
                        next[i] = cand;
                        changed = true;
                    }
                }
            }
            dist = next;
            meter.mark_iteration();
            meter.exit(); // iteration[i]
            if !changed {
                break;
            }
            assert!(iterations <= n, "non-negative weights must converge");
        }
        if let Some(m) = meter.metrics_mut() {
            m.inc("solver.iterations", iterations as u64);
        }
        meter.exit(); // solver span

        BaselineResult {
            name: self.name(),
            dist,
            iterations,
            word_steps: meter.word_steps(),
            bit_steps: meter.bit_steps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference::bellman_ford_to_dest;

    #[test]
    fn matches_oracle() {
        for seed in 0..8 {
            let w = gen::random_digraph(10, 0.35, 14, seed);
            let got = Gcn::new(16).solve(&w, 7);
            assert_eq!(got.dist, bellman_ford_to_dest(&w, 7).dist, "seed {seed}");
        }
    }

    #[test]
    fn cost_is_linear_in_h_and_flat_in_n() {
        let small_h = Gcn::new(8).solve(&gen::star(16, 0, 5, 1), 0);
        let big_h = Gcn::new(32).solve(&gen::star(16, 0, 5, 1), 0);
        let ratio = big_h.bit_steps as f64 / small_h.bit_steps as f64;
        assert!((3.0..5.0).contains(&ratio), "h ratio {ratio}");

        let small_n = Gcn::new(16).solve(&gen::star(8, 0, 5, 1), 0);
        let big_n = Gcn::new(16).solve(&gen::star(64, 0, 5, 1), 0);
        assert_eq!(small_n.bit_steps, big_n.bit_steps, "GCN must be flat in n");
    }

    #[test]
    fn same_complexity_class_as_ppa_iterations() {
        // Both accountings agree for bit-serial hardware.
        let r = Gcn::new(16).solve(&gen::ring(6), 0);
        assert_eq!(r.word_steps, r.bit_steps);
    }
}
