//! The plain (non-reconfigurable) mesh baseline.
//!
//! Same `n x n` PE layout as the PPA, same dynamic program — but with only
//! nearest-neighbour links. Every data movement the PPA does in one bus
//! step decays into a pipeline of shifts:
//!
//! * spreading the destination row's costs down each column: up to `n - 1`
//!   shift instructions in each vertical direction;
//! * the row-wise minimum: a sweep of `n - 1` shift-and-compare
//!   instructions, plus `n - 1` shifts to spread the result back.
//!
//! Each iteration is therefore `O(n)` word steps and the full run
//! `O(p * n)` — the quantity experiment T4 contrasts with the PPA's
//! `O(p * h)` to show what reconfigurable buses buy once `n >> h`.

use crate::cost::{BaselineResult, McpSolver, Meter};
use ppa_graph::{WeightMatrix, INF};
use ppa_obs::Recorder;

/// Plain-mesh MCP solver.
#[derive(Debug, Clone, Copy)]
pub struct PlainMesh {
    /// Word width used for the bit-serial accounting.
    pub word_bits: u32,
}

impl PlainMesh {
    /// Creates a solver that accounts bit-serial costs at width `h`.
    pub fn new(word_bits: u32) -> Self {
        PlainMesh { word_bits }
    }
}

impl McpSolver for PlainMesh {
    fn name(&self) -> &'static str {
        "plain-mesh"
    }

    fn solve_observed(
        &self,
        w: &WeightMatrix,
        d: usize,
        rec: Option<&mut Recorder>,
    ) -> BaselineResult {
        let n = w.n();
        assert!(d < n, "destination out of range");
        let h = self.word_bits;
        let mut meter = Meter::observed(rec);
        meter.enter(self.name());

        // Step 1: one-edge costs, assembled in row d. Getting column d of W
        // into row d costs one column sweep + one row sweep of shifts.
        let mut dist: Vec<i64> = (0..n).map(|i| w.get(i, d)).collect();
        dist[d] = 0;
        meter.word_ops(2 * (n as u64 - 1).max(1), h);

        let mut iterations = 0usize;
        loop {
            if meter.observing() {
                meter.enter(&format!("iteration[{iterations}]"));
            }
            iterations += 1;

            // Spread dist down/up each column: n-1 shifts per direction.
            meter.word_ops(2 * (n as u64 - 1).max(1), h);
            // Local add of W: one instruction.
            meter.word_ops(1, h);
            // Row-wise min: n-1 shift-and-compare, then n-1 to spread back.
            meter.word_ops(2 * (n as u64 - 1).max(1), h);
            // Update + change detection + global wired-AND test.
            meter.word_ops(1, h);
            meter.flag_ops(2);

            // Functional effect of the above (the model computes exactly
            // what the metered instructions would):
            let mut next = dist.clone();
            let mut changed = false;
            for i in 0..n {
                if i == d {
                    continue;
                }
                for j in 0..n {
                    let wij = if i == j { 0 } else { w.get(i, j) };
                    if wij == INF || dist[j] == INF {
                        continue;
                    }
                    let cand = wij.saturating_add(dist[j]);
                    if cand < next[i] {
                        next[i] = cand;
                        changed = true;
                    }
                }
            }
            dist = next;
            meter.mark_iteration();
            meter.exit(); // iteration[i]
            if !changed {
                break;
            }
            assert!(iterations <= n, "non-negative weights must converge");
        }
        if let Some(m) = meter.metrics_mut() {
            m.inc("solver.iterations", iterations as u64);
        }
        meter.exit(); // solver span

        BaselineResult {
            name: self.name(),
            dist,
            iterations,
            word_steps: meter.word_steps(),
            bit_steps: meter.bit_steps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference::bellman_ford_to_dest;

    #[test]
    fn matches_oracle() {
        for seed in 0..8 {
            let w = gen::random_digraph(11, 0.3, 12, seed);
            let got = PlainMesh::new(16).solve(&w, 3);
            assert_eq!(got.dist, bellman_ford_to_dest(&w, 3).dist, "seed {seed}");
        }
    }

    #[test]
    fn per_iteration_cost_grows_linearly_in_n() {
        // Stars keep p = 1 so total steps isolate the per-iteration term.
        let a = PlainMesh::new(16).solve(&gen::star(8, 0, 5, 1), 0);
        let b = PlainMesh::new(16).solve(&gen::star(32, 0, 5, 1), 0);
        assert_eq!(a.iterations, b.iterations);
        let ratio = b.word_steps as f64 / a.word_steps as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cost_is_independent_of_h_in_word_accounting() {
        let w = gen::ring(8);
        let a = PlainMesh::new(8).solve(&w, 0);
        let b = PlainMesh::new(32).solve(&w, 0);
        assert_eq!(a.word_steps, b.word_steps);
        assert!(b.bit_steps > a.bit_steps);
    }
}
