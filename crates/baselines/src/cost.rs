//! Shared cost accounting and the solver interface.
//!
//! Observability: every solver can run with a [`Recorder`] attached
//! ([`McpSolver::solve_observed`]), in which case the [`Meter`] mirrors
//! its tallies into the recorder as trace events and `steps.*` counters.
//! The recorder clock advances in **bit-steps** — the unit directly
//! comparable to the PPA's bit-serial controller steps — so profiles from
//! all architectures share one time axis.

use ppa_graph::{Weight, WeightMatrix};
use ppa_obs::Recorder;

/// Result of one baseline MCP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineResult {
    /// Architecture label.
    pub name: &'static str,
    /// `dist[i]` — minimum cost `i -> dest` (`ppa_graph::INF` if
    /// unreachable, 0 at the destination).
    pub dist: Vec<Weight>,
    /// Outer dynamic-program iterations executed.
    pub iterations: usize,
    /// SIMD controller steps assuming word-wide datapaths (every parallel
    /// instruction, transfer or compare costs 1).
    pub word_steps: u64,
    /// The same run costed for bit-serial datapaths: word transfers and
    /// compares cost `h` — the unit comparable to the PPA's bit-serial
    /// bus primitives.
    pub bit_steps: u64,
}

/// A single-destination MCP solver with step accounting.
pub trait McpSolver {
    /// Architecture label (stable, used in experiment tables).
    fn name(&self) -> &'static str;

    /// Solves all-vertices-to-`d` minimum cost paths, optionally emitting
    /// a trace and metrics through `rec` (spans per iteration, events per
    /// metered instruction batch, clock in bit-steps).
    fn solve_observed(
        &self,
        w: &WeightMatrix,
        d: usize,
        rec: Option<&mut Recorder>,
    ) -> BaselineResult;

    /// Solves without observation.
    fn solve(&self, w: &WeightMatrix, d: usize) -> BaselineResult {
        self.solve_observed(w, d, None)
    }
}

/// Step counter distinguishing word-width-independent instructions from
/// those a bit-serial datapath pays `h` for. When built with
/// [`Meter::observed`] it also forwards every tally to a [`Recorder`]
/// (events classed `word-op`/`flag-op`, clock advancing in bit-steps).
#[derive(Debug, Default)]
pub struct Meter<'a> {
    word_steps: u64,
    bit_steps: u64,
    /// Bit-step tally at the last [`Meter::mark_iteration`] call.
    iter_mark: u64,
    rec: Option<&'a mut Recorder>,
}

impl<'a> Meter<'a> {
    /// Fresh zeroed meter with no observer.
    pub fn new() -> Meter<'static> {
        Meter::default()
    }

    /// Fresh meter mirroring its tallies into `rec` (if `Some`).
    pub fn observed(rec: Option<&'a mut Recorder>) -> Meter<'a> {
        Meter {
            rec,
            ..Meter::default()
        }
    }

    /// Whether a recorder is attached (solvers use this to skip building
    /// span names on unobserved runs).
    pub fn observing(&self) -> bool {
        self.rec.is_some()
    }

    /// Opens a span in the attached recorder (no-op unobserved).
    pub fn enter(&mut self, name: &str) {
        if let Some(r) = self.rec.as_deref_mut() {
            r.enter(name);
        }
    }

    /// Closes the innermost recorder span (no-op unobserved).
    pub fn exit(&mut self) {
        if let Some(r) = self.rec.as_deref_mut() {
            r.exit();
        }
    }

    /// Records the bit-steps since the previous mark into the
    /// `solver.steps_per_iteration` histogram (no-op unobserved).
    pub fn mark_iteration(&mut self) {
        let delta = self.bit_steps - self.iter_mark;
        self.iter_mark = self.bit_steps;
        if let Some(r) = self.rec.as_deref_mut() {
            r.metrics.observe("solver.steps_per_iteration", delta);
        }
    }

    /// The attached recorder's metrics registry, if observing.
    pub fn metrics_mut(&mut self) -> Option<&mut ppa_obs::Metrics> {
        self.rec.as_deref_mut().map(|r| &mut r.metrics)
    }

    /// Records `count` instructions operating on full `h`-bit words
    /// (transfer, add, compare): 1 word-step each, `h` bit-steps each.
    pub fn word_ops(&mut self, count: u64, h: u32) {
        self.word_steps += count;
        self.bit_steps += count * u64::from(h);
        if let Some(r) = self.rec.as_deref_mut() {
            r.advance("word-op", count * u64::from(h));
        }
    }

    /// Records `count` single-bit / control instructions: 1 step under
    /// either accounting.
    pub fn flag_ops(&mut self, count: u64) {
        self.word_steps += count;
        self.bit_steps += count;
        if let Some(r) = self.rec.as_deref_mut() {
            r.advance("flag-op", count);
        }
    }

    /// Word-step tally.
    pub fn word_steps(&self) -> u64 {
        self.word_steps
    }

    /// Bit-step tally.
    pub fn bit_steps(&self) -> u64 {
        self.bit_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_separates_accountings() {
        let mut m = Meter::new();
        m.word_ops(3, 8);
        m.flag_ops(2);
        assert_eq!(m.word_steps(), 5);
        assert_eq!(m.bit_steps(), 3 * 8 + 2);
    }

    #[test]
    fn meter_default_is_zero() {
        let m = Meter::new();
        assert_eq!(m.word_steps(), 0);
        assert_eq!(m.bit_steps(), 0);
        assert!(!m.observing());
    }

    #[test]
    fn observed_meter_mirrors_into_recorder() {
        let sink = ppa_obs::MemorySink::new();
        let mut rec = Recorder::new(sink.clone());
        {
            let mut m = Meter::observed(Some(&mut rec));
            m.enter("solve");
            m.word_ops(2, 8);
            m.flag_ops(3);
            m.mark_iteration();
            m.exit();
            assert_eq!(m.bit_steps(), 19);
        }
        let metrics = rec.finish();
        assert!(sink.balanced());
        assert_eq!(sink.total_steps(), 19);
        assert_eq!(metrics.counter("steps.word-op"), 16);
        assert_eq!(metrics.counter("steps.flag-op"), 3);
        assert_eq!(metrics.counter("steps.total"), 19);
        let h = metrics.histogram("solver.steps_per_iteration").unwrap();
        assert_eq!((h.count, h.sum), (1, 19));
    }
}
