//! Shared cost accounting and the solver interface.

use ppa_graph::{Weight, WeightMatrix};

/// Result of one baseline MCP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineResult {
    /// Architecture label.
    pub name: &'static str,
    /// `dist[i]` — minimum cost `i -> dest` (`ppa_graph::INF` if
    /// unreachable, 0 at the destination).
    pub dist: Vec<Weight>,
    /// Outer dynamic-program iterations executed.
    pub iterations: usize,
    /// SIMD controller steps assuming word-wide datapaths (every parallel
    /// instruction, transfer or compare costs 1).
    pub word_steps: u64,
    /// The same run costed for bit-serial datapaths: word transfers and
    /// compares cost `h` — the unit comparable to the PPA's bit-serial
    /// bus primitives.
    pub bit_steps: u64,
}

/// A single-destination MCP solver with step accounting.
pub trait McpSolver {
    /// Architecture label (stable, used in experiment tables).
    fn name(&self) -> &'static str;

    /// Solves all-vertices-to-`d` minimum cost paths.
    fn solve(&self, w: &WeightMatrix, d: usize) -> BaselineResult;
}

/// Step counter distinguishing word-width-independent instructions from
/// those a bit-serial datapath pays `h` for.
#[derive(Debug, Clone, Copy, Default)]
pub struct Meter {
    word_steps: u64,
    bit_steps: u64,
}

impl Meter {
    /// Fresh zeroed meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Records `count` instructions operating on full `h`-bit words
    /// (transfer, add, compare): 1 word-step each, `h` bit-steps each.
    pub fn word_ops(&mut self, count: u64, h: u32) {
        self.word_steps += count;
        self.bit_steps += count * u64::from(h);
    }

    /// Records `count` single-bit / control instructions: 1 step under
    /// either accounting.
    pub fn flag_ops(&mut self, count: u64) {
        self.word_steps += count;
        self.bit_steps += count;
    }

    /// Word-step tally.
    pub fn word_steps(&self) -> u64 {
        self.word_steps
    }

    /// Bit-step tally.
    pub fn bit_steps(&self) -> u64 {
        self.bit_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_separates_accountings() {
        let mut m = Meter::new();
        m.word_ops(3, 8);
        m.flag_ops(2);
        assert_eq!(m.word_steps(), 5);
        assert_eq!(m.bit_steps(), 3 * 8 + 2);
    }

    #[test]
    fn meter_default_is_zero() {
        let m = Meter::new();
        assert_eq!(m.word_steps(), 0);
        assert_eq!(m.bit_steps(), 0);
    }
}
