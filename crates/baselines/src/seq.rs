//! The sequential CPU baseline: the same dynamic program, one relaxation
//! at a time — `O(n^2)` operations per round, `O(p * n^2)` total.

use crate::cost::{BaselineResult, McpSolver, Meter};
use ppa_graph::{WeightMatrix, INF};
use ppa_obs::Recorder;

/// Sequential Bellman-Ford-style solver (destination-oriented).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialBf;

impl SequentialBf {
    /// Creates the solver.
    pub fn new() -> Self {
        SequentialBf
    }
}

impl McpSolver for SequentialBf {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn solve_observed(
        &self,
        w: &WeightMatrix,
        d: usize,
        rec: Option<&mut Recorder>,
    ) -> BaselineResult {
        let n = w.n();
        assert!(d < n, "destination out of range");
        let mut meter = Meter::observed(rec);
        meter.enter(self.name());
        let mut dist: Vec<i64> = (0..n).map(|i| w.get(i, d)).collect();
        dist[d] = 0;
        meter.word_ops(n as u64, 64); // the initial copy touches n words
        let mut iterations = 0usize;
        loop {
            if meter.observing() {
                meter.enter(&format!("iteration[{iterations}]"));
            }
            iterations += 1;
            let mut changed = false;
            let mut next = dist.clone();
            for i in 0..n {
                if i == d {
                    continue;
                }
                for j in 0..n {
                    // One add + one compare per scanned pair; sequential
                    // machines are word-wide, so bit-serial accounting is
                    // irrelevant — use a nominal h of 64.
                    meter.word_ops(2, 64);
                    let wij = w.get(i, j);
                    if wij == INF || dist[j] == INF {
                        continue;
                    }
                    let cand = wij.saturating_add(dist[j]);
                    if cand < next[i] {
                        next[i] = cand;
                        changed = true;
                    }
                }
            }
            dist = next;
            meter.mark_iteration();
            meter.exit(); // iteration[i]
            if !changed {
                break;
            }
            assert!(iterations <= n, "non-negative weights must converge");
        }
        if let Some(m) = meter.metrics_mut() {
            m.inc("solver.iterations", iterations as u64);
        }
        meter.exit(); // solver span
        BaselineResult {
            name: self.name(),
            dist,
            iterations,
            word_steps: meter.word_steps(),
            bit_steps: meter.bit_steps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference::bellman_ford_to_dest;

    #[test]
    fn matches_oracle() {
        for seed in 0..10 {
            let w = gen::random_digraph(12, 0.3, 15, seed);
            let d = (seed as usize) % 12;
            let got = SequentialBf::new().solve(&w, d);
            assert_eq!(got.dist, bellman_ford_to_dest(&w, d).dist, "seed {seed}");
        }
    }

    #[test]
    fn step_count_scales_quadratically_in_n() {
        let a = SequentialBf::new().solve(&gen::star(8, 0, 5, 1), 0);
        let b = SequentialBf::new().solve(&gen::star(16, 0, 5, 1), 0);
        // Same p (=1), four times the vertices-squared work.
        let ratio = b.word_steps as f64 / a.word_steps as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn iterations_track_path_length() {
        let r = SequentialBf::new().solve(&gen::ring(9), 0);
        assert!(r.iterations >= 7, "{}", r.iterations);
        assert_eq!(r.dist[1], 8);
    }
}
