//! The Connection-Machine-style hypercube baseline (paper reference \[4\]).
//!
//! `n^2` PEs hold the weight matrix exactly as on the PPA; rows and
//! columns are embedded in hypercubes, so both the column broadcast of the
//! destination row and the row-wise minimum run as `ceil(log2 n)` rounds
//! of cube-neighbour exchange (recursive doubling / halving). The
//! simulation below performs the actual exchange schedule — not just the
//! closed-form count — and meters every round.
//!
//! Per iteration: `~3 * ceil(log2 n) + O(1)` word steps; with bit-serial
//! PEs (the CM-1 heritage) each word exchange costs `h` bit-steps. The
//! paper's "same complexity" claim is read in this unit: PPA iterations
//! cost `O(h)`, hypercube iterations `O(h log n)` bit-steps or
//! `O(log n)` word-steps — the classes coincide exactly when `h` and
//! `log n` track each other, which EXPERIMENTS.md discusses against the
//! measured numbers.

use crate::cost::{BaselineResult, McpSolver, Meter};
use ppa_graph::{WeightMatrix, INF};
use ppa_obs::Recorder;

/// Hypercube MCP solver.
#[derive(Debug, Clone, Copy)]
pub struct Hypercube {
    /// Word width used for the bit-serial accounting.
    pub word_bits: u32,
}

impl Hypercube {
    /// Creates a solver that accounts bit-serial costs at width `h`.
    pub fn new(word_bits: u32) -> Self {
        Hypercube { word_bits }
    }

    /// Hypercube dimensions needed to span `n` nodes.
    fn log2_ceil(n: usize) -> u32 {
        usize::BITS - n.next_power_of_two().leading_zeros() - 1
    }
}

impl McpSolver for Hypercube {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn solve_observed(
        &self,
        w: &WeightMatrix,
        d: usize,
        rec: Option<&mut Recorder>,
    ) -> BaselineResult {
        let n = w.n();
        assert!(d < n, "destination out of range");
        let h = self.word_bits;
        let dims = Self::log2_ceil(n.max(2));
        let padded = 1usize << dims;
        let mut meter = Meter::observed(rec);
        meter.enter(self.name());

        // Step 1: one-edge costs (a log-depth gather of column d into the
        // replicated dist register).
        let mut dist: Vec<i64> = (0..n).map(|i| w.get(i, d)).collect();
        dist[d] = 0;
        meter.word_ops(u64::from(dims), h);

        let mut iterations = 0usize;
        loop {
            if meter.observing() {
                meter.enter(&format!("iteration[{iterations}]"));
            }
            iterations += 1;

            // Column broadcast of dist by recursive doubling: `dims`
            // exchange rounds (executed for real on a padded register).
            let mut have: Vec<bool> = vec![true; padded]; // row d holds dist
            for round in 0..dims {
                meter.word_ops(1, h);
                // One exchange round along cube dimension `round`; the
                // value plane is replicated row-wise, so the functional
                // content is already `dist` — the loop models the traffic.
                let stride = 1usize << round;
                for i in 0..padded {
                    let partner = i ^ stride;
                    if partner < padded {
                        let merged = have[i] || have[partner];
                        have[i] = merged;
                    }
                }
            }
            debug_assert!(have.iter().all(|&b| b));

            // Local add of W: one instruction.
            meter.word_ops(1, h);
            let mut sums: Vec<Vec<i64>> = (0..n)
                .map(|i| {
                    (0..padded)
                        .map(|j| {
                            if j >= n {
                                return INF;
                            }
                            let wij = if i == j { 0 } else { w.get(i, j) };
                            if wij == INF || dist[j] == INF {
                                INF
                            } else {
                                wij.saturating_add(dist[j])
                            }
                        })
                        .collect()
                })
                .collect();

            // Row-wise min by recursive halving: `dims` compare-exchange
            // rounds, then `dims` rounds to spread the result back.
            for round in 0..dims {
                meter.word_ops(1, h);
                let stride = 1usize << round;
                for row in sums.iter_mut() {
                    for j in 0..padded {
                        let partner = j ^ stride;
                        let m = row[j].min(row[partner]);
                        row[j] = m;
                    }
                }
                let _ = round;
            }
            meter.word_ops(u64::from(dims), h); // result re-broadcast

            // Update + change detection + global-or.
            meter.word_ops(1, h);
            meter.flag_ops(2);
            let mut changed = false;
            let mut next = dist.clone();
            for (i, next_i) in next.iter_mut().enumerate() {
                if i == d {
                    continue;
                }
                let m = sums[i][0];
                if m < *next_i {
                    *next_i = m;
                    changed = true;
                }
            }
            dist = next;
            meter.mark_iteration();
            meter.exit(); // iteration[i]
            if !changed {
                break;
            }
            assert!(iterations <= n, "non-negative weights must converge");
        }
        if let Some(m) = meter.metrics_mut() {
            m.inc("solver.iterations", iterations as u64);
        }
        meter.exit(); // solver span

        BaselineResult {
            name: self.name(),
            dist,
            iterations,
            word_steps: meter.word_steps(),
            bit_steps: meter.bit_steps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference::bellman_ford_to_dest;

    #[test]
    fn matches_oracle() {
        for seed in 0..8 {
            let w = gen::random_digraph(13, 0.25, 10, seed);
            let got = Hypercube::new(16).solve(&w, 5);
            assert_eq!(got.dist, bellman_ford_to_dest(&w, 5).dist, "seed {seed}");
        }
    }

    #[test]
    fn matches_oracle_on_non_power_of_two_sizes() {
        for n in [3usize, 5, 9, 17] {
            let w = gen::ring(n);
            let got = Hypercube::new(12).solve(&w, 0);
            assert_eq!(got.dist, bellman_ford_to_dest(&w, 0).dist, "n={n}");
        }
    }

    #[test]
    fn per_iteration_cost_grows_logarithmically() {
        let a = Hypercube::new(16).solve(&gen::star(8, 0, 5, 1), 0);
        let b = Hypercube::new(16).solve(&gen::star(64, 0, 5, 1), 0);
        assert_eq!(a.iterations, b.iterations);
        // log2 64 / log2 8 = 2: cost should roughly double, far below the
        // 8x a linear-in-n machine would show.
        let ratio = b.word_steps as f64 / a.word_steps as f64;
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn log2_ceil() {
        assert_eq!(Hypercube::log2_ceil(2), 1);
        assert_eq!(Hypercube::log2_ceil(3), 2);
        assert_eq!(Hypercube::log2_ceil(4), 2);
        assert_eq!(Hypercube::log2_ceil(9), 4);
    }
}
