//! # ppa-baselines — the architectures the paper compares against
//!
//! Section 1 and the concluding remarks of the paper position the PPA
//! result against two machines: the hypercube interconnect of the
//! **Connection Machine** (Hillis, reference \[4\]) and the **Gated
//! Connection Network** (Shu & Nash, reference \[5\]) — "PPA delivers the
//! same performance, in terms of computational complexity" as both. To
//! make that claim measurable this crate implements the same
//! single-destination MCP dynamic program on functional models of:
//!
//! * [`hypercube::Hypercube`] — an SIMD array whose rows/columns are
//!   embedded in hypercubes; broadcast and min-reduction run in
//!   `ceil(log2 n)` exchange steps (word-parallel PEs) or `h *
//!   ceil(log2 n)` bit-steps (bit-serial PEs, CM-1 style);
//! * [`gcn::Gcn`] — row/column gated tree buses: one-step broadcast and an
//!   `O(h)` bit-serial combine, the same complexity class as the PPA;
//! * [`mesh::PlainMesh`] — the same mesh as the PPA but *without*
//!   reconfigurable buses: every broadcast/reduction decays to `n - 1`
//!   nearest-neighbour shifts, making each iteration `O(n)`;
//! * [`seq::SequentialBf`] — the CPU dynamic program, `O(n^2)` work per
//!   round.
//!
//! All models implement [`cost::McpSolver`] and report two step tallies:
//! `word_steps` (each SIMD instruction costs 1, word-wide datapaths) and
//! `bit_steps` (word transfers/compares cost `h`, bit-serial datapaths —
//! the right unit for comparing against the PPA's bit-serial buses).
//! Experiment T4 tabulates all of them against the measured PPA run.
//!
//! These are *models built for step accounting*, not cycle-accurate
//! recreations of 1980s hardware — DESIGN.md documents the substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over multiple parallel arrays are the dominant idiom in
// this numeric code; the iterator rewrites clippy suggests obscure the
// row/column index math that mirrors the paper's notation.
#![allow(clippy::needless_range_loop)]

pub mod cost;
pub mod gcn;
pub mod hypercube;
pub mod mesh;
pub mod seq;

pub use cost::{BaselineResult, McpSolver};
pub use gcn::Gcn;
pub use hypercube::Hypercube;
pub use mesh::PlainMesh;
pub use seq::SequentialBf;

/// Every baseline solver, boxed, for sweep-style experiments.
pub fn all_solvers(word_bits: u32) -> Vec<Box<dyn McpSolver>> {
    vec![
        Box::new(SequentialBf::new()),
        Box::new(PlainMesh::new(word_bits)),
        Box::new(Hypercube::new(word_bits)),
        Box::new(Gcn::new(word_bits)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_obs::{MemorySink, Recorder};

    #[test]
    fn all_solvers_lists_four() {
        let s = all_solvers(16);
        assert_eq!(s.len(), 4);
        let names: Vec<_> = s.iter().map(|x| x.name()).collect();
        assert!(names.contains(&"sequential"));
        assert!(names.contains(&"plain-mesh"));
        assert!(names.contains(&"hypercube"));
        assert!(names.contains(&"gcn"));
    }

    #[test]
    fn every_solver_emits_a_profile_through_the_same_api() {
        let w = ppa_graph::gen::ring(6);
        for solver in all_solvers(12) {
            let sink = MemorySink::new();
            let mut rec = Recorder::new(sink.clone());
            let observed = solver.solve_observed(&w, 0, Some(&mut rec));
            let metrics = rec.finish();
            let plain = solver.solve(&w, 0);

            // Observation must not perturb the result or the accounting.
            assert_eq!(observed, plain, "{}", solver.name());
            assert!(sink.balanced(), "{}", solver.name());
            // The trace clock and `steps.total` both tick in bit-steps.
            assert_eq!(sink.total_steps(), observed.bit_steps, "{}", solver.name());
            assert_eq!(metrics.counter("steps.total"), observed.bit_steps);
            assert_eq!(
                metrics.counter("solver.iterations"),
                observed.iterations as u64
            );
            // Every iteration shows up as a span under the solver's name.
            let totals = sink.span_totals();
            assert!(
                totals
                    .iter()
                    .any(|(p, _)| p.starts_with(solver.name()) && p.contains("iteration[0]")),
                "{}: {totals:?}",
                solver.name()
            );
            let hist = metrics.histogram("solver.steps_per_iteration").unwrap();
            assert_eq!(hist.count, observed.iterations as u64, "{}", solver.name());
        }
    }
}
