//! Property tests of the redundant voter — the vote-integrity analogue
//! of `report faults`' zero-silent-wrong gate:
//!
//! * a seeded stuck-at fault inside exactly one replica's band is
//!   always flagged by the DMR vote (or surfaces as a typed
//!   machine-level error) and NEVER produces a silently-wrong accepted
//!   result;
//! * correcting TMR returns an output bit-identical to the fault-free
//!   solo solve — sow, ptn, iteration count and the full per-phase
//!   step ledger — for every such fault.

#![allow(clippy::needless_range_loop)]
use ppa_graph::{gen, WeightMatrix};
use ppa_machine::{Coord, FaultMap, SwitchFault};
use ppa_mcp::batch::replicate;
use ppa_mcp::{BatchSession, McpError, McpOutput, McpSession, Redundancy};
use ppa_ppc::Ppa;
use proptest::prelude::*;

/// An arbitrary small connected-ish weighted digraph.
fn digraph() -> impl Strategy<Value = WeightMatrix> {
    (3usize..=6, 0u64..1000).prop_flat_map(|(n, seed)| {
        (1usize..=3).prop_map(move |extra| {
            // A ring guarantees every vertex reaches the destination;
            // sprinkle a few extra seeded edges on top for variety.
            let mut w = gen::ring(n);
            let spice = gen::random_digraph(n, 0.3, 9, seed);
            let mut added = 0usize;
            for i in 0..n {
                for j in 0..n {
                    if i != j && added < extra * n {
                        let wij = spice.get(i, j);
                        if wij != ppa_graph::INF {
                            w.set(i, j, wij);
                            added += 1;
                        }
                    }
                }
            }
            w
        })
    })
}

/// A single stuck-at fault, lane-local (row, col < n), plus its flavor.
fn lane_fault(n_max: usize) -> impl Strategy<Value = (usize, usize, SwitchFault)> {
    (
        0..n_max,
        0..n_max,
        prop_oneof![Just(SwitchFault::StuckOpen), Just(SwitchFault::StuckShort)],
    )
}

/// The fault-free solo solve at the batch session's word width.
fn healthy_solo(w: &WeightMatrix, d: usize, word_bits: u32) -> McpOutput {
    let ppa = Ppa::square(w.n()).with_word_bits(word_bits);
    McpSession::from_ppa(ppa, w).unwrap().solve(d).unwrap()
}

/// A session over `r` replicas of `w` with one stuck-at fault injected
/// in replica lane `lane`'s band at lane-local `(row, col)`.
fn faulty_session(
    w: &WeightMatrix,
    r: usize,
    lane: usize,
    row: usize,
    col: usize,
    fault: SwitchFault,
) -> BatchSession {
    let mut sess = BatchSession::new(&replicate(w, r)).unwrap();
    let n = w.n();
    let mut fm = FaultMap::new();
    fm.inject(Coord::new(row % n, lane * n + (col % n)), fault);
    sess.ppa_mut().machine_mut().attach_faults(fm);
    sess
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // DMR vote integrity: with one stuck-at fault inside exactly one
    // replica's band, an accepted (Ok) result is always bit-identical
    // to the fault-free solo solve, and any divergence surfaces as a
    // typed corruption error naming suspect lanes.
    #[test]
    fn dmr_never_accepts_a_silently_wrong_result(
        w in digraph(),
        d_pick in 0usize..6,
        (row, col, fault) in lane_fault(6),
        lane in 0usize..2,
    ) {
        let n = w.n();
        let d = d_pick % n;
        let mut sess = faulty_session(&w, 2, lane, row, col, fault);
        let healthy = healthy_solo(&w, d, sess.word_bits());
        match sess.solve_redundant(&[d], Redundancy::Dmr) {
            Err(e) => prop_assert!(e.indicates_corruption(), "untyped abort: {e}"),
            Ok(wave) => {
                let voted = &wave.lanes[0];
                match &voted.outcome {
                    Ok(out) => {
                        prop_assert!(!voted.vote.disagreed);
                        prop_assert_eq!(out, &healthy, "accepted result differs from healthy solo");
                    }
                    Err(McpError::VoteDisagreement { lanes, .. }) => {
                        prop_assert!(voted.vote.disagreed);
                        prop_assert!(!lanes.is_empty(), "disagreement names no suspect");
                        prop_assert_eq!(wave.self_tests, 1, "disagreement runs one targeted BIST");
                        // When BIST pinned the stuck switch, the suspicion
                        // narrowed to the faulty replica's band.
                        if !voted.vote.located.is_empty() {
                            prop_assert_eq!(&voted.vote.suspect_lanes, &vec![lane]);
                        }
                    }
                    Err(e) => prop_assert!(e.indicates_corruption(), "untyped lane error: {e}"),
                }
            }
        }
    }

    // TMR correction: with one stuck-at fault inside exactly one
    // replica's band, correcting TMR always returns Ok with an output
    // bit-identical to the fault-free solo solve (stats included).
    #[test]
    fn tmr_correction_is_bit_identical_to_the_healthy_solo(
        w in digraph(),
        d_pick in 0usize..6,
        (row, col, fault) in lane_fault(6),
        lane in 0usize..3,
    ) {
        let n = w.n();
        let d = d_pick % n;
        let mode = Redundancy::Tmr { correct: true };
        let mut sess = faulty_session(&w, 3, lane, row, col, fault);
        let healthy = healthy_solo(&w, d, sess.word_bits());
        match sess.solve_redundant(&[d], mode) {
            // A whole-wave machine abort is a reported outcome, not a
            // wrong answer; single-fault TMR must otherwise correct.
            Err(e) => prop_assert!(e.indicates_corruption(), "untyped abort: {e}"),
            Ok(wave) => {
                let voted = &wave.lanes[0];
                match &voted.outcome {
                    Ok(out) => {
                        prop_assert_eq!(out, &healthy, "TMR output not bit-identical");
                        prop_assert_eq!(voted.vote.corrected, voted.vote.disagreed);
                        if voted.vote.disagreed {
                            prop_assert_eq!(&voted.vote.suspect_lanes, &vec![lane],
                                "majority must out-vote exactly the faulty replica");
                        }
                    }
                    Err(e) => prop_assert!(
                        e.indicates_corruption(),
                        "TMR failed without a corruption signal: {e}"
                    ),
                }
            }
        }
    }
}
