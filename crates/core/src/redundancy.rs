//! Lane-replicated redundant execution: DMR/TMR voting on the array.
//!
//! PR 8's lane batching made lanes *physically disjoint column bands*:
//! no bus transaction of a [`BatchSession`] solve crosses a lane
//! boundary (column buses are lane-pure, west folds partition at the
//! per-lane Open heads, and the batch initializer broadcasts south
//! only). A single stuck-at switch fault therefore corrupts at most the
//! lanes *adjacent to its own column band* — and two adjacent replicas
//! of the *same* problem carry identical data, so even a merged
//! boundary cluster folds to the same value. Replicating one
//! destination into `R` lanes turns fault detection into a constant
//! *host-side compare* of the replica outputs:
//!
//! * **DMR** (`R = 2`) — a disagreement proves a replica was corrupted;
//!   the solve fails typed ([`McpError::VoteDisagreement`]) instead of
//!   returning a silently wrong answer. No sequential re-solve, no
//!   host-side Bellman check on the hot path.
//! * **TMR** (`R = 3`) — the majority value is the healthy result: at
//!   most one replica of a group can be corrupted by a single stuck-at
//!   fault, so a 2-of-3 vote both detects *and corrects*, bit-identical
//!   to a fault-free solo run (outputs **and** [`McpStats`] — the vote
//!   compares the full [`McpOutput`]).
//!
//! A disagreeing vote names its suspect lanes; [`LaneLayout::band`]
//! maps each suspect back to a physical column window, and a targeted
//! BIST sweep ([`Machine::self_test`](ppa_machine::Machine::self_test)
//! intersected with the suspect bands via
//! [`FaultMap::faults_in_cols`](ppa_machine::FaultMap::faults_in_cols)
//! semantics) localizes the stuck switches behind the disagreement.
//!
//! [`RecoveryPolicy::Redundant`](crate::RecoveryPolicy) wires this into
//! [`solve_with_recovery`](crate::solve_with_recovery): the recovering
//! solver replicates the problem onto a wide array that inherits the
//! original machine's fault map, votes, and — under TMR — returns the
//! corrected answer without ever touching the sequential reference.

use crate::batch::{BatchSession, LaneLimit};
use crate::error::McpError;
use crate::mcp::McpOutput;
use crate::Result;
use ppa_machine::{Coord, Executor, StepReport, SwitchFault};
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// How many lanes each destination occupies, and what a disagreement
/// means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Redundancy {
    /// One lane per destination: no replication, no vote.
    #[default]
    Off,
    /// Dual modular redundancy: two replica lanes per destination. A
    /// disagreement *detects* corruption (typed error); it cannot tell
    /// which replica is right.
    Dmr,
    /// Triple modular redundancy: three replica lanes per destination,
    /// 2-of-3 majority vote.
    Tmr {
        /// `true`: return the majority result (detect *and* correct).
        /// `false`: detect-only — any disagreement is a typed error,
        /// like DMR, but the minority lane is still named exactly.
        correct: bool,
    },
}

impl Redundancy {
    /// Replica lanes per destination (1, 2 or 3).
    pub fn replicas(self) -> usize {
        match self {
            Redundancy::Off => 1,
            Redundancy::Dmr => 2,
            Redundancy::Tmr { .. } => 3,
        }
    }

    /// Whether a majority disagreement yields a corrected result
    /// instead of a typed error.
    pub fn corrects(self) -> bool {
        matches!(self, Redundancy::Tmr { correct: true })
    }

    /// Each item of `items` repeated [`Redundancy::replicas`] times,
    /// adjacently — the lane order [`BatchSession::solve_redundant`]
    /// expects for graphs and destinations.
    pub fn expand<T: Clone>(self, items: &[T]) -> Vec<T> {
        let r = self.replicas();
        let mut out = Vec::with_capacity(items.len() * r);
        for item in items {
            for _ in 0..r {
                out.push(item.clone());
            }
        }
        out
    }
}

impl fmt::Display for Redundancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Redundancy::Off => f.write_str("off"),
            Redundancy::Dmr => f.write_str("dmr"),
            Redundancy::Tmr { correct: true } => f.write_str("tmr"),
            Redundancy::Tmr { correct: false } => f.write_str("tmr-detect"),
        }
    }
}

impl FromStr for Redundancy {
    type Err = String;

    /// Parses the CLI/config spelling: `off`, `dmr`, `tmr` (correcting)
    /// or `tmr-detect`.
    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "off" => Ok(Redundancy::Off),
            "dmr" => Ok(Redundancy::Dmr),
            "tmr" => Ok(Redundancy::Tmr { correct: true }),
            "tmr-detect" => Ok(Redundancy::Tmr { correct: false }),
            other => Err(format!(
                "unknown redundancy mode {other:?} (expected off|dmr|tmr|tmr-detect)"
            )),
        }
    }
}

/// How one destination's replica vote went.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VoteReport {
    /// Replica lanes this destination occupied.
    pub replicas: usize,
    /// Whether any replica disagreed with the others.
    pub disagreed: bool,
    /// Whether a TMR majority overrode a corrupted minority replica
    /// (always `false` for DMR and detect-only TMR).
    pub corrected: bool,
    /// Absolute lane indices voted out. For a DMR tie both lanes start
    /// suspect; when targeted BIST localizes stuck switches in exactly
    /// one suspect's band, the suspicion narrows to that lane.
    pub suspect_lanes: Vec<usize>,
    /// Physical column bands of the suspect lanes
    /// ([`LaneLayout::band`](ppa_machine::LaneLayout::band)), in
    /// `suspect_lanes` order.
    pub suspect_bands: Vec<Range<usize>>,
    /// Stuck switches the targeted BIST sweep localized inside the
    /// suspect bands (empty when the sweep found nothing there — e.g.
    /// a transient glitch corrupted the replica and left no fault).
    pub located: Vec<(Coord, SwitchFault)>,
}

/// One destination's voted outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct VotedLane {
    /// The voted result: the unanimous (or TMR-corrected majority)
    /// output, or a typed error — [`McpError::VoteDisagreement`] when
    /// the vote detected corruption it could not correct.
    pub outcome: Result<McpOutput>,
    /// Vote accounting for this destination.
    pub vote: VoteReport,
}

/// A whole redundant wave: one [`VotedLane`] per destination plus the
/// shared diagnostic cost (at most one BIST sweep per wave, run only
/// when some vote disagreed).
#[derive(Debug, Clone, PartialEq)]
pub struct RedundantWave {
    /// Per-destination voted outcomes, in destination order.
    pub lanes: Vec<VotedLane>,
    /// BIST sweeps run for this wave (0 or 1).
    pub self_tests: usize,
    /// Controller steps the targeted BIST localization consumed.
    pub bist_steps: StepReport,
}

impl<E: Executor> BatchSession<E> {
    /// Solves `dests` with each destination replicated into
    /// `mode.replicas()` adjacent lanes and voted (see the module
    /// docs). The session must have been built with the replicated
    /// graph list — [`Redundancy::expand`] produces the expected lane
    /// order — so `lanes() == dests.len() * mode.replicas()`.
    ///
    /// The hot path is vote-only: replicas are compared host-side,
    /// byte for byte (outputs *and* stats); no sequential reference
    /// and no host-side Bellman check is consulted. When some vote
    /// disagrees, one targeted BIST sweep localizes stuck switches in
    /// the suspect bands.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] if the lane count does not match the
    /// destination count times the replica factor, or if the lanes of
    /// one replica group hold different graphs; any machine-level
    /// failure of the underlying batch solve.
    pub fn solve_redundant(&mut self, dests: &[usize], mode: Redundancy) -> Result<RedundantWave> {
        let limits = vec![LaneLimit::default(); dests.len()];
        self.solve_redundant_with(dests, &limits, mode)
    }

    /// [`BatchSession::solve_redundant`] with one [`LaneLimit`] per
    /// *destination* (each limit applies to all of that destination's
    /// replica lanes; cancel tokens are shared, budgets are the same
    /// solo-equivalent ledger on every replica).
    ///
    /// # Errors
    /// As [`BatchSession::solve_redundant`], plus
    /// [`McpError::BatchShape`] if `limits` does not cover every
    /// destination.
    pub fn solve_redundant_with(
        &mut self,
        dests: &[usize],
        limits: &[LaneLimit],
        mode: Redundancy,
    ) -> Result<RedundantWave> {
        let r = mode.replicas();
        let lanes = self.lanes();
        if dests.len() * r != lanes {
            return Err(McpError::BatchShape {
                detail: format!(
                    "{} destination(s) x {r} replica(s) need {} lane(s) but the session has {lanes}",
                    dests.len(),
                    dests.len() * r,
                ),
            });
        }
        if limits.len() != dests.len() {
            return Err(McpError::BatchShape {
                detail: format!(
                    "{} lane limit(s) for {} destination(s)",
                    limits.len(),
                    dests.len()
                ),
            });
        }
        for g in 0..dests.len() {
            let group = &self.graphs()[g * r..(g + 1) * r];
            if group.iter().any(|w| *w != group[0]) {
                return Err(McpError::BatchShape {
                    detail: format!(
                        "replica lanes {}..{} of destination group {g} hold different graphs",
                        g * r,
                        (g + 1) * r
                    ),
                });
            }
        }

        let exp_dests = mode.expand(dests);
        let exp_limits = mode.expand(limits);
        let wave = self.solve_with(&exp_dests, &exp_limits)?;

        // ---- the vote: host-side, full-output equality per group ----
        let layout = self.layout();
        let mut voted: Vec<VotedLane> = Vec::with_capacity(dests.len());
        let mut any_disagreed = false;
        for g in 0..dests.len() {
            let group = &wave[g * r..(g + 1) * r];
            // Equivalence classes under full equality (Ok outputs
            // compare sow, ptn, iterations AND stats; Err values
            // compare as typed errors).
            let mut classes: Vec<Vec<usize>> = Vec::new();
            for (i, res) in group.iter().enumerate() {
                match classes.iter_mut().find(|c| group[c[0]] == *res) {
                    Some(class) => class.push(i),
                    None => classes.push(vec![i]),
                }
            }
            let majority = classes.iter().max_by_key(|c| c.len()).cloned();
            let majority = majority.filter(|c| c.len() * 2 > r);
            let unanimous = classes.len() == 1;
            let disagreed = !unanimous;
            any_disagreed |= disagreed;

            let suspect_local: Vec<usize> = match (&majority, disagreed) {
                (_, false) => Vec::new(),
                // A strict majority indicts exactly the minority.
                (Some(maj), true) => (0..r).filter(|i| !maj.contains(i)).collect(),
                // No majority (DMR tie, or three-way TMR split): every
                // replica is suspect until BIST narrows it down.
                (None, true) => (0..r).collect(),
            };
            let suspect_lanes: Vec<usize> = suspect_local.iter().map(|i| g * r + i).collect();
            let suspect_bands: Vec<Range<usize>> =
                suspect_lanes.iter().map(|&l| layout.band(l)).collect();

            let outcome = if !disagreed {
                group[0].clone()
            } else if let (Some(maj), true) = (&majority, mode.corrects()) {
                group[maj[0]].clone()
            } else {
                Err(McpError::VoteDisagreement {
                    lanes: suspect_lanes.clone(),
                    located: Vec::new(), // filled in after the sweep
                })
            };
            let corrected = disagreed && mode.corrects() && outcome.is_ok();
            voted.push(VotedLane {
                outcome,
                vote: VoteReport {
                    replicas: r,
                    disagreed,
                    corrected,
                    suspect_lanes,
                    suspect_bands,
                    located: Vec::new(),
                },
            });
        }

        // ---- targeted BIST: one sweep per wave, only on disagreement ----
        let mut self_tests = 0usize;
        let mut bist_steps = StepReport::default();
        if any_disagreed {
            let report = self.ppa_mut().machine_mut().self_test();
            self_tests = 1;
            bist_steps = report.steps;
            for lane in &mut voted {
                if !lane.vote.disagreed {
                    continue;
                }
                let located: Vec<(Coord, SwitchFault)> = report
                    .located
                    .iter()
                    .filter(|(c, _)| lane.vote.suspect_bands.iter().any(|b| b.contains(&c.col)))
                    .copied()
                    .collect();
                // When the sweep hits exactly some of the suspects'
                // bands, the vote's suspicion narrows to those lanes
                // (a DMR tie becomes an attribution).
                if !located.is_empty() {
                    let guilty: Vec<usize> = lane
                        .vote
                        .suspect_lanes
                        .iter()
                        .copied()
                        .filter(|&l| located.iter().any(|(c, _)| layout.band(l).contains(&c.col)))
                        .collect();
                    if !guilty.is_empty() && guilty.len() < lane.vote.suspect_lanes.len() {
                        lane.vote.suspect_lanes = guilty;
                        lane.vote.suspect_bands = lane
                            .vote
                            .suspect_lanes
                            .iter()
                            .map(|&l| layout.band(l))
                            .collect();
                    }
                }
                lane.vote.located = located.clone();
                if let Err(McpError::VoteDisagreement {
                    lanes: err_lanes,
                    located: err_located,
                }) = &mut lane.outcome
                {
                    *err_lanes = lane.vote.suspect_lanes.clone();
                    *err_located = located.iter().map(|&(c, _)| c).collect();
                }
            }
        }

        let disagreements = voted.iter().filter(|l| l.vote.disagreed).count() as u64;
        let corrections = voted.iter().filter(|l| l.vote.corrected).count() as u64;
        if let Some(m) = self.ppa_mut().metrics_mut() {
            m.inc("redundancy.votes", dests.len() as u64);
            m.inc("redundancy.disagreements", disagreements);
            m.inc("redundancy.corrected", corrections);
            m.inc("redundancy.self_tests", self_tests as u64);
        }

        Ok(RedundantWave {
            lanes: voted,
            self_tests,
            bist_steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::replicate;
    use crate::McpSession;
    use ppa_graph::{gen, WeightMatrix};
    use ppa_machine::FaultMap;
    use ppa_ppc::Ppa;

    fn solo(w: &WeightMatrix, d: usize, word_bits: u32) -> McpOutput {
        let ppa = Ppa::square(w.n()).with_word_bits(word_bits);
        McpSession::from_ppa(ppa, w).unwrap().solve(d).unwrap()
    }

    fn session_for(w: &WeightMatrix, dests: usize, mode: Redundancy) -> BatchSession {
        BatchSession::new(&replicate(w, dests * mode.replicas())).unwrap()
    }

    #[test]
    fn mode_grammar_round_trips() {
        for mode in [
            Redundancy::Off,
            Redundancy::Dmr,
            Redundancy::Tmr { correct: true },
            Redundancy::Tmr { correct: false },
        ] {
            assert_eq!(mode.to_string().parse::<Redundancy>().unwrap(), mode);
        }
        assert_eq!(Redundancy::Off.replicas(), 1);
        assert_eq!(Redundancy::Dmr.replicas(), 2);
        assert_eq!(Redundancy::Tmr { correct: true }.replicas(), 3);
        assert!(Redundancy::Tmr { correct: true }.corrects());
        assert!(!Redundancy::Tmr { correct: false }.corrects());
        assert!("nmr".parse::<Redundancy>().is_err());
        assert_eq!(Redundancy::Dmr.expand(&[7usize, 9]), vec![7, 7, 9, 9]);
    }

    #[test]
    fn healthy_votes_are_unanimous_and_bit_identical_to_solo() {
        let w = gen::random_connected(6, 0.4, 11, 21);
        for mode in [
            Redundancy::Dmr,
            Redundancy::Tmr { correct: true },
            Redundancy::Tmr { correct: false },
        ] {
            let mut sess = session_for(&w, 2, mode);
            let h = sess.word_bits();
            let wave = sess.solve_redundant(&[0, 3], mode).unwrap();
            assert_eq!(wave.self_tests, 0, "no disagreement, no sweep");
            for (lane, d) in wave.lanes.iter().zip([0usize, 3]) {
                assert!(!lane.vote.disagreed);
                assert!(!lane.vote.corrected);
                assert!(lane.vote.suspect_lanes.is_empty());
                assert_eq!(lane.outcome.as_ref().unwrap(), &solo(&w, d, h));
            }
        }
    }

    /// Sweep a stuck-at fault over every switch box of replica lane 1's
    /// band: DMR must flag every effective fault by vote and never
    /// accept a wrong answer; the suspect attribution must name lane 1
    /// whenever BIST localizes the fault.
    #[test]
    fn dmr_never_accepts_a_corrupted_replica() {
        let w = gen::ring(5);
        let healthy = {
            let sess = session_for(&w, 1, Redundancy::Dmr);
            solo(&w, 0, sess.word_bits())
        };
        let n = w.n();
        let mut effective = 0usize;
        for row in 0..n {
            for col in n..2 * n {
                for fault in [SwitchFault::StuckOpen, SwitchFault::StuckShort] {
                    let mut sess = session_for(&w, 1, Redundancy::Dmr);
                    let mut fm = FaultMap::new();
                    fm.inject(Coord::new(row, col), fault);
                    sess.ppa_mut().machine_mut().attach_faults(fm);
                    let wave = match sess.solve_redundant(&[0], Redundancy::Dmr) {
                        Ok(wave) => wave,
                        // A machine-level abort is a *reported* outcome,
                        // never a wrong answer.
                        Err(e) => {
                            assert!(e.indicates_corruption(), "({row},{col}) {fault}: {e}");
                            continue;
                        }
                    };
                    let lane = &wave.lanes[0];
                    match &lane.outcome {
                        Ok(out) => {
                            // The fault was ineffective for this solve;
                            // the vote must have been unanimous and right.
                            assert!(!lane.vote.disagreed, "({row},{col}) {fault}");
                            assert_eq!(out, &healthy, "({row},{col}) {fault}: silent wrong");
                        }
                        Err(McpError::VoteDisagreement { lanes, .. }) => {
                            effective += 1;
                            assert!(lane.vote.disagreed);
                            assert!(
                                lanes.contains(&1) || lanes.contains(&0),
                                "({row},{col}) {fault}: no suspect named"
                            );
                            // BIST sees the stuck switch, so the tie
                            // narrows to the faulty band: lane 1.
                            if !lane.vote.located.is_empty() {
                                assert_eq!(lane.vote.suspect_lanes, vec![1]);
                                assert_eq!(lane.vote.suspect_bands, vec![n..2 * n]);
                            }
                            assert_eq!(wave.self_tests, 1);
                        }
                        Err(e) => {
                            assert!(e.indicates_corruption(), "({row},{col}) {fault}: {e}");
                        }
                    }
                }
            }
        }
        assert!(effective > 0, "the sweep never produced a divergence");
    }

    /// TMR with `correct: true` must return the healthy answer for
    /// every single stuck-at fault in one replica's band — bit
    /// identical to a fault-free solo run, stats included.
    #[test]
    fn tmr_corrects_to_the_bit_identical_healthy_output() {
        let mode = Redundancy::Tmr { correct: true };
        let w = gen::ring(5);
        let n = w.n();
        let healthy = {
            let sess = session_for(&w, 1, mode);
            solo(&w, 0, sess.word_bits())
        };
        let mut corrected = 0usize;
        for row in 0..n {
            for col in n..2 * n {
                for fault in [SwitchFault::StuckOpen, SwitchFault::StuckShort] {
                    let mut sess = session_for(&w, 1, mode);
                    let mut fm = FaultMap::new();
                    fm.inject(Coord::new(row, col), fault);
                    sess.ppa_mut().machine_mut().attach_faults(fm);
                    let wave = match sess.solve_redundant(&[0], mode) {
                        Ok(wave) => wave,
                        Err(e) => {
                            assert!(e.indicates_corruption(), "({row},{col}) {fault}: {e}");
                            continue;
                        }
                    };
                    let lane = &wave.lanes[0];
                    let out = lane
                        .outcome
                        .as_ref()
                        .unwrap_or_else(|e| panic!("({row},{col}) {fault}: TMR failed: {e}"));
                    assert_eq!(out, &healthy, "({row},{col}) {fault}: not bit-identical");
                    if lane.vote.disagreed {
                        corrected += 1;
                        assert!(lane.vote.corrected);
                        assert_eq!(lane.vote.suspect_lanes, vec![1], "minority is lane 1");
                        assert_eq!(lane.vote.suspect_bands, vec![n..2 * n]);
                    }
                }
            }
        }
        assert!(corrected > 0, "the sweep never forced a correction");
    }

    #[test]
    fn detect_only_tmr_reports_instead_of_correcting() {
        let mode = Redundancy::Tmr { correct: false };
        let w = gen::ring(5);
        let n = w.n();
        let mut detected = 0usize;
        for row in 0..n {
            for col in n..2 * n {
                let mut sess = session_for(&w, 1, mode);
                let mut fm = FaultMap::new();
                fm.inject(Coord::new(row, col), SwitchFault::StuckOpen);
                sess.ppa_mut().machine_mut().attach_faults(fm);
                let Ok(wave) = sess.solve_redundant(&[0], mode) else {
                    continue;
                };
                let lane = &wave.lanes[0];
                if lane.vote.disagreed {
                    detected += 1;
                    assert!(!lane.vote.corrected);
                    assert!(matches!(
                        lane.outcome,
                        Err(McpError::VoteDisagreement { .. })
                    ));
                }
            }
        }
        assert!(detected > 0);
    }

    #[test]
    fn shape_errors_are_typed() {
        let w = gen::ring(4);
        // 3 lanes cannot hold 2 DMR destinations.
        let mut sess = BatchSession::new(&replicate(&w, 3)).unwrap();
        assert!(matches!(
            sess.solve_redundant(&[0, 1], Redundancy::Dmr),
            Err(McpError::BatchShape { .. })
        ));
        // Replica groups must hold identical graphs.
        let mut mixed =
            BatchSession::new(&[gen::ring(4), gen::random_digraph(4, 0.5, 9, 1)]).unwrap();
        assert!(matches!(
            mixed.solve_redundant(&[0], Redundancy::Dmr),
            Err(McpError::BatchShape { .. })
        ));
        // One limit per destination, not per lane.
        let mut sess = BatchSession::new(&replicate(&w, 2)).unwrap();
        let limits = vec![LaneLimit::default(), LaneLimit::default()];
        assert!(matches!(
            sess.solve_redundant_with(&[0], &limits, Redundancy::Dmr),
            Err(McpError::BatchShape { .. })
        ));
    }

    #[test]
    fn per_destination_limits_apply_to_every_replica() {
        let w = gen::ring(5);
        let mode = Redundancy::Dmr;
        let mut sess = session_for(&w, 1, mode);
        let limits = vec![LaneLimit {
            step_budget: Some(10),
            ..LaneLimit::default()
        }];
        let wave = sess.solve_redundant_with(&[0], &limits, mode).unwrap();
        let lane = &wave.lanes[0];
        // Both replicas die identically at the same ledger point, so
        // the vote is unanimous on the typed budget error.
        assert!(!lane.vote.disagreed);
        assert!(lane
            .outcome
            .as_ref()
            .is_err_and(|e| e.is_step_budget_exhausted()));
    }
}
