//! Transitive closure (reachability) on the PPA.
//!
//! The boolean specialization of the MCP recurrence: replace `(min, +)` by
//! `(OR, AND)`. Because the row combination is a plain wired-OR — one bus
//! step instead of an `O(h)` bit-serial scan — each do-while iteration is
//! `O(1)` steps and the whole single-destination reachability run is
//! `O(p)`. This is the direction of the reconfigurable-bus transitive
//! closure work the paper cites as reference \[6\] (Wang & Chen's PARBS
//! algorithms), expressed in the PPA's more restricted row/column model.

use crate::error::McpError;
use crate::Result;
use ppa_graph::WeightMatrix;
use ppa_machine::Direction;
use ppa_machine::Executor;
use ppa_ppc::{Parallel, Ppa};

/// Result of a single-destination reachability run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachOutput {
    /// Destination vertex.
    pub dest: usize,
    /// `reach[i]` — whether some path `i -> ... -> dest` exists
    /// (`reach[dest] == true` by the reflexive convention).
    pub reach: Vec<bool>,
    /// Do-while iterations executed.
    pub iterations: usize,
    /// Total SIMD steps of the run.
    pub steps: u64,
}

/// Computes which vertices can reach `d`, on the PPA, in `O(p)` steps.
pub fn reachability<E: Executor>(
    ppa: &mut Ppa<E>,
    w: &WeightMatrix,
    d: usize,
) -> Result<ReachOutput> {
    let n = w.n();
    let dim = ppa.dim();
    if dim.rows != n || dim.cols != n {
        return Err(McpError::SizeMismatch {
            n,
            rows: dim.rows,
            cols: dim.cols,
        });
    }
    if d >= n {
        return Err(McpError::DestinationOutOfRange { d, n });
    }
    let start = ppa.steps();

    let row = ppa.row_index();
    let col = ppa.col_index();
    let d_imm = ppa.constant(d as i64);
    let row_is_d = ppa.eq(&row, &d_imm)?;
    let diag = ppa.eq(&row, &col)?;
    let no_open = ppa.constant(false); // whole-line clusters for the row OR
    let adj: Parallel<bool> = Parallel::from_fn(dim, |c| w.has_edge(c.row, c.col));

    // Init: REACH[d][j] = "edge j -> d exists".
    let mut reach = ppa.constant(false);
    let adj_to_d: Parallel<bool> = Parallel::from_fn(dim, |c| w.has_edge(c.col, d));
    ppa.where_(&row_is_d, |p| p.assign(&mut reach, &adj_to_d))??;

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // Column j carries "j reaches d".
        let bc = ppa.broadcast(&reach, Direction::South, &row_is_d)?;
        // PE (i, j): "i steps to j and j reaches d".
        let step = ppa.and(&adj, &bc)?;
        // Row-wide OR: "some successor of i reaches d".
        let row_or = ppa.bus_or(&step, Direction::West, &no_open)?;
        // Fold back into row d via the diagonal, like MCP statement 16.
        let via_diag = ppa.broadcast(&row_or, Direction::South, &diag)?;
        let new_reach = ppa.or(&reach, &via_diag)?;
        let changed = ppa.ne(&new_reach, &reach)?;
        ppa.where_(&row_is_d, |p| p.assign(&mut reach, &new_reach))??;
        let changed_row_d = ppa.and(&changed, &row_is_d)?;
        if !ppa.any(&changed_row_d)? {
            break;
        }
        if iterations > n {
            return Err(McpError::NoConvergence { rounds: iterations });
        }
    }

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(i == d || *reach.at(d, i));
    }
    Ok(ReachOutput {
        dest: d,
        reach: out,
        iterations,
        steps: ppa.steps().since(&start).total(),
    })
}

/// Result of a hop-level (unweighted BFS) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopLevels {
    /// Destination vertex.
    pub dest: usize,
    /// `level[i]` — minimum number of edges on any path `i -> dest`
    /// (`None` if unreachable; `Some(0)` at the destination).
    pub level: Vec<Option<usize>>,
    /// Total SIMD steps of the run.
    pub steps: u64,
}

/// Minimum hop counts to `d` — unweighted BFS levels — in `O(p)` steps.
///
/// This is the cheap specialization of the MCP recurrence for unit
/// weights: because "shorter" can only mean "discovered in an earlier
/// round", no bit-serial comparison is needed at all. Each round costs
/// `O(1)` steps (the same boolean data path as [`reachability`]) and the
/// round number *is* the distance, so the whole run is `O(p)` versus the
/// general algorithm's `O(p * h)`.
pub fn hop_levels<E: Executor>(ppa: &mut Ppa<E>, w: &WeightMatrix, d: usize) -> Result<HopLevels> {
    let n = w.n();
    let dim = ppa.dim();
    if dim.rows != n || dim.cols != n {
        return Err(McpError::SizeMismatch {
            n,
            rows: dim.rows,
            cols: dim.cols,
        });
    }
    if d >= n {
        return Err(McpError::DestinationOutOfRange { d, n });
    }
    let start = ppa.steps();

    let row = ppa.row_index();
    let col = ppa.col_index();
    let d_imm = ppa.constant(d as i64);
    let row_is_d = ppa.eq(&row, &d_imm)?;
    let diag = ppa.eq(&row, &col)?;
    let no_open = ppa.constant(false);
    let adj: Parallel<bool> = Parallel::from_fn(dim, |c| w.has_edge(c.row, c.col));

    let unreach = -1i64;
    let mut level = ppa.constant(unreach);
    let mut reach = ppa.constant(false);
    let adj_to_d: Parallel<bool> = Parallel::from_fn(dim, |c| w.has_edge(c.col, d));
    let one = ppa.constant(1i64);
    ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<()> {
        p.assign(&mut reach, &adj_to_d)?;
        p.where_(&adj_to_d, |q| q.assign(&mut level, &one))??;
        Ok(())
    })??;

    let mut round = 1usize;
    loop {
        round += 1;
        let bc = ppa.broadcast(&reach, Direction::South, &row_is_d)?;
        let step = ppa.and(&adj, &bc)?;
        let row_or = ppa.bus_or(&step, Direction::West, &no_open)?;
        let via_diag = ppa.broadcast(&row_or, Direction::South, &diag)?;
        let not_reached = ppa.not(&reach)?;
        let fresh = ppa.and(&via_diag, &not_reached)?;
        let round_imm = ppa.constant(round as i64);
        let changed = ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<Parallel<bool>> {
            p.where_(&fresh, |q| -> ppa_ppc::Result<()> {
                q.assign(&mut level, &round_imm)?;
                q.assign_imm(&mut reach, true)?;
                Ok(())
            })??;
            Ok(fresh.clone())
        })??;
        let changed_row_d = ppa.and(&changed, &row_is_d)?;
        if !ppa.any(&changed_row_d)? {
            break;
        }
        if round > n + 1 {
            return Err(McpError::NoConvergence { rounds: round });
        }
    }

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i == d {
            out.push(Some(0));
        } else {
            let v = *level.at(d, i);
            out.push(if v < 0 { None } else { Some(v as usize) });
        }
    }
    Ok(HopLevels {
        dest: d,
        level: out,
        steps: ppa.steps().since(&start).total(),
    })
}

/// The full transitive closure: `result[i][j]` = "some path i -> j exists"
/// (reflexive), via `n` reachability runs.
pub fn transitive_closure<E: Executor>(
    ppa: &mut Ppa<E>,
    w: &WeightMatrix,
) -> Result<Vec<Vec<bool>>> {
    let n = w.n();
    let mut cols = Vec::with_capacity(n);
    for d in 0..n {
        cols.push(reachability(ppa, w, d)?.reach);
    }
    Ok((0..n)
        .map(|i| (0..n).map(|j| cols[j][i]).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference;

    #[test]
    fn chain_reachability() {
        let w = gen::path(5);
        let mut ppa = Ppa::square(5);
        let r = reachability(&mut ppa, &w, 3).unwrap();
        assert_eq!(r.reach, vec![true, true, true, true, false]);
    }

    #[test]
    fn destination_is_reflexively_reachable() {
        let w = WeightMatrix::new(3);
        let mut ppa = Ppa::square(3);
        let r = reachability(&mut ppa, &w, 1).unwrap();
        assert_eq!(r.reach, vec![false, true, false]);
    }

    #[test]
    fn closure_matches_sequential_oracle() {
        for seed in 0..8 {
            let w = gen::random_digraph(9, 0.2, 5, seed);
            let mut ppa = Ppa::square(9);
            let got = transitive_closure(&mut ppa, &w).unwrap();
            let want = reference::transitive_closure(&w);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn iteration_cost_is_constant_not_h_dependent() {
        let w = gen::ring(6);
        let mut ppa8 = Ppa::square(6).with_word_bits(8);
        let mut ppa32 = Ppa::square(6).with_word_bits(32);
        let a = reachability(&mut ppa8, &w, 0).unwrap();
        let b = reachability(&mut ppa32, &w, 0).unwrap();
        assert_eq!(a.steps, b.steps, "reachability must not depend on h");
        assert_eq!(a.reach, b.reach);
    }

    #[test]
    fn reachability_is_cheaper_than_mcp() {
        let w = gen::ring(6);
        let mut ppa = Ppa::square(6).with_word_bits(16);
        let r = reachability(&mut ppa, &w, 0).unwrap();
        let m = crate::mcp::minimum_cost_path(&mut ppa, &w, 0).unwrap();
        assert!(
            r.steps < m.stats.total.total() / 2,
            "O(p) reachability ({}) should be far below O(p*h) MCP ({})",
            r.steps,
            m.stats.total.total()
        );
    }

    #[test]
    fn hop_levels_match_bfs_oracle() {
        for seed in 0..8u64 {
            let w = gen::random_digraph(10, 0.2, 5, seed);
            let d = seed as usize % 10;
            let mut ppa = Ppa::square(10);
            let got = hop_levels(&mut ppa, &w, d).unwrap();
            let want = reference::hop_counts(&w, d);
            assert_eq!(got.level, want, "seed {seed}");
        }
    }

    #[test]
    fn hop_levels_on_ring_count_up_to_n_minus_one() {
        let w = gen::ring(6);
        let mut ppa = Ppa::square(6);
        let got = hop_levels(&mut ppa, &w, 0).unwrap();
        assert_eq!(
            got.level,
            vec![Some(0), Some(5), Some(4), Some(3), Some(2), Some(1)]
        );
    }

    #[test]
    fn hop_levels_are_h_independent_and_cheaper_than_mcp() {
        let w = gen::ring(6);
        let mut p8 = Ppa::square(6).with_word_bits(8);
        let mut p32 = Ppa::square(6).with_word_bits(32);
        let a = hop_levels(&mut p8, &w, 0).unwrap();
        let b = hop_levels(&mut p32, &w, 0).unwrap();
        assert_eq!(a.steps, b.steps);
        let m = crate::mcp::minimum_cost_path(&mut p8, &w, 0).unwrap();
        assert!(a.steps * 2 < m.stats.total.total());
    }

    #[test]
    fn hop_levels_mark_unreachable() {
        let w = gen::path(4);
        let mut ppa = Ppa::square(4);
        let got = hop_levels(&mut ppa, &w, 1).unwrap();
        assert_eq!(got.level, vec![Some(1), Some(0), None, None]);
    }

    #[test]
    fn ring_reaches_everything() {
        let w = gen::ring(7);
        let mut ppa = Ppa::square(7);
        let tc = transitive_closure(&mut ppa, &w).unwrap();
        assert!(tc.iter().all(|row| row.iter().all(|&b| b)));
    }
}
