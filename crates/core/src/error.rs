//! Errors of the MCP algorithms.

use ppa_graph::MatrixError;
use ppa_machine::{Coord, MachineError};
use ppa_ppc::PpcError;
use std::fmt;

/// Errors raised by the PPA graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McpError {
    /// A PPC runtime operation failed.
    Ppc(PpcError),
    /// The machine is `rows x cols` but the graph needs an `n x n` array.
    SizeMismatch {
        /// Vertices in the graph.
        n: usize,
        /// Machine rows.
        rows: usize,
        /// Machine columns.
        cols: usize,
    },
    /// The machine's `h`-bit word cannot hold every possible path cost of
    /// this input below `MAXINT`; costs would saturate and masquerade as
    /// "unreachable". Use a wider word (see `fit_word_bits`).
    WordWidthTooSmall {
        /// Minimum width that is safe for this input.
        required: u32,
        /// Width the machine actually has.
        actual: u32,
    },
    /// The iteration did not converge within `n` rounds — impossible for
    /// non-negative weights, so this indicates a corrupted input matrix.
    NoConvergence {
        /// Rounds executed before giving up.
        rounds: usize,
    },
    /// A result-verification invariant failed: the run produced values a
    /// correct execution cannot produce (e.g. a row-`d` cost increased
    /// across iterations, or the destination's own cost is non-zero),
    /// signalling hardware corruption on an unverified run.
    InvariantViolation {
        /// Which invariant tripped.
        invariant: &'static str,
    },
    /// The destination index does not name a vertex of the graph.
    DestinationOutOfRange {
        /// The requested destination vertex.
        d: usize,
        /// Vertices in the graph.
        n: usize,
    },
    /// The weight matrix was rejected at the solver boundary: a weight
    /// overflows the machine's `h`-bit representation or an edge is
    /// malformed (see [`MatrixError`]). Raised instead of a panic so
    /// untrusted job payloads can never abort a serving worker.
    InvalidWeights(MatrixError),
    /// A lane batch was malformed: no lanes, more lanes than a machine
    /// word has bits (64), graphs of mixed sizes, or a destination
    /// wavefront that does not cover every lane.
    BatchShape {
        /// What was wrong with the requested batch.
        detail: String,
    },
    /// The array is faulty and the recovery policy could not produce a
    /// verified result (self-test localization attached).
    FaultyArray {
        /// Faulty switch-box coordinates located by the runtime self-test
        /// (empty when BIST could not localize the corruption, e.g. for
        /// transient glitches that did not recur under retry).
        located: Vec<Coord>,
    },
    /// A redundant (DMR, or detect-only/majority-less TMR) vote
    /// disagreed: replica lanes of the same destination returned
    /// different results and the mode could not correct. Carries the
    /// replica lanes voted out (or, for a DMR tie, both) and whatever
    /// targeted BIST localized inside their physical column bands.
    VoteDisagreement {
        /// Absolute lane indices of the disagreeing replicas.
        lanes: Vec<usize>,
        /// Faults targeted BIST localized inside the suspect bands
        /// (empty when the sweep could not localize, e.g. a transient
        /// glitch that corrupted one replica and left no stuck switch).
        located: Vec<Coord>,
    },
}

impl fmt::Display for McpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McpError::Ppc(e) => write!(f, "PPC runtime error: {e}"),
            McpError::SizeMismatch { n, rows, cols } => write!(
                f,
                "graph has {n} vertices but the machine is {rows}x{cols}; an {n}x{n} array is required"
            ),
            McpError::WordWidthTooSmall { required, actual } => write!(
                f,
                "machine word width h={actual} is too small for this input; need h>={required}"
            ),
            McpError::NoConvergence { rounds } => {
                write!(f, "MCP iteration did not converge after {rounds} rounds")
            }
            McpError::InvariantViolation { invariant } => {
                write!(f, "result verification failed: {invariant}")
            }
            McpError::DestinationOutOfRange { d, n } => {
                write!(f, "destination {d} out of range for {n} vertices")
            }
            McpError::InvalidWeights(e) => write!(f, "invalid weight matrix: {e}"),
            McpError::BatchShape { detail } => write!(f, "malformed lane batch: {detail}"),
            McpError::FaultyArray { located } => {
                if located.is_empty() {
                    write!(f, "faulty array: corruption detected but not localized")
                } else {
                    write!(f, "faulty array: {} switch box(es) at [", located.len())?;
                    for (i, c) in located.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "({},{})", c.row, c.col)?;
                    }
                    write!(f, "]")
                }
            }
            McpError::VoteDisagreement { lanes, located } => {
                write!(f, "redundant vote disagreed: replica lane(s) {lanes:?}")?;
                if located.is_empty() {
                    write!(f, " (no stuck fault localized in their bands)")
                } else {
                    write!(f, "; BIST localized [")?;
                    for (i, c) in located.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "({},{})", c.row, c.col)?;
                    }
                    write!(f, "]")
                }
            }
        }
    }
}

impl std::error::Error for McpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McpError::Ppc(e) => Some(e),
            McpError::InvalidWeights(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PpcError> for McpError {
    fn from(e: PpcError) -> Self {
        McpError::Ppc(e)
    }
}

impl From<MatrixError> for McpError {
    fn from(e: MatrixError) -> Self {
        McpError::InvalidWeights(e)
    }
}

impl McpError {
    /// Whether this failure is the machine's cooperative step budget
    /// running out
    /// ([`MachineError::StepBudgetExhausted`]) — a resource-limit
    /// outcome, not a corruption signal: the partial work is simply
    /// over budget and retrying without a bigger budget cannot succeed.
    pub fn is_step_budget_exhausted(&self) -> bool {
        matches!(
            self,
            McpError::Ppc(PpcError::Machine(MachineError::StepBudgetExhausted { .. }))
        )
    }

    /// Whether this failure is a raised [`CancelToken`](ppa_machine::CancelToken)
    /// ([`MachineError::Cancelled`]) — the supervisor asked the run to
    /// stop (deadline, shutdown); not a corruption signal.
    pub fn is_cancelled(&self) -> bool {
        matches!(
            self,
            McpError::Ppc(PpcError::Machine(MachineError::Cancelled))
        )
    }

    /// Whether this failure indicates hardware corruption — values a
    /// correct execution cannot produce, a dead bus line, an impossible
    /// empty selection. These are the failures worth a self-test and a
    /// retry ([`RecoveryPolicy`](crate::RecoveryPolicy) semantics): a
    /// transient glitch clears on the next attempt, a permanent fault is
    /// localized by BIST. Resource-limit and input-validation failures
    /// are *not* corruption; retrying them cannot succeed.
    pub fn indicates_corruption(&self) -> bool {
        matches!(
            self,
            McpError::InvariantViolation { .. }
                | McpError::NoConvergence { .. }
                | McpError::VoteDisagreement { .. }
                | McpError::Ppc(PpcError::Machine(MachineError::BusFault { .. }))
                | McpError::Ppc(PpcError::EmptySelection)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = McpError::SizeMismatch {
            n: 5,
            rows: 4,
            cols: 4,
        };
        assert!(e.to_string().contains("5 vertices"));
        let e = McpError::WordWidthTooSmall {
            required: 12,
            actual: 8,
        };
        assert!(e.to_string().contains("h=8"));
        assert!(e.to_string().contains("h>=12"));
        let e = McpError::NoConvergence { rounds: 9 };
        assert!(e.to_string().contains("9 rounds"));
        let e = McpError::Ppc(PpcError::EmptySelection);
        assert!(e.to_string().contains("PPC"));
        let e = McpError::InvariantViolation {
            invariant: "destination cost must be zero",
        };
        assert!(e.to_string().contains("destination cost"));
        let e = McpError::FaultyArray {
            located: vec![Coord::new(1, 2)],
        };
        assert!(e.to_string().contains("(1,2)"));
        let e = McpError::FaultyArray { located: vec![] };
        assert!(e.to_string().contains("not localized"));
        let e = McpError::VoteDisagreement {
            lanes: vec![1],
            located: vec![Coord::new(0, 5)],
        };
        assert!(e.to_string().contains("[1]"));
        assert!(e.to_string().contains("(0,5)"));
        assert!(e.indicates_corruption());
        let e = McpError::VoteDisagreement {
            lanes: vec![0, 1],
            located: vec![],
        };
        assert!(e.to_string().contains("no stuck fault"));
    }
}
