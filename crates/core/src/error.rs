//! Errors of the MCP algorithms.

use ppa_ppc::PpcError;
use std::fmt;

/// Errors raised by the PPA graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McpError {
    /// A PPC runtime operation failed.
    Ppc(PpcError),
    /// The machine is `rows x cols` but the graph needs an `n x n` array.
    SizeMismatch {
        /// Vertices in the graph.
        n: usize,
        /// Machine rows.
        rows: usize,
        /// Machine columns.
        cols: usize,
    },
    /// The machine's `h`-bit word cannot hold every possible path cost of
    /// this input below `MAXINT`; costs would saturate and masquerade as
    /// "unreachable". Use a wider word (see `fit_word_bits`).
    WordWidthTooSmall {
        /// Minimum width that is safe for this input.
        required: u32,
        /// Width the machine actually has.
        actual: u32,
    },
    /// The iteration did not converge within `n` rounds — impossible for
    /// non-negative weights, so this indicates a corrupted input matrix.
    NoConvergence {
        /// Rounds executed before giving up.
        rounds: usize,
    },
}

impl fmt::Display for McpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McpError::Ppc(e) => write!(f, "PPC runtime error: {e}"),
            McpError::SizeMismatch { n, rows, cols } => write!(
                f,
                "graph has {n} vertices but the machine is {rows}x{cols}; an {n}x{n} array is required"
            ),
            McpError::WordWidthTooSmall { required, actual } => write!(
                f,
                "machine word width h={actual} is too small for this input; need h>={required}"
            ),
            McpError::NoConvergence { rounds } => {
                write!(f, "MCP iteration did not converge after {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for McpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McpError::Ppc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PpcError> for McpError {
    fn from(e: PpcError) -> Self {
        McpError::Ppc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = McpError::SizeMismatch {
            n: 5,
            rows: 4,
            cols: 4,
        };
        assert!(e.to_string().contains("5 vertices"));
        let e = McpError::WordWidthTooSmall {
            required: 12,
            actual: 8,
        };
        assert!(e.to_string().contains("h=8"));
        assert!(e.to_string().contains("h>=12"));
        let e = McpError::NoConvergence { rounds: 9 };
        assert!(e.to_string().contains("9 rounds"));
        let e = McpError::Ppc(PpcError::EmptySelection);
        assert!(e.to_string().contains("PPC"));
    }
}
