//! Ablation variants of the MCP algorithm.
//!
//! DESIGN.md calls out two modeling decisions worth quantifying:
//!
//! * **A1 — bus model.** The standard implementation relies on circular
//!   buses: statement 16's diagonal fold injects at row `i` and may be
//!   read at a row *above* it. On strictly linear buses the same fold is
//!   still implementable, but costs two passes (one per direction) plus a
//!   merge. [`BusModel::Linear`] runs that variant so the report can put
//!   a number on what wrap-around saves.
//! * **A2 — combining model.** The PPA pays `O(h)` per `min` because its
//!   buses carry one bit at a time. A hypothetical word-parallel
//!   combining bus ([`MinModel::Word`]) collapses that to `O(1)`;
//!   running it shows how much of the total the bit-serial scans are.
//!
//! Both variants compute *identical results* to the reference
//! implementation — only the step counts move — which the tests assert.

use crate::error::McpError;
use crate::mcp::{fit_word_bits, McpOutput};
use crate::stats::McpStats;
use crate::Result;
use ppa_graph::{Weight, WeightMatrix, INF};
use ppa_machine::{Direction, StepReport};
use ppa_ppc::{Parallel, Ppa};

/// Bus topology under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusModel {
    /// Wrap-around lines (the model of the main implementation).
    Circular,
    /// Strictly linear lines: every fold-style broadcast is emulated with
    /// one pass per direction plus a select-merge.
    Linear,
}

/// Row-minimum implementation under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinModel {
    /// The paper's bit-serial scan, `O(h)` steps.
    BitSerial,
    /// A hypothetical single-step word-combining bus, `O(1)` steps
    /// (not PPA-implementable; ablation only).
    Word,
}

/// Variant configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantConfig {
    /// Bus topology.
    pub bus: BusModel,
    /// Minimum implementation.
    pub min: MinModel,
}

impl VariantConfig {
    /// The reference configuration (circular buses, bit-serial min).
    pub fn reference() -> Self {
        VariantConfig {
            bus: BusModel::Circular,
            min: MinModel::BitSerial,
        }
    }
}

/// Runs the MCP dynamic program under a variant configuration.
///
/// Semantics match [`crate::mcp::minimum_cost_path`] exactly; only the
/// realization (and therefore the step count) of the communication and
/// combination phases differs.
pub fn minimum_cost_path_variant(
    ppa: &mut Ppa,
    w: &WeightMatrix,
    d: usize,
    config: VariantConfig,
) -> Result<McpOutput> {
    let n = w.n();
    let dim = ppa.dim();
    if dim.rows != n || dim.cols != n {
        return Err(McpError::SizeMismatch {
            n,
            rows: dim.rows,
            cols: dim.cols,
        });
    }
    if d >= n {
        return Err(McpError::DestinationOutOfRange { d, n });
    }
    let required = fit_word_bits(w);
    if ppa.word_bits() < required {
        return Err(McpError::WordWidthTooSmall {
            required,
            actual: ppa.word_bits(),
        });
    }

    let maxint = ppa.maxint();
    let start = ppa.steps();

    let row = ppa.row_index();
    let col = ppa.col_index();
    let d_imm = ppa.constant(d as i64);
    let nm1_imm = ppa.constant(n as i64 - 1);
    let row_is_d = ppa.eq(&row, &d_imm)?;
    let row_ne_d = ppa.not(&row_is_d)?;
    let col_is_d = ppa.eq(&col, &d_imm)?;
    let diag = ppa.eq(&row, &col)?;
    let last_col = ppa.eq(&col, &nm1_imm)?;

    let mut w_vec = w.try_saturated_vec(maxint)?;
    for i in 0..n {
        w_vec[i * n + i] = 0;
    }
    let w_plane: Parallel<i64> = Parallel::from_vec(dim, w_vec);

    // A fold broadcast: from the Open nodes of `open`, deliver to every
    // node of the line. On circular buses this is one instruction; on
    // linear buses it takes a pass in each direction plus a select.
    let fold = |ppa: &mut Ppa,
                src: &Parallel<i64>,
                open: &Parallel<bool>|
     -> ppa_ppc::Result<Parallel<i64>> {
        match config.bus {
            BusModel::Circular => ppa.broadcast(src, Direction::South, open),
            BusModel::Linear => {
                // Down-pass reaches nodes below the injector...
                let down = ppa.broadcast(src, Direction::South, open)?;
                // ...the up-pass reaches nodes above it...
                let up = ppa.broadcast(src, Direction::North, open)?;
                // ...and each node keeps the copy that really came
                // from its line's injector. With exactly one Open
                // node per column (all uses here), "below or at the
                // injector" is decided by comparing against the
                // injector's row, itself folded the same way; the
                // hardware equivalent is a one-bit valid flag riding
                // with each pass. We charge one select step.
                let ri = ppa.row_index();
                let rows_down = ppa.broadcast(&ri, Direction::South, open)?;
                let below = ppa.le(&rows_down, &ri)?;
                ppa.select(&below, &down, &up)
            }
        }
    };

    let rowmin = |ppa: &mut Ppa, src: &Parallel<i64>, heads: &Parallel<bool>| match config.min {
        MinModel::BitSerial => ppa.min(src, Direction::West, heads),
        MinModel::Word => ppa.min_word(src, Direction::West, heads),
    };

    // Step 1 (same intended initialization as the reference).
    let in_weights = ppa.broadcast(&w_plane, Direction::East, &col_is_d)?;
    let in_weights_t = fold(ppa, &in_weights, &diag)?;
    let mut sow = ppa.constant(maxint);
    let mut min_sow = ppa.constant(maxint);
    let mut ptn = ppa.constant(0i64);
    let mut old_sow = ppa.constant(maxint);
    ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<()> {
        p.assign(&mut sow, &in_weights_t)?;
        p.assign(&mut ptn, &d_imm)?;
        p.assign(&mut min_sow, &in_weights_t)?;
        Ok(())
    })??;
    let init_report = ppa.steps().since(&start);

    let mut per_iteration: Vec<StepReport> = Vec::new();
    let mut iterations = 0usize;
    loop {
        let iter_start = ppa.steps();
        iterations += 1;

        let bsow = fold(ppa, &sow, &row_is_d)?;
        let sum = ppa.sat_add(&bsow, &w_plane)?;
        ppa.where_(&row_ne_d, |p| p.assign(&mut sow, &sum))??;

        let rm = rowmin(ppa, &sow, &last_col)?;
        ppa.where_(&row_ne_d, |p| p.assign(&mut min_sow, &rm))??;

        let is_argmin = ppa.eq(&min_sow, &sow)?;
        let sel = ppa.or(&is_argmin, &row_is_d)?;
        let argmin_col = match config.min {
            MinModel::BitSerial => ppa.selected_min(&col, Direction::West, &last_col, &sel)?,
            MinModel::Word => {
                // Word model: mask unselected indices to MAXINT, then a
                // single-step word combine.
                let inf = ppa.constant(maxint);
                let masked = ppa.select(&sel, &col, &inf)?;
                ppa.min_word(&masked, Direction::West, &last_col)?
            }
        };
        ppa.where_(&row_ne_d, |p| p.assign(&mut ptn, &argmin_col))??;

        let bc_min = fold(ppa, &min_sow, &diag)?;
        let bc_ptn = fold(ppa, &ptn, &diag)?;
        let changed = ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<Parallel<bool>> {
            p.assign(&mut old_sow, &sow)?;
            p.assign(&mut sow, &bc_min)?;
            let changed = p.ne(&sow, &old_sow)?;
            p.where_(&changed, |q| q.assign(&mut ptn, &bc_ptn))??;
            Ok(changed)
        })??;

        per_iteration.push(ppa.steps().since(&iter_start));
        let changed_in_row_d = ppa.and(&changed, &row_is_d)?;
        if !ppa.any(&changed_in_row_d)? {
            break;
        }
        if iterations > n {
            return Err(McpError::NoConvergence { rounds: iterations });
        }
    }

    let mut out_sow: Vec<Weight> = Vec::with_capacity(n);
    let mut out_ptn: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        let cost = *sow.at(d, i);
        if i == d {
            out_sow.push(0);
            out_ptn.push(d);
        } else if cost >= maxint {
            out_sow.push(INF);
            out_ptn.push(i);
        } else {
            out_sow.push(cost);
            out_ptn.push(*ptn.at(d, i) as usize);
        }
    }
    let total = ppa.steps().since(&start);
    Ok(McpOutput {
        dest: d,
        sow: out_sow,
        ptn: out_ptn,
        iterations,
        stats: McpStats {
            init: init_report,
            per_iteration,
            total,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcp::minimum_cost_path;
    use ppa_graph::gen;

    fn machine_for(w: &WeightMatrix) -> Ppa {
        Ppa::square(w.n()).with_word_bits(fit_word_bits(w).clamp(2, 62))
    }

    #[test]
    fn reference_variant_equals_mainline() {
        let w = gen::random_connected(10, 0.2, 12, 8);
        let mut a = machine_for(&w);
        let main = minimum_cost_path(&mut a, &w, 4).unwrap();
        let mut b = machine_for(&w);
        let var = minimum_cost_path_variant(&mut b, &w, 4, VariantConfig::reference()).unwrap();
        assert_eq!(main.sow, var.sow);
        assert_eq!(main.ptn, var.ptn);
        assert_eq!(main.iterations, var.iterations);
    }

    #[test]
    fn linear_bus_variant_is_correct_but_costlier() {
        for seed in 0..6u64 {
            let w = gen::random_digraph(9, 0.3, 10, seed);
            let mut a = machine_for(&w);
            let circ =
                minimum_cost_path_variant(&mut a, &w, 2, VariantConfig::reference()).unwrap();
            let mut b = machine_for(&w);
            let lin = minimum_cost_path_variant(
                &mut b,
                &w,
                2,
                VariantConfig {
                    bus: BusModel::Linear,
                    min: MinModel::BitSerial,
                },
            )
            .unwrap();
            assert_eq!(circ.sow, lin.sow, "seed {seed}");
            assert_eq!(circ.ptn, lin.ptn, "seed {seed}");
            assert!(
                lin.stats.total.total() > circ.stats.total.total(),
                "linear buses must cost extra steps"
            );
        }
    }

    #[test]
    fn word_min_variant_is_correct_and_h_independent() {
        let w = gen::ring(8);
        let word = VariantConfig {
            bus: BusModel::Circular,
            min: MinModel::Word,
        };
        let mut p8 = Ppa::square(8).with_word_bits(8);
        let a = minimum_cost_path_variant(&mut p8, &w, 0, word).unwrap();
        let mut p32 = Ppa::square(8).with_word_bits(32);
        let b = minimum_cost_path_variant(&mut p32, &w, 0, word).unwrap();
        assert_eq!(a.sow, b.sow);
        assert_eq!(
            a.stats.total.total(),
            b.stats.total.total(),
            "word-combining steps must not depend on h"
        );
        // And both match the bit-serial answer.
        let mut r = Ppa::square(8).with_word_bits(8);
        let reference =
            minimum_cost_path_variant(&mut r, &w, 0, VariantConfig::reference()).unwrap();
        assert_eq!(a.sow, reference.sow);
        assert!(a.stats.total.total() < reference.stats.total.total());
    }

    #[test]
    fn linear_and_word_compose() {
        let w = gen::random_connected(8, 0.25, 9, 5);
        let mut ppa = machine_for(&w);
        let out = minimum_cost_path_variant(
            &mut ppa,
            &w,
            3,
            VariantConfig {
                bus: BusModel::Linear,
                min: MinModel::Word,
            },
        )
        .unwrap();
        assert!(ppa_graph::validate::is_valid_solution(
            &w, 3, &out.sow, &out.ptn
        ));
    }
}
