//! Explicit path reconstruction from the `PTN` output.
//!
//! The paper returns the MCP *structure* implicitly: `PTN[d][i]` is the
//! vertex following `i` on a minimum cost path to `d`. Walking those
//! pointers yields the explicit vertex sequence; this module does the walk
//! defensively (bounded, cycle-detecting) so corrupted outputs surface as
//! `None` instead of hanging.

use crate::mcp::McpOutput;
use ppa_graph::{Weight, WeightMatrix, INF};

/// The explicit minimum cost path from `from` to the destination of `out`,
/// as a vertex sequence starting at `from` and ending at the destination.
///
/// Returns `None` if `from` cannot reach the destination, or if the
/// pointer chain is corrupt (self-pointing interior vertex or a cycle).
pub fn extract_path(out: &McpOutput, from: usize) -> Option<Vec<usize>> {
    let n = out.sow.len();
    assert!(from < n, "vertex {from} out of range");
    if out.sow[from] == INF {
        return None;
    }
    let mut path = vec![from];
    let mut cur = from;
    while cur != out.dest {
        let nxt = out.ptn[cur];
        if nxt >= n || nxt == cur || path.len() > n {
            return None;
        }
        path.push(nxt);
        cur = nxt;
    }
    Some(path)
}

/// Sums the edge weights along `path` in `w`; `None` if some edge is
/// missing.
pub fn path_cost(w: &WeightMatrix, path: &[usize]) -> Option<Weight> {
    let mut cost = 0;
    for pair in path.windows(2) {
        let e = w.get(pair[0], pair[1]);
        if e == INF {
            return None;
        }
        cost += e;
    }
    Some(cost)
}

/// All reachable-source paths of an output: `(source, path)` pairs for
/// every vertex with a finite cost (the destination's trivial path
/// included).
pub fn all_paths(out: &McpOutput) -> Vec<(usize, Vec<usize>)> {
    (0..out.sow.len())
        .filter_map(|i| extract_path(out, i).map(|p| (i, p)))
        .collect()
}

/// Maximum hop-length over all minimum cost paths of `out` — the paper's
/// `p`, measured from the answer itself.
pub fn max_hops(out: &McpOutput) -> usize {
    all_paths(out)
        .iter()
        .map(|(_, p)| p.len().saturating_sub(1))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcp::minimum_cost_path_auto;
    use ppa_graph::gen;

    #[test]
    fn extracts_the_chain() {
        let w = WeightMatrix::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 9)]);
        let out = minimum_cost_path_auto(&w, 3).unwrap();
        assert_eq!(extract_path(&out, 0), Some(vec![0, 1, 2, 3]));
        assert_eq!(path_cost(&w, &[0, 1, 2, 3]), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let w = WeightMatrix::from_edges(3, &[(0, 1, 1)]);
        let out = minimum_cost_path_auto(&w, 1).unwrap();
        assert_eq!(extract_path(&out, 2), None);
    }

    #[test]
    fn destination_path_is_trivial() {
        let w = gen::ring(4);
        let out = minimum_cost_path_auto(&w, 2).unwrap();
        assert_eq!(extract_path(&out, 2), Some(vec![2]));
    }

    #[test]
    fn corrupt_pointers_detected() {
        let w = gen::ring(4);
        let mut out = minimum_cost_path_auto(&w, 0).unwrap();
        out.ptn[1] = 1; // self-pointing interior vertex
        assert_eq!(extract_path(&out, 1), None);
        out.ptn[1] = 2;
        out.ptn[2] = 1; // cycle
        assert_eq!(extract_path(&out, 1), None);
    }

    #[test]
    fn path_cost_none_on_missing_edge() {
        let w = WeightMatrix::from_edges(3, &[(0, 1, 1)]);
        assert_eq!(path_cost(&w, &[0, 2]), None);
        assert_eq!(path_cost(&w, &[0]), Some(0));
    }

    #[test]
    fn every_extracted_path_resums_to_sow() {
        let w = gen::random_connected(12, 0.25, 9, 3);
        let out = minimum_cost_path_auto(&w, 7).unwrap();
        for (src, p) in all_paths(&out) {
            assert_eq!(path_cost(&w, &p), Some(out.sow[src]), "src {src}");
        }
    }

    #[test]
    fn max_hops_matches_ring_diameter() {
        let w = gen::ring(6);
        let out = minimum_cost_path_auto(&w, 0).unwrap();
        assert_eq!(max_hops(&out), 5);
        let w = gen::star(6, 1, 4, 9);
        let out = minimum_cost_path_auto(&w, 1).unwrap();
        assert_eq!(max_hops(&out), 1);
    }
}
