//! Fault recovery and graceful degradation for the MCP solver.
//!
//! The inject → detect → recover → degrade pipeline on top of
//! [`minimum_cost_path_verified`]:
//!
//! 1. run the solver with host-side result verification;
//! 2. on a corruption signal (invariant violation, a dead bus line, a
//!    non-converging iteration) run the machine's built-in self-test
//!    ([`ppa_machine::Machine::self_test`]) to *localize* the trouble;
//! 3. if the self-test comes back healthy the corruption was transient —
//!    retry, up to the policy's budget;
//! 4. if switch boxes are localized, either report them
//!    ([`McpError::FaultyArray`]) or **degrade**: logically exclude every
//!    faulty row and column, re-map the problem onto the healthy
//!    sub-array, and solve there.
//!
//! Degradation is honest about its semantics: excluding row/column `k`
//! removes *vertex* `k` from the graph (PE `(i, j)` holds edge `i -> j`,
//! so a faulty row poisons all of vertex `row`'s outgoing edges and a
//! faulty column all of vertex `col`'s incoming ones). The degraded
//! answer is the exact MCP solution of the induced healthy subgraph —
//! paths through excluded vertices are genuinely unavailable on the
//! broken hardware. Excluded sources report [`INF`]/no-path.
//!
//! All recovery overhead is accounted in the paper's currency — SIMD
//! controller steps — split into failed solve attempts and self-test
//! sweeps, and mirrored into the `ppa-obs` metrics registry
//! (`recovery.*`, `faults.*` counters) when one is attached.

use crate::batch::{replicate, BatchSession};
use crate::error::McpError;
use crate::mcp::{minimum_cost_path_verified, McpOutput};
use crate::redundancy::Redundancy;
use crate::Result;
use ppa_graph::{Weight, WeightMatrix, INF};
use ppa_machine::{Coord, Machine, StepReport};
use ppa_ppc::Ppa;

/// What the solver does when a run fails verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Propagate the first corruption signal as an error (no self-test,
    /// no retry). The verified solver still guarantees no silently wrong
    /// answer escapes.
    FailFast,
    /// Self-test on corruption; retry while the array tests healthy
    /// (transient glitches), report [`McpError::FaultyArray`] as soon as
    /// permanent faults are localized.
    RetrySelfTest {
        /// Additional solve attempts allowed after the first.
        max_retries: usize,
    },
    /// Like `RetrySelfTest`, but when permanent faults are localized the
    /// solver excludes the faulty rows/columns and re-solves on the
    /// healthy sub-array instead of giving up.
    Degrade {
        /// Additional solve attempts allowed after the first.
        max_retries: usize,
    },
    /// Lane-replicated redundant execution: the problem is replicated
    /// onto `mode.replicas()` disjoint lane bands of one wide array
    /// (which inherits the original machine's fault map) and the
    /// replicas are voted ([`BatchSession::solve_redundant`]). DMR
    /// detects corruption in one pass; TMR with `correct: true` also
    /// corrects it, bit-identical to a healthy run — with no host-side
    /// Bellman check and no sequential reference on the hot path.
    Redundant {
        /// The replication/vote mode. [`Redundancy::Off`] degenerates
        /// to a verified [`RecoveryPolicy::FailFast`] solve.
        mode: Redundancy,
    },
}

impl RecoveryPolicy {
    fn max_retries(self) -> usize {
        match self {
            RecoveryPolicy::FailFast => 0,
            RecoveryPolicy::RetrySelfTest { max_retries } => max_retries,
            RecoveryPolicy::Degrade { max_retries } => max_retries,
            RecoveryPolicy::Redundant { .. } => 0,
        }
    }
}

/// Accounting for one recovered solve.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Solve attempts, including the successful one.
    pub attempts: usize,
    /// Self-test sweeps executed.
    pub self_tests: usize,
    /// Faulty switch boxes localized by the self-tests (sorted, unique).
    pub located: Vec<Coord>,
    /// Vertices excluded by degradation (empty unless degraded).
    pub excluded: Vec<usize>,
    /// Controller steps that bought no answer: failed solve attempts plus
    /// all self-test sweeps. The successful attempt's own steps live in
    /// [`McpOutput::stats`] as usual.
    pub overhead: StepReport,
}

impl RecoveryStats {
    /// Whether the answer comes from a degraded (sub-array) run.
    pub fn degraded(&self) -> bool {
        !self.excluded.is_empty()
    }
}

/// A verified MCP result plus how much recovery it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredMcp {
    /// The verified solution. Under degradation, costs are exact for the
    /// induced healthy subgraph and excluded vertices report [`INF`].
    pub output: McpOutput,
    /// Recovery accounting.
    pub recovery: RecoveryStats,
}

/// Whether an error means "the hardware corrupted this run" (worth a
/// self-test) rather than a caller mistake (worth propagating).
fn is_corruption(e: &McpError) -> bool {
    // Shared with the serving layer's retry classification.
    e.indicates_corruption()
}

/// Runs [`minimum_cost_path_verified`] under a [`RecoveryPolicy`].
///
/// Guarantee: the returned costs are verified (invariants plus, for
/// degraded runs, verification on the sub-array) — a faulty machine
/// yields either a recovered answer or a typed error, never a silently
/// wrong path cost.
///
/// # Errors
/// Caller mistakes ([`McpError::SizeMismatch`], …) propagate unchanged.
/// Unrecovered corruption surfaces as [`McpError::FaultyArray`] carrying
/// whatever the self-test localized, as the original corruption error
/// under [`RecoveryPolicy::FailFast`], or as
/// [`McpError::VoteDisagreement`] when a
/// [`RecoveryPolicy::Redundant`] vote detected corruption it could not
/// correct (the suspect lanes and BIST-localized switches attached).
pub fn solve_with_recovery(
    ppa: &mut Ppa,
    w: &WeightMatrix,
    d: usize,
    policy: RecoveryPolicy,
) -> Result<RecoveredMcp> {
    if let RecoveryPolicy::Redundant { mode } = policy {
        if mode.replicas() > 1 {
            return solve_redundantly(ppa, w, d, mode);
        }
        // Redundancy::Off: no replicas to vote — fall through to a
        // plain verified fail-fast solve.
        return solve_with_recovery(ppa, w, d, RecoveryPolicy::FailFast);
    }
    let mut stats = RecoveryStats::default();
    let max_retries = policy.max_retries();
    loop {
        stats.attempts += 1;
        let before = ppa.steps();
        match minimum_cost_path_verified(ppa, w, d) {
            Ok(output) => {
                note_outcome(ppa, &stats, true);
                return Ok(RecoveredMcp {
                    output,
                    recovery: stats,
                });
            }
            Err(e) if !is_corruption(&e) => return Err(e),
            Err(first_error) => {
                // The failed attempt's steps are pure overhead.
                let wasted = ppa.steps().checked_since(&before).unwrap_or_default();
                stats.overhead = stats.overhead.add(&wasted);
                if policy == RecoveryPolicy::FailFast {
                    note_outcome(ppa, &stats, false);
                    return Err(first_error);
                }
                let report = ppa.machine_mut().self_test();
                stats.self_tests += 1;
                stats.overhead = stats.overhead.add(&report.steps);
                for c in report.coords() {
                    if !stats.located.contains(&c) {
                        stats.located.push(c);
                    }
                }
                stats.located.sort();
                if report.is_healthy() {
                    // Transient corruption: the array tests fine, retry.
                    if stats.attempts <= max_retries {
                        continue;
                    }
                    note_outcome(ppa, &stats, false);
                    return Err(McpError::FaultyArray {
                        located: stats.located,
                    });
                }
                match policy {
                    RecoveryPolicy::Degrade { .. } => {
                        return degrade(ppa, w, d, stats);
                    }
                    _ => {
                        note_outcome(ppa, &stats, false);
                        return Err(McpError::FaultyArray {
                            located: stats.located,
                        });
                    }
                }
            }
        }
    }
}

/// Solves on the healthy sub-array after excluding every faulty row and
/// column, then maps the answer back to the original vertex ids.
fn degrade(
    ppa: &mut Ppa,
    w: &WeightMatrix,
    d: usize,
    mut stats: RecoveryStats,
) -> Result<RecoveredMcp> {
    let n = w.n();
    // PE (i, j) holds w_ij: a faulty row r poisons vertex r's outgoing
    // edges, a faulty column c poisons vertex c's incoming edges — either
    // way vertex min(index, n) is unusable.
    let mut excluded: Vec<usize> = stats
        .located
        .iter()
        .flat_map(|c| [c.row, c.col])
        .filter(|&v| v < n)
        .collect();
    excluded.sort_unstable();
    excluded.dedup();
    if excluded.contains(&d) || excluded.len() >= n {
        note_outcome(ppa, &stats, false);
        return Err(McpError::FaultyArray {
            located: stats.located,
        });
    }
    let healthy: Vec<usize> = (0..n).filter(|v| !excluded.contains(v)).collect();
    let m = healthy.len();
    let mut sub_w = WeightMatrix::new(m);
    for (ia, &a) in healthy.iter().enumerate() {
        for (ib, &b) in healthy.iter().enumerate() {
            if a != b {
                let wab = w.get(a, b);
                if wab != INF {
                    sub_w.set(ia, ib, wab);
                }
            }
        }
    }
    let sub_d = healthy.iter().position(|&v| v == d).expect("d is healthy");

    // A fresh healthy m x m machine stands in for the working sub-array;
    // its word width matches the parent so costs agree bit for bit.
    let mut sub = Ppa::square(m).with_word_bits(ppa.word_bits());
    let collect_metrics = ppa.metrics_mut().is_some();
    if collect_metrics {
        sub.enable_metrics();
    }
    let sub_out = minimum_cost_path_verified(&mut sub, &sub_w, sub_d)?;
    if collect_metrics {
        let sub_metrics = sub.take_metrics();
        if let Some(parent) = ppa.metrics_mut() {
            parent.merge(&sub_metrics);
        }
    }

    // Map back to the original vertex ids; excluded vertices are
    // unreachable on the degraded hardware.
    let mut sow: Vec<Weight> = vec![INF; n];
    let mut ptn: Vec<usize> = (0..n).collect();
    for (ia, &a) in healthy.iter().enumerate() {
        sow[a] = sub_out.sow[ia];
        ptn[a] = if sub_out.sow[ia] == INF {
            a
        } else {
            healthy[sub_out.ptn[ia]]
        };
    }
    stats.excluded = excluded;
    note_outcome(ppa, &stats, true);
    if let Some(mx) = ppa.metrics_mut() {
        mx.inc("recovery.degraded", 1);
        mx.inc("recovery.excluded_vertices", stats.excluded.len() as u64);
    }
    Ok(RecoveredMcp {
        output: McpOutput {
            dest: d,
            sow,
            ptn,
            iterations: sub_out.iterations,
            stats: sub_out.stats,
        },
        recovery: stats,
    })
}

/// The [`RecoveryPolicy::Redundant`] path: replicate `w` onto a wide
/// `n x (n * r)` array that inherits `ppa`'s fault map (the original
/// `n x n` coordinates land in replica lane 0's band; the extra lanes
/// are fresh silicon), solve all replicas in one batched pass, and
/// vote. No host-side Bellman check and no sequential reference run —
/// the vote is the sole detector, and under correcting TMR also the
/// corrector.
fn solve_redundantly(
    ppa: &mut Ppa,
    w: &WeightMatrix,
    d: usize,
    mode: Redundancy,
) -> Result<RecoveredMcp> {
    let n = w.n();
    let dim = ppa.dim();
    if dim.rows != n || dim.cols != n {
        return Err(McpError::SizeMismatch {
            n,
            rows: dim.rows,
            cols: dim.cols,
        });
    }
    if d >= n {
        return Err(McpError::DestinationOutOfRange { d, n });
    }
    let r = mode.replicas();
    let mut wide = Ppa::from_machine(Machine::new(n, n * r)).with_word_bits(ppa.word_bits());
    wide.machine_mut()
        .attach_faults(ppa.machine().faults().clone());
    let collect_metrics = ppa.metrics_mut().is_some();
    if collect_metrics {
        wide.enable_metrics();
    }

    let mut sess = BatchSession::from_ppa(wide, &replicate(w, r))?;
    let solved = sess.solve_redundant(&[d], mode);
    if collect_metrics {
        let sub_metrics = sess.ppa_mut().take_metrics();
        if let Some(parent) = ppa.metrics_mut() {
            parent.merge(&sub_metrics);
        }
    }
    let wave = match solved {
        Ok(wave) => wave,
        Err(e) if is_corruption(&e) => {
            // A whole-wave abort (e.g. a dead bus line mid-run): the
            // vote never happened, so localize and report like the
            // self-test policies do.
            let report = sess.ppa_mut().machine_mut().self_test();
            let mut located: Vec<Coord> = Vec::new();
            for c in report.coords() {
                if !located.contains(&c) {
                    located.push(c);
                }
            }
            located.sort();
            let stats = RecoveryStats {
                attempts: 1,
                self_tests: 1,
                located: located.clone(),
                excluded: Vec::new(),
                overhead: report.steps,
            };
            note_outcome(ppa, &stats, false);
            return Err(McpError::FaultyArray { located });
        }
        Err(e) => return Err(e),
    };

    let lane = wave
        .lanes
        .into_iter()
        .next()
        .expect("one destination was voted"); // solve_redundant returns dests.len() lanes
    let mut located: Vec<Coord> = lane.vote.located.iter().map(|&(c, _)| c).collect();
    located.sort();
    located.dedup();
    let stats = RecoveryStats {
        attempts: 1,
        self_tests: wave.self_tests,
        located,
        excluded: Vec::new(),
        overhead: wave.bist_steps,
    };
    match lane.outcome {
        Ok(output) => {
            note_outcome(ppa, &stats, true);
            Ok(RecoveredMcp {
                output,
                recovery: stats,
            })
        }
        Err(e) => {
            note_outcome(ppa, &stats, false);
            Err(e)
        }
    }
}

/// Mirrors the recovery accounting into the attached metrics registry.
fn note_outcome(ppa: &mut Ppa, stats: &RecoveryStats, recovered: bool) {
    if let Some(m) = ppa.metrics_mut() {
        m.inc("recovery.attempts", stats.attempts as u64);
        m.inc("recovery.self_tests", stats.self_tests as u64);
        m.inc("recovery.overhead_steps", stats.overhead.total());
        if recovered && (stats.attempts > 1 || stats.self_tests > 0) {
            m.inc("faults.recovered", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference::bellman_ford_to_dest;
    use ppa_graph::validate::is_valid_solution;
    use ppa_machine::{FaultMap, MachineError, SwitchFault, TransientFaults};
    use ppa_ppc::PpcError;

    fn ring_ppa(n: usize) -> (Ppa, WeightMatrix) {
        let w = gen::ring(n);
        let ppa = Ppa::square(n).with_word_bits(10);
        (ppa, w)
    }

    #[test]
    fn budget_and_cancel_outcomes_are_not_corruption() {
        // A spent budget or a raised cancel token is a supervisor
        // decision: retrying or degrading cannot help, and treating it as
        // hardware corruption would burn self-tests for nothing.
        let budget = McpError::Ppc(PpcError::Machine(MachineError::StepBudgetExhausted {
            budget: 5,
        }));
        let cancelled = McpError::Ppc(PpcError::Machine(MachineError::Cancelled));
        assert!(!is_corruption(&budget));
        assert!(!is_corruption(&cancelled));
        assert!(budget.is_step_budget_exhausted());
        assert!(cancelled.is_cancelled());
        assert!(!budget.is_cancelled());
        assert!(!cancelled.is_step_budget_exhausted());
        // The corruption classification itself is unchanged.
        assert!(is_corruption(&McpError::NoConvergence { rounds: 3 }));
    }

    #[test]
    fn healthy_machine_recovers_trivially() {
        let (mut ppa, w) = ring_ppa(6);
        let r = solve_with_recovery(&mut ppa, &w, 0, RecoveryPolicy::FailFast).unwrap();
        assert_eq!(r.recovery.attempts, 1);
        assert_eq!(r.recovery.self_tests, 0);
        assert_eq!(r.recovery.overhead.total(), 0);
        assert!(!r.recovery.degraded());
        assert!(is_valid_solution(&w, 0, &r.output.sow, &r.output.ptn));
    }

    #[test]
    fn fail_fast_propagates_corruption_without_self_test() {
        let (mut ppa, w) = ring_ppa(6);
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 3), SwitchFault::StuckOpen);
        ppa.machine_mut().attach_faults(fm);
        let err = solve_with_recovery(&mut ppa, &w, 0, RecoveryPolicy::FailFast).unwrap_err();
        assert!(is_corruption(&err), "{err}");
    }

    #[test]
    fn retry_self_test_reports_permanent_faults() {
        let (mut ppa, w) = ring_ppa(6);
        let at = Coord::new(2, 4);
        let mut fm = FaultMap::new();
        fm.inject(at, SwitchFault::StuckOpen);
        ppa.machine_mut().attach_faults(fm);
        let err = solve_with_recovery(
            &mut ppa,
            &w,
            0,
            RecoveryPolicy::RetrySelfTest { max_retries: 2 },
        )
        .unwrap_err();
        match err {
            McpError::FaultyArray { located } => assert_eq!(located, vec![at]),
            other => panic!("expected FaultyArray, got {other}"),
        }
    }

    #[test]
    fn transient_glitches_are_retried_away() {
        let (mut ppa, w) = ring_ppa(6);
        // One guaranteed glitch early on, then quiet: seed 1 with p = 0.02
        // corrupts some early transfer but later attempts run clean with
        // high probability; retries absorb it. To make the test
        // deterministic, use a probability of 0 after a forced first hit:
        // simplest reliable setup is a modest probability and a generous
        // retry budget — verification catches any corrupted attempt, so
        // the final answer is correct whenever Ok is returned.
        ppa.machine_mut()
            .attach_transient_faults(TransientFaults::new(0.01, 5));
        let r = solve_with_recovery(
            &mut ppa,
            &w,
            0,
            RecoveryPolicy::RetrySelfTest { max_retries: 50 },
        );
        if let Ok(r) = r {
            assert!(is_valid_solution(&w, 0, &r.output.sow, &r.output.ptn));
            if r.recovery.attempts > 1 {
                assert!(r.recovery.overhead.total() > 0);
            }
        }
        // An Err(FaultyArray { located: [] }) after exhausting retries is
        // also acceptable — never a wrong answer.
    }

    #[test]
    fn degrade_solves_on_the_healthy_sub_array() {
        // Ring 0 -> 1 -> ... -> 7 -> 0, destination 0. A stuck-Open switch
        // at (2,4) splits column 4's southward broadcast, so vertex 3's
        // only candidate (j = 4) reads garbage — the Bellman invariant
        // trips deterministically and degradation excludes vertices 2
        // (faulty row) and 4 (faulty column).
        let n = 8;
        let w = gen::ring(n);
        let mut ppa = Ppa::square(n).with_word_bits(12);
        let at = Coord::new(2, 4);
        let mut fm = FaultMap::new();
        fm.inject(at, SwitchFault::StuckOpen);
        ppa.machine_mut().attach_faults(fm);
        let d = 0;
        let r = solve_with_recovery(&mut ppa, &w, d, RecoveryPolicy::Degrade { max_retries: 1 })
            .unwrap();
        assert!(r.recovery.degraded());
        assert_eq!(r.recovery.excluded, vec![2, 4]);
        assert_eq!(r.recovery.located, vec![at]);
        // Exact against the sequential reference on the induced subgraph.
        let mut pruned = w.clone();
        for v in [2usize, 4] {
            for u in 0..n {
                if u != v {
                    pruned.remove(v, u);
                    pruned.remove(u, v);
                }
            }
        }
        let oracle = bellman_ford_to_dest(&pruned, d);
        for v in 0..n {
            if v == 2 || v == 4 {
                assert_eq!(r.output.sow[v], INF, "excluded vertex {v}");
                assert_eq!(r.output.ptn[v], v);
            } else {
                assert_eq!(r.output.sow[v], oracle.dist[v], "vertex {v}");
            }
        }
    }

    #[test]
    fn degrade_refuses_when_destination_is_faulty() {
        let (mut ppa, w) = ring_ppa(6);
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 0), SwitchFault::StuckShort);
        ppa.machine_mut().attach_faults(fm);
        let err = solve_with_recovery(&mut ppa, &w, 0, RecoveryPolicy::Degrade { max_retries: 0 })
            .unwrap_err();
        assert!(matches!(err, McpError::FaultyArray { .. }), "{err}");
    }

    #[test]
    fn caller_mistakes_bypass_recovery() {
        let w = gen::ring(5);
        let mut ppa = Ppa::square(4); // wrong size
        let err = solve_with_recovery(&mut ppa, &w, 0, RecoveryPolicy::Degrade { max_retries: 3 })
            .unwrap_err();
        assert!(matches!(err, McpError::SizeMismatch { .. }));
    }

    #[test]
    fn redundant_policy_solves_healthy_machines_without_overhead() {
        use crate::redundancy::Redundancy;
        for mode in [Redundancy::Dmr, Redundancy::Tmr { correct: true }] {
            let (mut ppa, w) = ring_ppa(6);
            let r =
                solve_with_recovery(&mut ppa, &w, 0, RecoveryPolicy::Redundant { mode }).unwrap();
            assert_eq!(r.recovery.attempts, 1);
            assert_eq!(r.recovery.self_tests, 0, "healthy vote runs no BIST");
            assert_eq!(r.recovery.overhead.total(), 0);
            assert!(is_valid_solution(&w, 0, &r.output.sow, &r.output.ptn));
        }
        // Redundancy::Off degenerates to a verified fail-fast solve.
        let (mut ppa, w) = ring_ppa(6);
        let r = solve_with_recovery(
            &mut ppa,
            &w,
            0,
            RecoveryPolicy::Redundant {
                mode: Redundancy::Off,
            },
        )
        .unwrap();
        assert!(is_valid_solution(&w, 0, &r.output.sow, &r.output.ptn));
    }

    #[test]
    fn redundant_policy_inherits_the_machines_fault_map() {
        use crate::redundancy::Redundancy;
        // The stuck switch that deterministically corrupts the solo
        // solve (see degrade_solves_on_the_healthy_sub_array) lands in
        // replica lane 0's band of the wide array. DMR must turn it
        // into a typed outcome — never a silently wrong answer — and
        // correcting TMR must recover the exact healthy answer.
        let n = 8;
        let w = gen::ring(n);
        let at = Coord::new(2, 4);
        let oracle = bellman_ford_to_dest(&w, 0);

        let mut ppa = Ppa::square(n).with_word_bits(12);
        let mut fm = FaultMap::new();
        fm.inject(at, SwitchFault::StuckOpen);
        ppa.machine_mut().attach_faults(fm.clone());
        match solve_with_recovery(
            &mut ppa,
            &w,
            0,
            RecoveryPolicy::Redundant {
                mode: Redundancy::Dmr,
            },
        ) {
            Ok(r) => {
                // The fault was ineffective under the batch instruction
                // mix: the unanimous answer must still be right.
                assert_eq!(r.output.sow, oracle.dist);
            }
            Err(e) => assert!(is_corruption(&e), "{e}"),
        }

        let mut ppa = Ppa::square(n).with_word_bits(12);
        ppa.machine_mut().attach_faults(fm);
        let r = solve_with_recovery(
            &mut ppa,
            &w,
            0,
            RecoveryPolicy::Redundant {
                mode: Redundancy::Tmr { correct: true },
            },
        )
        .unwrap();
        assert_eq!(r.output.sow, oracle.dist, "TMR answer must be healthy");
        if r.recovery.self_tests > 0 {
            // The vote disagreed and targeted BIST found the stuck
            // switch inside the suspect band.
            assert_eq!(r.recovery.located, vec![at]);
            assert!(r.recovery.overhead.total() > 0);
        }
    }

    #[test]
    fn redundant_policy_rejects_caller_mistakes() {
        use crate::redundancy::Redundancy;
        let (mut ppa, w) = ring_ppa(6);
        let err = solve_with_recovery(
            &mut ppa,
            &w,
            9,
            RecoveryPolicy::Redundant {
                mode: Redundancy::Dmr,
            },
        )
        .unwrap_err();
        assert!(matches!(err, McpError::DestinationOutOfRange { .. }));
        let w5 = gen::ring(5);
        let err = solve_with_recovery(
            &mut ppa,
            &w5,
            0,
            RecoveryPolicy::Redundant {
                mode: Redundancy::Dmr,
            },
        )
        .unwrap_err();
        assert!(matches!(err, McpError::SizeMismatch { .. }));
    }

    #[test]
    fn redundant_policy_merges_metrics_into_the_parent() {
        use crate::redundancy::Redundancy;
        let (mut ppa, w) = ring_ppa(6);
        ppa.enable_metrics();
        let r = solve_with_recovery(
            &mut ppa,
            &w,
            0,
            RecoveryPolicy::Redundant {
                mode: Redundancy::Dmr,
            },
        )
        .unwrap();
        assert_eq!(r.recovery.attempts, 1);
        let m = ppa.take_metrics();
        assert_eq!(m.counter("recovery.attempts"), 1);
        assert_eq!(m.counter("redundancy.votes"), 1);
        assert_eq!(m.counter("redundancy.disagreements"), 0);
        assert!(m.counter("batch.solves") >= 1, "ran through the batch path");
    }

    #[test]
    fn recovery_metrics_reconcile_with_stats() {
        let (mut ppa, w) = ring_ppa(6);
        ppa.enable_metrics();
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 3), SwitchFault::StuckOpen);
        ppa.machine_mut().attach_faults(fm);
        let r = solve_with_recovery(&mut ppa, &w, 0, RecoveryPolicy::Degrade { max_retries: 0 })
            .unwrap();
        let m = ppa.take_metrics();
        assert_eq!(m.counter("recovery.attempts"), r.recovery.attempts as u64);
        assert_eq!(
            m.counter("recovery.self_tests"),
            r.recovery.self_tests as u64
        );
        assert_eq!(
            m.counter("recovery.overhead_steps"),
            r.recovery.overhead.total()
        );
        assert_eq!(m.counter("recovery.degraded"), 1);
        assert!(m.counter("faults.detected") >= 1);
        assert_eq!(m.counter("faults.recovered"), 1);
    }
}
