//! Image kernels on the PPA: the city-block distance transform.
//!
//! The paper's Section 2 mentions, in passing, that the PPC communication
//! primitives were "used to implement the EDT algorithm" — the distance
//! transform being the flagship image-analysis workload of the
//! reconfigurable-mesh literature the PPA came from. This module supplies
//! that companion kernel: the exact **L1 (city-block) distance transform**
//! of a binary image, one pixel per PE.
//!
//! The L1 metric is separable, so the transform is two 1-D passes:
//!
//! 1. per row, the distance to the nearest feature pixel in the same row
//!    (two directional prefix scans over index markers);
//! 2. per column, the min-plus relaxation `dt[i] = min_i' (rowdt[i'] +
//!    |i - i'|)`, realized as `n - 1` shift/add/min rounds in each
//!    vertical direction.
//!
//! Total cost `O(n)` SIMD steps — on the row/column PPA the distance
//! transform is communication-bound, not comparison-bound, so no
//! bit-serial scans appear at all (contrast with the MCP's `O(p * h)`).

use crate::error::McpError;
use crate::Result;
use ppa_machine::Direction;
use ppa_ppc::{Parallel, Ppa};

/// Computes the L1 distance transform of a binary image.
///
/// `features` marks feature (object) pixels `true`. Returns, per PE, the
/// city-block distance to the nearest feature pixel (`None` per pixel is
/// not needed: an image with no features at all yields `None`).
///
/// # Errors
/// [`McpError::WordWidthTooSmall`] if the machine word cannot hold the
/// largest possible distance (`rows + cols`).
pub fn distance_transform_l1(
    ppa: &mut Ppa,
    features: &Parallel<bool>,
) -> Result<Option<Parallel<i64>>> {
    let dim = ppa.dim();
    assert_eq!(features.dim(), dim, "feature plane shape mismatch");
    let maxint = ppa.maxint();
    let worst = (dim.rows + dim.cols) as i64;
    if worst >= maxint {
        return Err(McpError::WordWidthTooSmall {
            required: (64 - (worst as u64 + 1).leading_zeros()).max(2),
            actual: ppa.word_bits(),
        });
    }
    if !features.any() {
        return Ok(None);
    }

    let col = ppa.col_index();
    let one = ppa.constant(1i64);
    let inf = ppa.constant(maxint);

    // ---- pass 1: nearest feature within each row -------------------------
    // Left side: the largest feature column <= own column.
    let neg = ppa.constant(-1i64);
    let left_marker = ppa.select(features, &col, &neg)?;
    let left_best = ppa.prefix_max(&left_marker, Direction::East, -1)?;
    let left_found = {
        let zero = ppa.constant(0i64);
        ppa.le(&zero, &left_best)?
    };
    let left_dist_raw = ppa.sub(&col, &left_best)?;
    let left_dist = ppa.select(&left_found, &left_dist_raw, &inf)?;

    // Right side: the smallest feature column >= own column.
    let right_marker = ppa.select(features, &col, &inf)?;
    let right_best = ppa.prefix_min(&right_marker, Direction::West)?;
    let right_found = ppa.lt(&right_best, &inf)?;
    let right_dist_raw = ppa.sub(&right_best, &col)?;
    let right_dist = ppa.select(&right_found, &right_dist_raw, &inf)?;

    let mut rowdt = ppa.min2(&left_dist, &right_dist)?;

    // ---- pass 2: min-plus relaxation along the columns --------------------
    // Downward: dt_i = min(rowdt_i, dt_{i-1} + 1), then the mirror upward.
    for dir in [Direction::South, Direction::North] {
        for _ in 1..dim.rows {
            let shifted = ppa.shift(&rowdt, dir, maxint)?;
            let bumped = ppa.sat_add(&shifted, &one)?;
            rowdt = ppa.min2(&rowdt, &bumped)?;
        }
    }
    Ok(Some(rowdt))
}

/// Brute-force oracle: per pixel, the minimum L1 distance to any feature.
pub fn distance_transform_oracle(features: &Parallel<bool>) -> Option<Parallel<i64>> {
    let dim = features.dim();
    let pts: Vec<(i64, i64)> = features
        .enumerate()
        .filter(|(_, &f)| f)
        .map(|(c, _)| (c.row as i64, c.col as i64))
        .collect();
    if pts.is_empty() {
        return None;
    }
    Some(Parallel::from_fn(dim, |c| {
        pts.iter()
            .map(|&(r, k)| (c.row as i64 - r).abs() + (c.col as i64 - k).abs())
            .min()
            .expect("non-empty features")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_machine::Coord;

    fn run(n: usize, feats: &[(usize, usize)]) -> Parallel<i64> {
        let mut ppa = Ppa::square(n).with_word_bits(10);
        let mut plane = Parallel::filled(ppa.dim(), false);
        for &(r, c) in feats {
            plane.set(Coord::new(r, c), true);
        }
        let got = distance_transform_l1(&mut ppa, &plane).unwrap().unwrap();
        let want = distance_transform_oracle(&plane).unwrap();
        assert_eq!(got, want);
        got
    }

    #[test]
    fn single_feature_center() {
        let dt = run(5, &[(2, 2)]);
        assert_eq!(*dt.at(2, 2), 0);
        assert_eq!(*dt.at(0, 0), 4);
        assert_eq!(*dt.at(2, 0), 2);
        assert_eq!(*dt.at(4, 4), 4);
    }

    #[test]
    fn corner_and_edge_features() {
        run(6, &[(0, 0)]);
        run(6, &[(5, 5), (0, 5)]);
        run(6, &[(0, 0), (0, 5), (5, 0), (5, 5)]);
    }

    #[test]
    fn feature_rows_and_empty_rows_mix() {
        // Features only in row 0: distances grow straight down.
        let dt = run(4, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(*dt.at(r, c), r as i64);
            }
        }
    }

    #[test]
    fn random_patterns_match_oracle() {
        for seed in 0..10u64 {
            let n = 7;
            let mut ppa = Ppa::square(n).with_word_bits(10);
            let plane = Parallel::from_fn(ppa.dim(), |c| {
                (c.row as u64 * 31 + c.col as u64 * 17 + seed).is_multiple_of(5)
            });
            if !plane.any() {
                continue;
            }
            let got = distance_transform_l1(&mut ppa, &plane).unwrap().unwrap();
            let want = distance_transform_oracle(&plane).unwrap();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn empty_image_is_none() {
        let mut ppa = Ppa::square(4).with_word_bits(8);
        let plane = Parallel::filled(ppa.dim(), false);
        assert_eq!(distance_transform_l1(&mut ppa, &plane).unwrap(), None);
        assert_eq!(distance_transform_oracle(&plane), None);
    }

    #[test]
    fn all_features_is_zero() {
        let dt = run(
            4,
            &(0..4)
                .flat_map(|r| (0..4).map(move |c| (r, c)))
                .collect::<Vec<_>>(),
        );
        assert!(dt.iter().all(|&v| v == 0));
    }

    #[test]
    fn cost_is_linear_in_n_and_free_of_bit_scans() {
        let mut steps = Vec::new();
        for n in [6usize, 12] {
            let mut ppa = Ppa::square(n).with_word_bits(10);
            let plane = Parallel::from_fn(ppa.dim(), |c| c.row == 0 && c.col == 0);
            ppa.reset_steps();
            let _ = distance_transform_l1(&mut ppa, &plane).unwrap().unwrap();
            let report = ppa.steps();
            assert_eq!(
                report.count(ppa_machine::Op::BusOr),
                0,
                "no bit-serial scans"
            );
            steps.push(report.total());
        }
        // Roughly linear: doubling n roughly doubles steps.
        let ratio = steps[1] as f64 / steps[0] as f64;
        assert!((1.5..2.5).contains(&ratio), "{steps:?}");
    }

    #[test]
    fn word_width_guard() {
        let mut ppa = Ppa::square(40).with_word_bits(6); // 2n = 80 > 63
        let plane = Parallel::from_fn(ppa.dim(), |c| c.row == 0);
        assert!(matches!(
            distance_transform_l1(&mut ppa, &plane),
            Err(McpError::WordWidthTooSmall { .. })
        ));
    }
}
