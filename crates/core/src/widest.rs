//! Maximum-capacity (widest / bottleneck) paths on the PPA.
//!
//! The paper's dynamic program is generic over the cost semiring: swap
//! `(min, +)` for `(max, min)` and the same machine program computes, for
//! every vertex, the path to `d` whose *narrowest edge is widest* — the
//! classic bottleneck-routing problem (bandwidth reservation, load
//! limits). The mapping onto the PPA is untouched: column broadcast,
//! per-PE combine, bit-serial row *maximum*, diagonal fold. Cost is the
//! same `O(p * h)`.
//!
//! Conventions (duals of the shortest-path ones):
//! * an absent edge has capacity **0** (untraversable) — no `MAXINT`
//!   sentinel is needed;
//! * the diagonal is loaded as `MAXINT` ("unlimited"), so the `j = i`
//!   candidate `min(w_ii, CAP_id)` preserves the old value — the same
//!   trick that makes statement 16's overwrite correct for shortest
//!   paths;
//! * `CAP_dd = MAXINT` (a vertex reaches itself at unlimited capacity).

use crate::error::McpError;
use crate::stats::McpStats;
use crate::Result;
use ppa_graph::{Weight, WeightMatrix};
use ppa_machine::Executor;
use ppa_machine::{Direction, StepReport};
use ppa_ppc::{Parallel, Ppa};

/// Result of a widest-path run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidestOutput {
    /// Destination vertex.
    pub dest: usize,
    /// `cap[i]` — the best achievable bottleneck capacity from `i` to
    /// `d`; `0` means unreachable. `cap[d]` is the machine's `MAXINT`
    /// ("unlimited").
    pub cap: Vec<Weight>,
    /// `ptn[i]` — successor of `i` on one widest path (`ptn[i] == i`
    /// marks "no path"; `ptn[d] == d`).
    pub ptn: Vec<usize>,
    /// Do-while iterations executed.
    pub iterations: usize,
    /// Step accounting.
    pub stats: McpStats,
}

/// The sequential oracle: widest path to `d` by iterated relaxation over
/// the `(max, min)` semiring.
pub fn widest_path_oracle(w: &WeightMatrix, d: usize) -> Vec<Weight> {
    let n = w.n();
    assert!(d < n);
    let cap_edge = |i: usize, j: usize| {
        let e = w.get(i, j);
        if e == ppa_graph::INF {
            0
        } else {
            e
        }
    };
    let mut cap: Vec<Weight> = (0..n).map(|i| cap_edge(i, d)).collect();
    cap[d] = Weight::MAX;
    loop {
        let mut changed = false;
        let snapshot = cap.clone();
        for i in 0..n {
            if i == d {
                continue;
            }
            for j in 0..n {
                let cand = cap_edge(i, j).min(snapshot[j]);
                if cand > cap[i] {
                    cap[i] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            return cap;
        }
    }
}

/// Runs the widest-path dynamic program on the PPA.
///
/// Requirements: square `n x n` machine; all finite capacities must fit
/// strictly below the machine's `MAXINT` (which plays "unlimited").
pub fn widest_path<E: Executor>(
    ppa: &mut Ppa<E>,
    w: &WeightMatrix,
    d: usize,
) -> Result<WidestOutput> {
    let n = w.n();
    let dim = ppa.dim();
    if dim.rows != n || dim.cols != n {
        return Err(McpError::SizeMismatch {
            n,
            rows: dim.rows,
            cols: dim.cols,
        });
    }
    if d >= n {
        return Err(McpError::DestinationOutOfRange { d, n });
    }
    let maxint = ppa.maxint();
    let max_cap = w.max_finite_weight().unwrap_or(0);
    if max_cap >= maxint || (n as i64 - 1) >= maxint {
        return Err(McpError::WordWidthTooSmall {
            required: (64 - (max_cap.max(n as i64 - 1) as u64 + 1).leading_zeros()).max(2),
            actual: ppa.word_bits(),
        });
    }

    let start = ppa.steps();
    let row = ppa.row_index();
    let col = ppa.col_index();
    let d_imm = ppa.constant(d as i64);
    let nm1_imm = ppa.constant(n as i64 - 1);
    let row_is_d = ppa.eq(&row, &d_imm)?;
    let row_ne_d = ppa.not(&row_is_d)?;
    let col_is_d = ppa.eq(&col, &d_imm)?;
    let diag = ppa.eq(&row, &col)?;
    let last_col = ppa.eq(&col, &nm1_imm)?;

    // Capacity plane: absent edge -> 0, diagonal -> MAXINT ("unlimited").
    let cap_plane: Parallel<i64> = Parallel::from_fn(dim, |c| {
        if c.row == c.col {
            maxint
        } else {
            let e = w.get(c.row, c.col);
            if e == ppa_graph::INF {
                0
            } else {
                e
            }
        }
    });

    // Init: CAP[d][i] = capacity of edge i -> d (column-d fold, as in MCP);
    // the diagonal MAXINT lands on CAP[d][d] automatically.
    let in_caps = ppa.broadcast(&cap_plane, Direction::East, &col_is_d)?;
    let in_caps_t = ppa.broadcast(&in_caps, Direction::South, &diag)?;
    let mut cap = ppa.constant(0i64);
    let mut max_cap_row = ppa.constant(0i64);
    let mut ptn = ppa.constant(0i64);
    let mut old_cap = ppa.constant(0i64);
    ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<()> {
        p.assign(&mut cap, &in_caps_t)?;
        p.assign(&mut ptn, &d_imm)?;
        p.assign(&mut max_cap_row, &in_caps_t)?;
        Ok(())
    })??;
    let init_report = ppa.steps().since(&start);

    let mut per_iteration: Vec<StepReport> = Vec::new();
    let mut iterations = 0usize;
    loop {
        let iter_start = ppa.steps();
        iterations += 1;

        // Candidate at PE (i,j): min(capacity(i->j), CAP_jd).
        let bcap = ppa.broadcast(&cap, Direction::South, &row_is_d)?;
        let cand = ppa.min2(&bcap, &cap_plane)?;
        ppa.where_(&row_ne_d, |p| p.assign(&mut cap, &cand))??;

        // Row-wise maximum (bit-serial, O(h)).
        let rowmax = ppa.max(&cap, Direction::West, &last_col)?;
        ppa.where_(&row_ne_d, |p| p.assign(&mut max_cap_row, &rowmax))??;

        // Pointer: smallest column achieving the maximum (row-d repair
        // as in MCP).
        let is_arg = ppa.eq(&max_cap_row, &cap)?;
        let sel = ppa.or(&is_arg, &row_is_d)?;
        let arg_col = ppa.selected_min(&col, Direction::West, &last_col, &sel)?;
        ppa.where_(&row_ne_d, |p| p.assign(&mut ptn, &arg_col))??;

        // Fold the diagonal into row d.
        let bc_max = ppa.broadcast(&max_cap_row, Direction::South, &diag)?;
        let bc_ptn = ppa.broadcast(&ptn, Direction::South, &diag)?;
        let changed = ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<Parallel<bool>> {
            p.assign(&mut old_cap, &cap)?;
            p.assign(&mut cap, &bc_max)?;
            let changed = p.ne(&cap, &old_cap)?;
            p.where_(&changed, |q| q.assign(&mut ptn, &bc_ptn))??;
            Ok(changed)
        })??;

        per_iteration.push(ppa.steps().since(&iter_start));
        let changed_row_d = ppa.and(&changed, &row_is_d)?;
        if !ppa.any(&changed_row_d)? {
            break;
        }
        if iterations > n {
            return Err(McpError::NoConvergence { rounds: iterations });
        }
    }

    let mut out_cap = Vec::with_capacity(n);
    let mut out_ptn = Vec::with_capacity(n);
    for i in 0..n {
        let c = *cap.at(d, i);
        if i == d {
            out_cap.push(maxint);
            out_ptn.push(d);
        } else if c <= 0 {
            out_cap.push(0);
            out_ptn.push(i);
        } else {
            out_cap.push(c);
            out_ptn.push(*ptn.at(d, i) as usize);
        }
    }
    let total = ppa.steps().since(&start);
    Ok(WidestOutput {
        dest: d,
        cap: out_cap,
        ptn: out_ptn,
        iterations,
        stats: McpStats {
            init: init_report,
            per_iteration,
            total,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;

    fn machine_for(w: &WeightMatrix) -> Ppa {
        Ppa::square(w.n()).with_word_bits(w.required_word_bits().clamp(4, 62))
    }

    #[test]
    fn widest_on_tiny_graph() {
        // Two routes 0 -> 2: direct capacity 3, or via 1 with bottleneck
        // min(9, 7) = 7 — the detour wins.
        let w = WeightMatrix::from_edges(3, &[(0, 2, 3), (0, 1, 9), (1, 2, 7)]);
        let mut ppa = machine_for(&w);
        let out = widest_path(&mut ppa, &w, 2).unwrap();
        assert_eq!(out.cap[0], 7);
        assert_eq!(out.ptn[0], 1);
        assert_eq!(out.cap[1], 7);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..12u64 {
            let w = gen::random_digraph(10, 0.3, 20, seed);
            let d = seed as usize % 10;
            let mut ppa = machine_for(&w);
            let out = widest_path(&mut ppa, &w, d).unwrap();
            let oracle = widest_path_oracle(&w, d);
            for i in 0..10 {
                if i == d {
                    continue;
                }
                assert_eq!(out.cap[i], oracle[i], "seed {seed} vertex {i}");
            }
        }
    }

    #[test]
    fn unreachable_has_capacity_zero() {
        let w = WeightMatrix::from_edges(4, &[(0, 1, 5)]);
        let mut ppa = machine_for(&w);
        let out = widest_path(&mut ppa, &w, 1).unwrap();
        assert_eq!(out.cap[0], 5);
        assert_eq!(out.cap[2], 0);
        assert_eq!(out.ptn[2], 2);
    }

    #[test]
    fn pointers_trace_a_path_achieving_the_bottleneck() {
        let w = gen::random_connected(9, 0.25, 15, 4);
        let mut ppa = machine_for(&w);
        let out = widest_path(&mut ppa, &w, 3).unwrap();
        for i in 0..9 {
            if i == 3 || out.cap[i] == 0 {
                continue;
            }
            // Walk pointers; the min edge capacity along the walk must
            // equal the claimed bottleneck.
            let mut cur = i;
            let mut bottleneck = i64::MAX;
            let mut hops = 0;
            while cur != 3 {
                let nxt = out.ptn[cur];
                assert!(w.has_edge(cur, nxt), "edge {cur}->{nxt} missing (from {i})");
                bottleneck = bottleneck.min(w.get(cur, nxt));
                cur = nxt;
                hops += 1;
                assert!(hops <= 9, "cycle from {i}");
            }
            assert_eq!(bottleneck, out.cap[i], "from {i}");
        }
    }

    #[test]
    fn same_step_complexity_class_as_mcp() {
        let w = gen::ring(8);
        let mut a = machine_for(&w);
        let widest = widest_path(&mut a, &w, 0).unwrap();
        let mut b = machine_for(&w);
        let mcp = crate::mcp::minimum_cost_path(&mut b, &w, 0).unwrap();
        let ratio = widest.stats.steps_per_iteration() / mcp.stats.steps_per_iteration();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn capacity_overflow_guard() {
        let w = WeightMatrix::from_edges(2, &[(0, 1, 300)]);
        let mut ppa = Ppa::square(2).with_word_bits(8); // MAXINT = 255
        assert!(matches!(
            widest_path(&mut ppa, &w, 1),
            Err(McpError::WordWidthTooSmall { .. })
        ));
    }
}
