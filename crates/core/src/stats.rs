//! Per-phase SIMD step accounting for the MCP run.

use ppa_machine::StepReport;
use std::fmt;

/// Step breakdown of one `minimum_cost_path` execution.
///
/// The paper's claim decomposes as: initialization is `O(1)` steps, each
/// do-while iteration is `O(h)` steps (dominated by `min` and
/// `selected_min`), and the loop runs `max(1, p)` times — hence the
/// `O(p * h)` total. These fields let the experiment harness verify each
/// part separately.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct McpStats {
    /// Steps spent in Step 1 (statements 4-7) plus plane setup.
    pub init: StepReport,
    /// Steps of each do-while iteration, in order.
    pub per_iteration: Vec<StepReport>,
    /// Total steps of the whole call.
    pub total: StepReport,
}

impl McpStats {
    /// Number of do-while iterations executed (the paper's `t`; equals
    /// `max(1, p)` where `p` is the maximum MCP hop-length).
    pub fn iterations(&self) -> usize {
        self.per_iteration.len()
    }

    /// Mean steps per iteration (0 if no iterations ran).
    pub fn steps_per_iteration(&self) -> f64 {
        if self.per_iteration.is_empty() {
            0.0
        } else {
            let sum: u64 = self.per_iteration.iter().map(|r| r.total()).sum();
            sum as f64 / self.per_iteration.len() as f64
        }
    }

    /// Whether every iteration cost exactly the same number of steps —
    /// true by construction for this algorithm (the body is straight-line),
    /// asserted by the regression tests.
    pub fn iterations_uniform(&self) -> bool {
        match self.per_iteration.first() {
            None => true,
            Some(first) => self
                .per_iteration
                .iter()
                .all(|r| r.total() == first.total()),
        }
    }
}

impl fmt::Display for McpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MCP steps: total {}", self.total)?;
        writeln!(f, "  init:           {}", self.init)?;
        writeln!(
            f,
            "  iterations:     {} x {:.1} steps",
            self.iterations(),
            self.steps_per_iteration()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_machine::{Controller, Op};

    fn report(alu: u64) -> StepReport {
        let mut c = Controller::new();
        for _ in 0..alu {
            c.record(Op::Alu);
        }
        c.report()
    }

    #[test]
    fn steps_per_iteration_averages() {
        let s = McpStats {
            init: report(2),
            per_iteration: vec![report(10), report(10)],
            total: report(22),
        };
        assert_eq!(s.iterations(), 2);
        assert!((s.steps_per_iteration() - 10.0).abs() < 1e-9);
        assert!(s.iterations_uniform());
    }

    #[test]
    fn non_uniform_detected() {
        let s = McpStats {
            init: report(0),
            per_iteration: vec![report(3), report(4)],
            total: report(7),
        };
        assert!(!s.iterations_uniform());
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = McpStats::default();
        assert_eq!(s.iterations(), 0);
        assert_eq!(s.steps_per_iteration(), 0.0);
        assert!(s.iterations_uniform());
        let _ = s.to_string();
    }
}
