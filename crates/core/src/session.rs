//! Reusable solver sessions: one machine, many destinations.
//!
//! [`mcp::minimum_cost_path`](crate::mcp::minimum_cost_path) is a one-shot
//! entry point: every call rebuilds the `ROW`/`COL` registers, the derived
//! masks, and the `W` layout from scratch. That is the right accounting
//! for reproducing the paper's single-destination step counts, but it
//! wastes work when the same graph is solved for many destinations — the
//! all-pairs driver, the CLI, and the benchmark harness all do exactly
//! that.
//!
//! An [`McpSession`] owns a runtime (machine + execution backend) together
//! with the destination-independent plane set prepared once from a weight
//! matrix. Each [`McpSession::solve`] then only rebuilds the four
//! destination masks before running the do-while loop, and — on a
//! plan-caching backend such as
//! [`PackedBackend`](ppa_machine::PackedBackend) — reuses the bus plans
//! and mask buffers warmed up by earlier solves. When a metrics registry
//! is attached, every solve publishes the backend's plan-cache and arena
//! deltas under `backend.*`.

use crate::apsp::AllPairs;
use crate::mcp::{self, McpOutput, Prepared};
use crate::Result;
use ppa_graph::WeightMatrix;
use ppa_machine::{ExecStats, Executor, PackedBackend, ScalarBackend, ThreadedBackend, Word};
use ppa_ppc::Ppa;

/// A minimum-cost-path solver session: a runtime plus the prepared
/// destination-independent planes for one weight matrix.
#[derive(Debug)]
pub struct McpSession<E: Executor = ScalarBackend> {
    ppa: Ppa<E>,
    w: WeightMatrix,
    prep: Prepared,
}

impl McpSession<ScalarBackend> {
    /// Builds a scalar-backend session sized and word-fitted for `w`.
    ///
    /// # Errors
    /// Propagates the solver's size/word-width contract checks (which
    /// cannot fire for the auto-fitted machine built here).
    pub fn new(w: &WeightMatrix) -> Result<Self> {
        let ppa = Ppa::square(w.n()).with_word_bits(mcp::fit_word_bits(w).clamp(2, 62));
        Self::from_ppa(ppa, w)
    }
}

impl McpSession<PackedBackend> {
    /// Builds a packed-backend session sized and word-fitted for `w`.
    ///
    /// # Errors
    /// Propagates the solver's size/word-width contract checks (which
    /// cannot fire for the auto-fitted machine built here).
    pub fn new_packed(w: &WeightMatrix) -> Result<Self> {
        let ppa =
            Ppa::<PackedBackend>::packed(w.n()).with_word_bits(mcp::fit_word_bits(w).clamp(2, 62));
        Self::from_ppa(ppa, w)
    }
}

impl McpSession<ThreadedBackend> {
    /// Builds a threaded-backend session sized and word-fitted for `w`,
    /// sharding each bit-plane micro-op over a `threads`-wide pool.
    ///
    /// # Errors
    /// Propagates the solver's size/word-width contract checks (which
    /// cannot fire for the auto-fitted machine built here).
    pub fn new_threaded(w: &WeightMatrix, threads: usize) -> Result<Self> {
        let ppa = Ppa::<ThreadedBackend>::threaded(w.n(), threads)
            .with_word_bits(mcp::fit_word_bits(w).clamp(2, 62));
        Self::from_ppa(ppa, w)
    }
}

impl<W: Word> McpSession<PackedBackend<W>> {
    /// [`McpSession::new_packed`] with an explicit machine word `W` (e.g.
    /// `McpSession::<PackedBackend<W256>>::new_packed_wide`).
    ///
    /// # Errors
    /// Propagates the solver's size/word-width contract checks (which
    /// cannot fire for the auto-fitted machine built here).
    pub fn new_packed_wide(w: &WeightMatrix) -> Result<Self> {
        let ppa = Ppa::<PackedBackend<W>>::packed_wide(w.n())
            .with_word_bits(mcp::fit_word_bits(w).clamp(2, 62));
        Self::from_ppa(ppa, w)
    }
}

impl<W: Word> McpSession<ThreadedBackend<W>> {
    /// [`McpSession::new_threaded`] with an explicit machine word `W`.
    ///
    /// # Errors
    /// Propagates the solver's size/word-width contract checks (which
    /// cannot fire for the auto-fitted machine built here).
    pub fn new_threaded_wide(w: &WeightMatrix, threads: usize) -> Result<Self> {
        let ppa = Ppa::<ThreadedBackend<W>>::threaded_wide(w.n(), threads)
            .with_word_bits(mcp::fit_word_bits(w).clamp(2, 62));
        Self::from_ppa(ppa, w)
    }
}

impl<E: Executor> McpSession<E> {
    /// Wraps an existing runtime, preparing the shared planes for `w`.
    ///
    /// The preparation costs five ALU steps on `ppa` (the `ROW`/`COL`
    /// registers and derived masks); the `W` layout is host I/O and free.
    ///
    /// # Errors
    /// [`McpError::SizeMismatch`](crate::McpError::SizeMismatch) if the
    /// machine is not `n x n` for the `n`-vertex graph, or
    /// [`McpError::WordWidthTooSmall`](crate::McpError::WordWidthTooSmall)
    /// if real path costs could saturate into `MAXINT`.
    pub fn from_ppa(mut ppa: Ppa<E>, w: &WeightMatrix) -> Result<Self> {
        let prep = Prepared::build(&mut ppa, w)?;
        Ok(McpSession {
            ppa,
            w: w.clone(),
            prep,
        })
    }

    /// Solves for one destination on the prepared planes.
    ///
    /// Result-identical to
    /// [`mcp::minimum_cost_path`](crate::mcp::minimum_cost_path) on the
    /// same machine; only the per-run step report is smaller because the
    /// shared setup is amortized across the session.
    ///
    /// # Errors
    /// Any solver failure ([`crate::McpError`]).
    pub fn solve(&mut self, d: usize) -> Result<McpOutput> {
        self.solve_inner(d, false)
    }

    /// [`McpSession::solve`] with the host-side invariant checks of
    /// [`mcp::minimum_cost_path_verified`](crate::mcp::minimum_cost_path_verified).
    ///
    /// # Errors
    /// Any solver failure, including
    /// [`McpError::InvariantViolation`](crate::McpError::InvariantViolation).
    pub fn solve_verified(&mut self, d: usize) -> Result<McpOutput> {
        self.solve_inner(d, true)
    }

    fn solve_inner(&mut self, d: usize, verify: bool) -> Result<McpOutput> {
        let before = self.ppa.exec_stats();
        let out = self.prep.solve(&mut self.ppa, &self.w, d, verify);
        self.publish_backend_metrics(&before);
        out
    }

    /// Solves every destination in order, reusing the prepared planes —
    /// the session-native all-pairs driver. Equivalent in outputs to
    /// [`crate::apsp::all_pairs`] on the same runtime.
    ///
    /// # Errors
    /// The first per-destination solver failure.
    pub fn all_pairs(&mut self) -> Result<AllPairs> {
        let n = self.w.n();
        let mut runs = Vec::with_capacity(n);
        for d in 0..n {
            runs.push(self.solve(d)?);
        }
        Ok(AllPairs { runs })
    }

    /// Publishes the backend's execution-stat deltas since `before` as
    /// `backend.*` counters, when a metrics registry is attached.
    fn publish_backend_metrics(&mut self, before: &ExecStats) {
        let delta = self.ppa.exec_stats().since(before);
        if let Some(m) = self.ppa.metrics_mut() {
            m.inc("backend.plan_hits", delta.plan_hits);
            m.inc("backend.plan_misses", delta.plan_misses);
            m.inc("backend.arena_fresh", delta.arena_fresh);
            m.inc("backend.arena_reused", delta.arena_reused);
        }
    }

    /// The graph this session was prepared for.
    pub fn weights(&self) -> &WeightMatrix {
        &self.w
    }

    /// Borrow the underlying runtime (step reports, metrics, stats).
    pub fn ppa(&self) -> &Ppa<E> {
        &self.ppa
    }

    /// Mutably borrow the underlying runtime (attach sinks/metrics,
    /// reset counters).
    pub fn ppa_mut(&mut self) -> &mut Ppa<E> {
        &mut self.ppa
    }

    /// Consumes the session, returning the runtime.
    pub fn into_ppa(self) -> Ppa<E> {
        self.ppa
    }

    /// Cumulative backend execution statistics (plan cache, arena).
    pub fn exec_stats(&self) -> ExecStats {
        self.ppa.exec_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp;
    use crate::mcp::minimum_cost_path;
    use crate::Result;
    use ppa_graph::gen;

    // These tests return `Result` so a failing destination propagates a
    // typed error with `?` instead of panicking context-free; assertion
    // messages carry the seed/destination/lane being compared.

    #[test]
    fn session_solve_matches_one_shot_outputs() -> Result<()> {
        for seed in 0..5 {
            let w = gen::random_digraph(8, 0.35, 12, seed);
            let mut session = McpSession::new(&w)?;
            let mut ppa = Ppa::square(8).with_word_bits(session.ppa().word_bits());
            for d in [0usize, 3, 7] {
                let a = session.solve(d)?;
                let b = minimum_cost_path(&mut ppa, &w, d)?;
                assert_eq!(a.sow, b.sow, "seed {seed} destination {d}");
                assert_eq!(a.ptn, b.ptn, "seed {seed} destination {d}");
                assert_eq!(a.iterations, b.iterations, "seed {seed} destination {d}");
            }
        }
        Ok(())
    }

    #[test]
    fn session_all_pairs_matches_apsp_driver() -> Result<()> {
        let w = gen::random_digraph(7, 0.4, 9, 21);
        let mut session = McpSession::new(&w)?;
        let by_session = session.all_pairs()?;
        let mut ppa = Ppa::square(7).with_word_bits(session.ppa().word_bits());
        let by_driver = apsp::all_pairs(&mut ppa, &w)?;
        assert_eq!(
            by_session.matrix_flat(),
            by_driver.matrix_flat(),
            "session vs driver distance matrices"
        );
        assert_eq!(by_session.total_iterations(), by_driver.total_iterations());
        Ok(())
    }

    #[test]
    fn packed_session_matches_scalar_session() -> Result<()> {
        let w = gen::random_connected(9, 0.3, 14, 5);
        let scalar = McpSession::new(&w)?.all_pairs()?;
        let packed = McpSession::new_packed(&w)?.all_pairs()?;
        assert_eq!(
            scalar.matrix_flat(),
            packed.matrix_flat(),
            "scalar vs packed distance matrices"
        );
        assert_eq!(scalar.total_iterations(), packed.total_iterations());
        Ok(())
    }

    #[test]
    fn packed_session_reuses_plans_and_planes_across_destinations() -> Result<()> {
        let w = gen::random_connected(8, 0.35, 10, 3);
        let ppa = Ppa::<PackedBackend>::packed(8).with_word_bits(16);
        let mut session = McpSession::from_ppa(ppa, &w)?;
        session.solve(0)?;
        let after_first = session.exec_stats();
        assert!(after_first.arena_fresh > 0);
        for d in 1..8 {
            session
                .solve(d)
                .inspect_err(|_| eprintln!("destination {d} failed after a clean first solve"))?;
        }
        let after_all = session.exec_stats();
        // Every mask buffer needed by later destinations was already in
        // the arena after the first solve; nothing new is allocated.
        assert_eq!(
            after_all.arena_fresh, after_first.arena_fresh,
            "later destinations must recycle, not allocate"
        );
        assert!(after_all.plan_hit_rate() > 0.9, "{after_all:?}");
        Ok(())
    }

    #[test]
    fn session_publishes_backend_metrics() -> Result<()> {
        let w = gen::ring(6);
        let mut session = McpSession::new_packed(&w)?;
        session.ppa_mut().enable_metrics();
        session.solve(2)?;
        let m = session.ppa_mut().take_metrics();
        assert!(m.counter("backend.plan_hits") > 0);
        assert!(m.counter("backend.arena_reused") > 0);
        Ok(())
    }

    #[test]
    fn wrong_size_machine_is_rejected() {
        let w = gen::ring(5);
        let ppa = Ppa::square(4);
        assert!(matches!(
            McpSession::from_ppa(ppa, &w),
            Err(crate::McpError::SizeMismatch { .. })
        ));
    }
}
