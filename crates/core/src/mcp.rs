//! The paper's `minimum_cost_path()` — statements 1-21 of Section 3.
//!
//! ```text
//!  1: minimum_cost_path()
//!  2: {
//!  3:   parallel int OLD_SOW;
//!  4:   where (ROW == d){
//!  5:     SOW = W;
//!  6:     PTN = d;
//!  7:   }
//!  8:   do
//!  9:     where (ROW != d) {
//! 10:       SOW = broadcast (SOW, SOUTH, ROW == d) + W;
//! 11:       MIN_SOW = min (SOW, WEST, COL == (n - 1));
//! 12:       PTN = selected_min (COL, WEST, COL == (n - 1), MIN_SOW == SOW);
//! 13:     }
//! 14:     where (ROW == d) {
//! 15:       OLD_SOW = SOW;
//! 16:       SOW = broadcast (MIN_SOW, SOUTH, ROW == COL);
//! 17:       where (SOW != OLD_SOW)
//! 18:         PTN = broadcast (PTN, SOUTH, ROW == COL);
//! 19:     }
//! 20:   while (at least one SOW in row d has changed);
//! 21: }
//! ```
//!
//! The implementation below follows this structure statement by statement
//! (each block is labelled); the only deviations are the two fidelity
//! repairs documented at the crate root (row-`d` selection, `MIN_SOW`
//! initialization). Complexity: initialization `O(1)`, each iteration
//! `O(h)` (two bit-serial bus minima), `max(1, p)` iterations — total
//! `O(p * h)` SIMD steps, independent of `n`.

use crate::error::McpError;
use crate::stats::McpStats;
use crate::Result;
use ppa_graph::{Weight, WeightMatrix, INF};
use ppa_machine::{Direction, Executor, StepReport};
use ppa_ppc::{Parallel, Ppa};

/// Result of one `minimum_cost_path` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McpOutput {
    /// Destination vertex `d`.
    pub dest: usize,
    /// `sow[i]` — cost of a minimum cost path `i -> ... -> d`
    /// ([`INF`] if unreachable, `0` at the destination itself).
    pub sow: Vec<Weight>,
    /// `ptn[i]` — vertex following `i` on one minimum cost path to `d`
    /// (`ptn[d] == d`; `ptn[i] == i` marks "no path").
    pub ptn: Vec<usize>,
    /// Do-while iterations executed (`max(1, p)`).
    pub iterations: usize,
    /// Step accounting for the run.
    pub stats: McpStats,
}

/// The smallest machine word width `h` that can run `minimum_cost_path`
/// on `w` without any real path cost saturating into `MAXINT`.
pub fn fit_word_bits(w: &WeightMatrix) -> u32 {
    w.required_word_bits()
}

/// Runs the paper's algorithm on an existing runtime.
///
/// Requirements checked up front: the machine must be `n x n` for an
/// `n`-vertex graph, and the word width must satisfy
/// `(n - 1) * max_weight < MAXINT` so that no genuine path cost collides
/// with the "infinite" sentinel.
///
/// # Errors
/// [`McpError::SizeMismatch`], [`McpError::WordWidthTooSmall`], or any
/// PPC runtime failure.
pub fn minimum_cost_path<E: Executor>(
    ppa: &mut Ppa<E>,
    w: &WeightMatrix,
    d: usize,
) -> Result<McpOutput> {
    mcp_run(ppa, w, d, false)
}

/// [`minimum_cost_path`] with host-side result verification: cheap
/// invariants a correct execution cannot violate, checked by the
/// controller host with **zero extra SIMD steps** (reads of the register
/// planes it already holds):
///
/// 1. every row-`d` cost is monotonically non-increasing across
///    iterations (each pass takes a `min` whose candidate set includes
///    the old value via `w_ii = 0`);
/// 2. the destination's own cost is zero;
/// 3. the final costs satisfy the Bellman fixpoint
///    `sow[i] == min_j(w_ij + sow[j])` against the input matrix.
///
/// A violation returns [`McpError::InvariantViolation`] — the signal the
/// recovery layer (`crate::recovery`) uses to trigger a runtime self-test.
/// On a healthy machine this function is result- and step-identical to
/// [`minimum_cost_path`].
pub fn minimum_cost_path_verified<E: Executor>(
    ppa: &mut Ppa<E>,
    w: &WeightMatrix,
    d: usize,
) -> Result<McpOutput> {
    mcp_run(ppa, w, d, true)
}

/// The destination-independent register planes of `minimum_cost_path`:
/// everything the do-while body reads that does not depend on `d`, plus
/// the preloaded `W` plane. Building one costs five ALU steps (`ROW`,
/// `COL`, the `n - 1` immediate and the two derived masks); the `W` load
/// itself is host I/O, not a SIMD step. The struct holds plain register
/// planes — no machine borrow — so one build can serve any number of
/// destination solves on the same runtime. The batched consumers are
/// [`crate::apsp::all_pairs`] and [`crate::session::McpSession`]; the
/// one-shot entry points below simply build and solve in one go.
#[derive(Debug)]
pub(crate) struct Prepared {
    n: usize,
    maxint: i64,
    row: Parallel<i64>,
    col: Parallel<i64>,
    diag: Parallel<bool>,
    last_col: Parallel<bool>,
    w_plane: Parallel<i64>,
}

/// The four destination-dependent masks (4 ALU steps per destination).
struct DestMasks {
    d_imm: Parallel<i64>,
    row_is_d: Parallel<bool>,
    row_ne_d: Parallel<bool>,
    col_is_d: Parallel<bool>,
}

impl Prepared {
    /// Checks the size/word-width contract and builds the shared planes
    /// under the caller's current span and phase.
    pub(crate) fn build<E: Executor>(ppa: &mut Ppa<E>, w: &WeightMatrix) -> Result<Self> {
        let n = w.n();
        let dim = ppa.dim();
        if dim.rows != n || dim.cols != n {
            return Err(McpError::SizeMismatch {
                n,
                rows: dim.rows,
                cols: dim.cols,
            });
        }
        let required = fit_word_bits(w);
        if ppa.word_bits() < required {
            return Err(McpError::WordWidthTooSmall {
                required,
                actual: ppa.word_bits(),
            });
        }
        let maxint = ppa.maxint();

        // --- plane setup: the hardwired registers and the input load ------
        let row = ppa.row_index();
        let col = ppa.col_index();
        let nm1_imm = ppa.constant(n as i64 - 1);
        let diag = ppa.eq(&row, &col)?; // ROW == COL
        let last_col = ppa.eq(&col, &nm1_imm)?; // COL == n - 1
                                                // `parallel int W` arrives preloaded in each PE's memory (host I/O,
                                                // not a SIMD step). The diagonal is loaded as 0 — the dynamic-program
                                                // convention the paper's statement 16 silently relies on: with
                                                // `w_ii = 0` the candidate `j = i` of `min_j(w_ij + SOW_jd)` is the
                                                // *old* `SOW_id`, which is how the pure overwrite of statement 16
                                                // realizes the prose's "minimum between its old value and the new
                                                // sums" (fidelity note 2 in DESIGN.md); it also pins `SOW_dd` to 0 so
                                                // one-edge paths keep their `j = d` witness in later iterations.
        let mut w_vec = w.try_saturated_vec(maxint)?;
        for i in 0..n {
            w_vec[i * n + i] = 0;
        }
        let w_plane: Parallel<i64> = Parallel::from_vec(dim, w_vec);

        Ok(Prepared {
            n,
            maxint,
            row,
            col,
            diag,
            last_col,
            w_plane,
        })
    }

    /// Builds the destination masks for `d`.
    fn dest_masks<E: Executor>(&self, ppa: &mut Ppa<E>, d: usize) -> Result<DestMasks> {
        let n = self.n;
        if d >= n {
            return Err(McpError::DestinationOutOfRange { d, n });
        }
        let d_imm = ppa.constant(d as i64);
        let row_is_d = ppa.eq(&self.row, &d_imm)?;
        let row_ne_d = ppa.not(&row_is_d)?;
        let col_is_d = ppa.eq(&self.col, &d_imm)?;
        Ok(DestMasks {
            d_imm,
            row_is_d,
            row_ne_d,
            col_is_d,
        })
    }

    /// One complete solve against the prepared planes. Step accounting
    /// starts here, so the shared prepare cost is amortized out of every
    /// per-destination report; only the four destination masks are
    /// rebuilt per call.
    pub(crate) fn solve<E: Executor>(
        &self,
        ppa: &mut Ppa<E>,
        w: &WeightMatrix,
        d: usize,
        verify: bool,
    ) -> Result<McpOutput> {
        let start = ppa.steps();
        let observed = ppa.observing();
        if observed {
            ppa.enter_span("mcp");
        }
        ppa.set_phase(Some("setup"));
        let masks = self.dest_masks(ppa, d)?;
        self.run(ppa, &masks, w, d, start, observed, verify)
    }

    /// Statements 4-20 plus readout and (optionally) verification,
    /// assuming the caller has already entered the `mcp` span (when
    /// observed) and set the `setup` phase.
    #[allow(clippy::too_many_arguments)]
    fn run<E: Executor>(
        &self,
        ppa: &mut Ppa<E>,
        masks: &DestMasks,
        w: &WeightMatrix,
        d: usize,
        start: StepReport,
        observed: bool,
        verify: bool,
    ) -> Result<McpOutput> {
        let n = self.n;
        let maxint = self.maxint;
        let Prepared {
            diag,
            last_col,
            w_plane,
            ..
        } = self;
        let DestMasks {
            d_imm,
            row_is_d,
            row_ne_d,
            col_is_d,
        } = masks;
        let col = &self.col;

        // Parallel variable declarations; PPC leaves them uninitialized, the
        // simulator pins them to MAXINT (fidelity note 2 at the crate root).
        let mut sow = ppa.constant(maxint);
        let mut min_sow = ppa.constant(maxint);
        let mut ptn = ppa.constant(0i64);
        let mut old_sow = ppa.constant(maxint); // statement 3

        // --- Step 1: statements 4-7 -------------------------------------------
        ppa.set_phase(Some("step 1 (stmts 4-7)"));
        // Statement 5 reads `SOW = W`, but the prose demands
        // `SOW[d][i] = w_id` — the weight of the edge *from i to d*, which in
        // the standard layout lives in W's d-th *column*, not its d-th row
        // (fidelity note 3 in DESIGN.md). The intended initialization is
        // realized with two O(1) bus steps: spread column d across each row,
        // then fold the diagonal down into row d.
        let in_weights = ppa.broadcast(w_plane, Direction::East, col_is_d)?; // [i][*] = w_id
        let in_weights_t = ppa.broadcast(&in_weights, Direction::South, diag)?; // [*][i] = w_id
        ppa.where_(row_is_d, |p| -> ppa_ppc::Result<()> {
            p.assign(&mut sow, &in_weights_t)?; // 5 (intended): SOW[d][i] = w_id
            p.assign(&mut ptn, d_imm)?; // 6: PTN = d
                                        // MIN_SOW is uninitialized in the paper; statement 16 reads its
                                        // (d,d) element every iteration, so it must start at SOW_dd = 0
                                        // for the destination column to stay pinned (fidelity note 2).
            p.assign(&mut min_sow, &in_weights_t)?;
            Ok(())
        })??;

        // The counters are monotonic within the run, so the subtraction cannot
        // fail; `checked_since` keeps the stats path panic-free regardless.
        let init_report = ppa.steps().checked_since(&start).unwrap_or_default();

        // --- Step 2: the do-while loop, statements 8-20 ------------------------
        let mut per_iteration: Vec<StepReport> = Vec::new();
        let mut iterations = 0usize;
        // Invariant 1 state: the row-d cost snapshot of the previous pass
        // (host-side copy; never touches the array).
        let mut prev_row_d: Option<Vec<i64>> =
            verify.then(|| (0..n).map(|i| *sow.at(d, i)).collect());
        loop {
            let iter_start = ppa.steps();
            if observed {
                ppa.enter_span(&format!("iteration[{iterations}]"));
            }
            iterations += 1;

            // ---- statements 9-13, under where (ROW != d) ----
            // 10: SOW = broadcast(SOW, SOUTH, ROW == d) + W
            //     (the bus transaction is global; the mask gates the write)
            ppa.set_phase(Some("stmt 10: broadcast+add"));
            let bsow = ppa.broadcast(&sow, Direction::South, row_is_d)?;
            let sum = ppa.sat_add(&bsow, w_plane)?;
            ppa.where_(row_ne_d, |p| p.assign(&mut sow, &sum))??;

            // 11: MIN_SOW = min(SOW, WEST, COL == n-1)
            ppa.set_phase(Some("stmt 11: min"));
            let rowmin = ppa.min(&sow, Direction::West, last_col)?;
            ppa.where_(row_ne_d, |p| p.assign(&mut min_sow, &rowmin))??;

            // 12: PTN = selected_min(COL, WEST, COL == n-1, MIN_SOW == SOW)
            //     (+ fidelity repair: row d trivially selected so its bus
            //      cluster never floats; its result is masked away below)
            ppa.set_phase(Some("stmt 12: selected_min"));
            let is_argmin = ppa.eq(&min_sow, &sow)?;
            let sel = ppa.or(&is_argmin, row_is_d)?;
            let argmin_col = ppa.selected_min(col, Direction::West, last_col, &sel)?;
            ppa.where_(row_ne_d, |p| p.assign(&mut ptn, &argmin_col))??;

            // ---- statements 14-18, under where (ROW == d) ----
            ppa.set_phase(Some("stmts 14-18: fold into row d"));
            let bc_min = ppa.broadcast(&min_sow, Direction::South, diag)?; // 16 (read)
            let bc_ptn = ppa.broadcast(&ptn, Direction::South, diag)?; // 18 (read)
            let changed = ppa.where_(row_is_d, |p| -> ppa_ppc::Result<Parallel<bool>> {
                p.assign(&mut old_sow, &sow)?; // 15
                p.assign(&mut sow, &bc_min)?; // 16 (write)
                let changed = p.ne(&sow, &old_sow)?; // 17 condition
                p.where_(&changed, |q| q.assign(&mut ptn, &bc_ptn))??; // 17-18
                Ok(changed)
            })??;

            per_iteration.push(ppa.steps().checked_since(&iter_start).unwrap_or_default());

            // ---- invariant 1: row-d costs never increase ----
            if let Some(prev) = prev_row_d.as_mut() {
                let now: Vec<i64> = (0..n).map(|i| *sow.at(d, i)).collect();
                if now.iter().zip(prev.iter()).any(|(new, old)| new > old) {
                    ppa.set_phase(None);
                    if observed {
                        ppa.exit_span(); // iteration[i]
                        ppa.exit_span(); // mcp
                    }
                    return Err(McpError::InvariantViolation {
                        invariant: "a row-d cost increased across an iteration",
                    });
                }
                *prev = now;
            }

            // ---- statement 20: while at least one SOW in row d has changed ----
            ppa.set_phase(Some("stmt 20: loop test"));
            let changed_in_row_d = ppa.and(&changed, row_is_d)?;
            let keep_going = ppa.any(&changed_in_row_d)?;
            if observed {
                ppa.exit_span(); // iteration[i] (includes the loop test)
            }
            if !keep_going {
                break;
            }
            if iterations > n {
                return Err(McpError::NoConvergence { rounds: iterations });
            }
        }

        ppa.set_phase(None);
        if observed {
            ppa.exit_span(); // mcp
        }
        if let Some(m) = ppa.metrics_mut() {
            for r in &per_iteration {
                m.observe("mcp.steps_per_iteration", r.total());
            }
            m.inc("mcp.iterations", iterations as u64);
        }

        // --- read out row d -----------------------------------------------------
        let mut out_sow: Vec<Weight> = Vec::with_capacity(n);
        let mut out_ptn: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            let cost = *sow.at(d, i);
            if i == d {
                out_sow.push(0);
                out_ptn.push(d);
            } else if cost >= maxint {
                out_sow.push(INF);
                out_ptn.push(i);
            } else {
                out_sow.push(cost);
                out_ptn.push(*ptn.at(d, i) as usize);
            }
        }

        if verify {
            // ---- invariant 2: the destination's own cost is zero ----
            if *sow.at(d, d) != 0 {
                return Err(McpError::InvariantViolation {
                    invariant: "destination cost must be zero",
                });
            }
            // ---- invariant 3: the Bellman fixpoint against the input ----
            // `sow[i] = min_j(w_ij + sow[j])` for i != d, in host arithmetic
            // with INF absorbing. The word-width guard above rules out
            // saturation, so a correct run matches exactly.
            for i in 0..n {
                if i == d {
                    continue;
                }
                let mut best = INF;
                for j in 0..n {
                    let wij = w.get(i, j);
                    if j == i || wij == INF || out_sow[j] == INF {
                        continue;
                    }
                    best = best.min(wij + out_sow[j]);
                }
                if out_sow[i] != best {
                    return Err(McpError::InvariantViolation {
                        invariant: "row-d costs must satisfy the Bellman fixpoint",
                    });
                }
            }
        }

        let total = ppa.steps().checked_since(&start).unwrap_or_default();
        Ok(McpOutput {
            dest: d,
            sow: out_sow,
            ptn: out_ptn,
            iterations,
            stats: McpStats {
                init: init_report,
                per_iteration,
                total,
            },
        })
    }
}

fn mcp_run<E: Executor>(
    ppa: &mut Ppa<E>,
    w: &WeightMatrix,
    d: usize,
    verify: bool,
) -> Result<McpOutput> {
    // Keep the historical guard order of the one-shot entry point: size,
    // destination range, word width — all before any observation starts.
    let n = w.n();
    let dim = ppa.dim();
    if dim.rows != n || dim.cols != n {
        return Err(McpError::SizeMismatch {
            n,
            rows: dim.rows,
            cols: dim.cols,
        });
    }
    if d >= n {
        return Err(McpError::DestinationOutOfRange { d, n });
    }
    let required = fit_word_bits(w);
    if ppa.word_bits() < required {
        return Err(McpError::WordWidthTooSmall {
            required,
            actual: ppa.word_bits(),
        });
    }

    let start = ppa.steps();
    // When a sink or metrics registry is attached, the run is wrapped in a
    // `mcp` span with one `iteration[i]` child per do-while pass; the
    // `set_phase` labels below become the statement-level frames inside.
    let observed = ppa.observing();
    if observed {
        ppa.enter_span("mcp");
    }
    ppa.set_phase(Some("setup"));
    let prep = Prepared::build(ppa, w)?;
    let masks = prep.dest_masks(ppa, d)?;
    prep.run(ppa, &masks, w, d, start, observed, verify)
}

/// Convenience wrapper: builds a machine of the right size and word width
/// for `w` and runs [`minimum_cost_path`].
pub fn minimum_cost_path_auto(w: &WeightMatrix, d: usize) -> Result<McpOutput> {
    let mut ppa = Ppa::square(w.n()).with_word_bits(fit_word_bits(w).clamp(2, 62));
    minimum_cost_path(&mut ppa, w, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference::bellman_ford_to_dest;
    use ppa_graph::validate::{is_valid_solution, validate_solution};

    #[test]
    fn three_vertex_chain() {
        let w = WeightMatrix::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 5)]);
        let out = minimum_cost_path_auto(&w, 2).unwrap();
        assert_eq!(out.sow, vec![2, 1, 0]);
        assert_eq!(out.ptn, vec![1, 2, 2]);
    }

    #[test]
    fn unreachable_vertices_report_inf() {
        let w = WeightMatrix::from_edges(4, &[(0, 1, 3)]);
        let out = minimum_cost_path_auto(&w, 1).unwrap();
        assert_eq!(out.sow[0], 3);
        assert_eq!(out.sow[2], INF);
        assert_eq!(out.sow[3], INF);
        assert_eq!(out.ptn[2], 2);
    }

    #[test]
    fn destination_conventions() {
        let w = gen::ring(5);
        let out = minimum_cost_path_auto(&w, 3).unwrap();
        assert_eq!(out.sow[3], 0);
        assert_eq!(out.ptn[3], 3);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..15 {
            let w = gen::random_digraph(10, 0.3, 20, seed);
            let d = (seed as usize * 3) % 10;
            let out = minimum_cost_path_auto(&w, d).unwrap();
            assert!(
                is_valid_solution(&w, d, &out.sow, &out.ptn),
                "seed {seed}: {:?}",
                validate_solution(&w, d, &out.sow, &out.ptn)
            );
        }
    }

    #[test]
    fn matches_oracle_on_every_family() {
        for f in gen::Family::ALL {
            let w = f.build(12, 15, 77);
            let out = minimum_cost_path_auto(&w, 5).unwrap();
            assert!(
                is_valid_solution(&w, 5, &out.sow, &out.ptn),
                "family {}: {:?}",
                f.label(),
                validate_solution(&w, 5, &out.sow, &out.ptn)
            );
        }
    }

    #[test]
    fn iteration_count_tracks_path_length() {
        // Ring: the longest MCP to vertex 0 has n-1 hops.
        let w = gen::ring(8);
        let out = minimum_cost_path_auto(&w, 0).unwrap();
        let oracle = bellman_ford_to_dest(&w, 0);
        // do-while runs improving rounds + 1 detection round.
        assert_eq!(out.iterations, oracle.rounds + 1);
        assert_eq!(out.iterations, 7);
        // Star: one-edge paths only; a single (no-change) iteration.
        let w = gen::star(8, 2, 5, 1);
        let out = minimum_cost_path_auto(&w, 2).unwrap();
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn per_iteration_step_cost_is_uniform_and_linear_in_h() {
        let w = gen::ring(6);
        let mut costs = Vec::new();
        for h in [8u32, 16, 32] {
            let mut ppa = Ppa::square(6).with_word_bits(h);
            let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
            assert!(out.stats.iterations_uniform());
            costs.push(out.stats.steps_per_iteration());
        }
        // Doubling h should roughly double the per-iteration cost
        // (2 bit-serial scans of 4 steps/bit dominate).
        assert!(costs[1] > costs[0] * 1.6, "{costs:?}");
        assert!(costs[2] > costs[1] * 1.6, "{costs:?}");
    }

    #[test]
    fn per_iteration_cost_is_independent_of_n() {
        let mut baseline = None;
        for n in [4usize, 8, 16] {
            let w = gen::padded_path(n, 2);
            let mut ppa = Ppa::square(n).with_word_bits(10);
            let out = minimum_cost_path(&mut ppa, &w, 2).unwrap();
            let per = out.stats.per_iteration[0].total();
            match baseline {
                None => baseline = Some(per),
                Some(b) => assert_eq!(per, b, "n={n}"),
            }
        }
    }

    #[test]
    fn word_width_guard_fires() {
        let w = WeightMatrix::from_edges(4, &[(0, 1, 100), (1, 2, 100), (2, 3, 100)]);
        let mut ppa = Ppa::square(4).with_word_bits(8); // 300 > 255
        assert!(matches!(
            minimum_cost_path(&mut ppa, &w, 3),
            Err(McpError::WordWidthTooSmall { .. })
        ));
    }

    #[test]
    fn size_guard_fires() {
        let w = gen::ring(5);
        let mut ppa = Ppa::square(4);
        assert!(matches!(
            minimum_cost_path(&mut ppa, &w, 0),
            Err(McpError::SizeMismatch { n: 5, .. })
        ));
    }

    #[test]
    fn single_vertex_graph() {
        let w = WeightMatrix::new(1);
        let out = minimum_cost_path_auto(&w, 0).unwrap();
        assert_eq!(out.sow, vec![0]);
        assert_eq!(out.ptn, vec![0]);
    }

    #[test]
    fn two_vertex_graphs() {
        let w = WeightMatrix::from_edges(2, &[(0, 1, 4)]);
        let out = minimum_cost_path_auto(&w, 1).unwrap();
        assert_eq!(out.sow, vec![4, 0]);
        let out = minimum_cost_path_auto(&w, 0).unwrap();
        assert_eq!(out.sow, vec![0, INF]);
    }

    #[test]
    fn equal_cost_ties_yield_some_optimal_path() {
        // Two cost-2 routes 0 -> 3: direct edge and via 1.
        let w = WeightMatrix::from_edges(4, &[(0, 3, 2), (0, 1, 1), (1, 3, 1), (2, 3, 9)]);
        let out = minimum_cost_path_auto(&w, 3).unwrap();
        assert!(is_valid_solution(&w, 3, &out.sow, &out.ptn));
        assert_eq!(out.sow[0], 2);
    }

    #[test]
    fn observed_run_yields_balanced_spans_and_reconciled_metrics() {
        let w = gen::ring(5);
        let mut ppa = Ppa::square(5).with_word_bits(8);
        let sink = ppa_obs::MemorySink::new();
        ppa.install_sink(sink.clone());
        ppa.enable_metrics();
        let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
        let _ = ppa.take_sink();
        let m = ppa.take_metrics();

        assert!(sink.balanced());
        assert_eq!(sink.total_steps(), out.stats.total.total());
        // Every step is attributed somewhere under the `mcp` span.
        let totals = sink.span_totals();
        assert!(!totals.is_empty());
        assert!(
            totals.iter().all(|(path, _)| path.starts_with("mcp")),
            "{totals:?}"
        );
        // The bit-serial scans surface as `min`/`selected_min > bit[j]`.
        assert!(
            totals
                .iter()
                .any(|(p, _)| p.contains("selected_min > bit[")),
            "{totals:?}"
        );

        assert_eq!(m.counter("steps.total"), out.stats.total.total());
        assert_eq!(m.counter("mcp.iterations"), out.iterations as u64);
        let h = m.histogram("mcp.steps_per_iteration").unwrap();
        assert_eq!(h.count, out.iterations as u64);
        let per_iter_sum: u64 = out.stats.per_iteration.iter().map(|r| r.total()).sum();
        assert_eq!(h.sum, per_iter_sum);
    }

    #[test]
    fn verified_run_is_bit_identical_on_a_healthy_machine() {
        for seed in 0..5 {
            let w = gen::random_digraph(8, 0.4, 12, seed);
            let mut plain = Ppa::square(8).with_word_bits(12);
            let mut checked = Ppa::square(8).with_word_bits(12);
            let a = minimum_cost_path(&mut plain, &w, 1).unwrap();
            let b = minimum_cost_path_verified(&mut checked, &w, 1).unwrap();
            assert_eq!(a, b, "seed {seed}: verification must be free");
        }
    }

    #[test]
    fn empty_fault_map_is_bit_identical_to_the_pre_fault_path() {
        // Attaching an *empty* FaultMap must not perturb the solver at
        // all: same SOW/PTN, same iteration count, same step accounting
        // down to the per-phase breakdown.
        for seed in 0..5 {
            let w = gen::random_digraph(7, 0.45, 15, seed);
            let d = seed as usize % 7;
            let mut plain = Ppa::square(7).with_word_bits(12);
            let mut faulted = Ppa::square(7).with_word_bits(12);
            faulted
                .machine_mut()
                .attach_faults(ppa_machine::FaultMap::new());
            let a = minimum_cost_path(&mut plain, &w, d).unwrap();
            let b = minimum_cost_path(&mut faulted, &w, d).unwrap();
            assert_eq!(a, b, "seed {seed}: an empty fault map must be free");
            assert_eq!(plain.steps(), faulted.steps(), "seed {seed}");
        }
    }

    #[test]
    fn reusing_a_machine_accumulates_but_reports_per_run() {
        let w = gen::ring(5);
        let mut ppa = Ppa::square(5).with_word_bits(8);
        let a = minimum_cost_path(&mut ppa, &w, 0).unwrap();
        let b = minimum_cost_path(&mut ppa, &w, 0).unwrap();
        assert_eq!(a.stats.total, b.stats.total);
        assert_eq!(a.sow, b.sow);
    }

    #[test]
    fn out_of_range_destination_is_a_typed_error() {
        let w = gen::ring(4);
        let mut ppa = Ppa::square(4).with_word_bits(8);
        // Both the one-shot entry point and the session path reject it.
        assert!(matches!(
            minimum_cost_path(&mut ppa, &w, 4),
            Err(McpError::DestinationOutOfRange { d: 4, n: 4 })
        ));
        let mut session = crate::McpSession::new(&w).unwrap();
        assert!(matches!(
            session.solve(9),
            Err(McpError::DestinationOutOfRange { d: 9, n: 4 })
        ));
        // The session stays usable after the rejection.
        assert!(session.solve(1).is_ok());
    }

    #[test]
    fn weight_boundary_at_machine_maxint() {
        // On an h-bit machine MAXINT = 2^h - 1 is the "infinite" sentinel.
        // A weight of MAXINT - 1 (with n = 2, so the worst path cost
        // equals the edge weight) is the largest solvable input...
        let h = 6u32;
        let maxint = (1i64 << h) - 1;
        let fits = WeightMatrix::from_edges(2, &[(0, 1, maxint - 1)]);
        let mut ppa = Ppa::square(2).with_word_bits(h);
        let out = minimum_cost_path(&mut ppa, &fits, 1).unwrap();
        assert_eq!(out.sow, vec![maxint - 1, 0]);
        // ...while a weight equal to MAXINT would collide with the
        // sentinel and is rejected with a typed error, not a panic or a
        // silent wraparound.
        let collides = WeightMatrix::from_edges(2, &[(0, 1, maxint)]);
        let mut ppa = Ppa::square(2).with_word_bits(h);
        assert!(matches!(
            minimum_cost_path(&mut ppa, &collides, 1),
            Err(McpError::WordWidthTooSmall { required, actual })
                if required == h + 1 && actual == h
        ));
    }

    #[test]
    fn solver_under_step_budget_fails_typed_with_counters_intact() {
        let w = gen::ring(5);
        let mut ppa = Ppa::square(5).with_word_bits(8);
        ppa.limit_steps(20);
        let err = minimum_cost_path(&mut ppa, &w, 0).unwrap_err();
        assert!(err.is_step_budget_exhausted(), "{err}");
        assert_eq!(ppa.steps().total(), 20, "stopped exactly at the budget");
        ppa.clear_step_limit();
        let out = minimum_cost_path(&mut ppa, &w, 0).unwrap();
        assert!(out.iterations > 0, "machine recovers once the limit lifts");
    }
}
