//! # ppa-mcp — the IPPS'98 Minimum Cost Path algorithm on the PPA
//!
//! This crate is the paper's primary contribution: the parallel dynamic
//! program of Section 3 that computes, on an `n x n` Polymorphic Processor
//! Array, the minimum cost path from **every** vertex of a weighted digraph
//! to one destination vertex `d`.
//!
//! The data layout matches the paper exactly: PE `(i, j)` holds `w_ij`, the
//! weight of edge `i -> j` (`MAXINT` if absent). The two parallel outputs
//! are `SOW` (*Sum Of Weights*) and `PTN` (*Pointer To Next*); only their
//! `d`-th rows are meaningful: `SOW[d][i]` is the cost of a minimum cost
//! path from `i` to `d` and `PTN[d][i]` the vertex following `i` on one
//! such path.
//!
//! * [`mcp::minimum_cost_path`] — statements 1-21 of the paper, including
//!   the `O(h)` bit-serial `min`/`selected_min` bus primitives, with full
//!   SIMD step accounting (total cost `O(p * h)` for maximum path
//!   hop-length `p` and word width `h`);
//! * [`path`] — reconstruction of explicit vertex sequences from `PTN`;
//! * [`apsp`] — all-pairs driver (one MCP run per destination) and the
//!   single-source variant via graph reversal;
//! * [`session`] — reusable solver sessions: prepare the
//!   destination-independent planes once, then solve many destinations on
//!   the same machine/backend (the batched form of the all-pairs driver);
//! * [`closure`] — the boolean specialization: transitive-closure
//!   reachability on the PPA (the direction of the PARBS work the paper
//!   cites as \[6\]);
//! * [`recovery`] — fault-tolerant execution: host-side result
//!   verification, runtime BIST on corruption, retry for transient
//!   glitches, and graceful degradation onto the healthy sub-array;
//! * [`redundancy`] — lane-replicated redundant execution: DMR/TMR
//!   voting on disjoint lane bands of one wide array, with targeted
//!   BIST localization of the disagreeing band (no sequential
//!   reference on the hot path);
//! * [`stats`] — per-phase step breakdowns used by the experiment harness.
//!
//! ## Fidelity notes (also in DESIGN.md)
//!
//! 1. **Row-`d` selection repair.** The paper issues
//!    `selected_min(COL, WEST, COL==n-1, MIN_SOW==SOW)` under
//!    `where (ROW != d)`, but SIMD masking gates only register *writes* —
//!    the bus transaction happens on every line, including row `d`, where
//!    `MIN_SOW == SOW` can select nothing and leave that row's bus floating.
//!    This implementation adds `ROW == d` to the selection (one extra ALU
//!    step; the row-`d` result is masked away exactly as in the paper).
//! 2. **`MIN_SOW` initialization.** PPC leaves it uninitialized; the
//!    simulator initializes it to `MAXINT`, and because weight matrices
//!    carry no self-loops, `SOW[d][d]` then stays `MAXINT` throughout and
//!    never triggers a spurious "changed" iteration. The public output
//!    reports `sow[d] = 0`, `ptn[d] = d` (the trivial empty path).
//!
//! ## Quickstart
//!
//! ```
//! use ppa_graph::WeightMatrix;
//! use ppa_mcp::mcp;
//! use ppa_ppc::Ppa;
//!
//! // 0 --1--> 1 --1--> 2, plus a costly shortcut 0 --5--> 2.
//! let w = WeightMatrix::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 5)]);
//! let mut ppa = Ppa::square(3).with_word_bits(8);
//! let out = mcp::minimum_cost_path(&mut ppa, &w, 2).unwrap();
//! assert_eq!(out.sow, vec![2, 1, 0]);       // best 0 -> 2 goes via 1
//! assert_eq!(out.ptn[0], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over multiple parallel arrays are the dominant idiom in
// this numeric code; the iterator rewrites clippy suggests obscure the
// row/column index math that mirrors the paper's notation.
#![allow(clippy::needless_range_loop)]

pub mod apsp;
pub mod batch;
pub mod closure;
pub mod error;
pub mod kernels;
pub mod mcp;
pub mod path;
pub mod recovery;
pub mod redundancy;
pub mod session;
pub mod stats;
pub mod variants;
pub mod widest;

pub use batch::{BatchSession, LaneLimit};
pub use error::McpError;
pub use mcp::{minimum_cost_path, minimum_cost_path_verified, McpOutput};
pub use recovery::{solve_with_recovery, RecoveredMcp, RecoveryPolicy, RecoveryStats};
pub use redundancy::{Redundancy, RedundantWave, VoteReport, VotedLane};
pub use session::McpSession;
pub use stats::McpStats;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, McpError>;
