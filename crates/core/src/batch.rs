//! Lane-batched solving: many independent MCP problems in one micro-op
//! stream.
//!
//! The bit-plane representation is wider than one problem needs: one
//! machine word of the packed backend (64 or 256 PEs, depending on the
//! [`Word`] parameter) holds PEs of *one* solve. A
//! [`BatchSession`] lifts that assumption by packing `L` independent
//! `n x n` problems side by side into one `n x (n * L)` machine (lane
//! `l` owns columns `l*n .. (l+1)*n`, see
//! [`LaneLayout`](ppa_machine::LaneLayout)) and retiring all of them in
//! a single replay of the paper's statement sequence. One batch solves
//! a wavefront of `L` destinations of one graph, or up to
//! [`MAX_LANES`] independent same-size graphs — bus-plan lookups, arena
//! traffic, and
//! rendezvous overhead are paid once per *batch* instead of once per
//! *problem*.
//!
//! ## Why the lanes cannot see each other
//!
//! Column buses never cross a lane boundary (each column belongs to
//! exactly one lane), so every `SOUTH` transaction is lane-pure. The
//! `WEST` transactions (`min`, `selected_min`) put one Open head at
//! each lane's last column: a cluster runs from its head up to the
//! *next* head in movement direction, which is the neighbouring lane's
//! head — so row buses partition exactly at lane boundaries. The only
//! statement that would leak is the solo initializer's `EAST` broadcast
//! of `W` from column `d` (one head per *row*, not per lane-row
//! segment); the batch initializer instead preloads the transposed
//! weight plane (host I/O, exactly as legitimate as preloading `W`) and
//! uses two `SOUTH` broadcasts of identical step cost.
//!
//! ## Step accounting
//!
//! Every phase issues the same number of controller steps per
//! [`Op`](ppa_machine::Op) class as the solo solver: 5 ALU prepare, 4
//! ALU destination masks, a 4-constant + 2-broadcast + 4-ALU
//! initializer, and the identical do-while body. A lane that converges
//! after `k` passes therefore reports the *same* [`McpStats`] as a solo
//! run of its problem — the differential harness asserts this
//! bit-for-bit at every lane count.
//!
//! ## Per-lane budgets, cancellation, and fault isolation
//!
//! [`BatchSession::solve_with`] accepts one [`LaneLimit`] per lane.
//! Budgets are accounted against the lane's *solo-equivalent* step
//! ledger (shared steps count once per lane, exactly what a fresh
//! machine running only that lane would have spent, prepare included),
//! so a lane fails with the same typed error at the same logical point
//! as its solo twin. A cancelled or exhausted lane simply stops being
//! read — its PEs keep riding along in the SIMD stream, which cannot
//! perturb batchmates because no instruction carries data across lane
//! boundaries.

use crate::apsp::AllPairs;
use crate::error::McpError;
use crate::mcp::{self, McpOutput};
use crate::stats::McpStats;
use crate::Result;
use ppa_graph::{Weight, WeightMatrix, INF};
use ppa_machine::{
    CancelToken, Direction, ExecStats, Executor, LaneLayout, Machine, MachineError, PackedBackend,
    ScalarBackend, StepReport, ThreadedBackend, Word,
};
use ppa_ppc::{Parallel, Ppa, PpcError};

/// Steps a solo session spends in `Prepared::build` (the `ROW`/`COL`
/// registers, the `n - 1` immediate and the two derived masks). The
/// batch prepare costs the same 5 steps once for all lanes; per-lane
/// budget ledgers charge it to every lane so budgets mean the same
/// thing they mean on a fresh solo machine.
const PREPARE_STEPS: u64 = 5;

/// The most lanes a batch can hold. A lane is a column band, not a word
/// bit, so the cap is independent of the backend's word width; 64 bounds
/// the composite machine at a size the admission layer is sized for.
pub const MAX_LANES: usize = 64;

/// Per-lane resource limits for [`BatchSession::solve_with`].
#[derive(Debug, Clone, Default)]
pub struct LaneLimit {
    /// Solo-equivalent step budget: the lane fails with
    /// [`MachineError::StepBudgetExhausted`] exactly when a fresh solo
    /// machine with `limit_steps(budget)` would (prepare included).
    pub step_budget: Option<u64>,
    /// Cooperative cancellation for this lane only; observed at
    /// iteration boundaries. Batchmates are unaffected.
    pub cancel: Option<CancelToken>,
}

impl LaneLimit {
    /// No budget, no cancellation.
    pub fn unlimited() -> Self {
        LaneLimit::default()
    }
}

/// The lane-batched analogue of [`Prepared`](crate::mcp): everything
/// the do-while body reads that does not depend on the destination
/// wavefront. `wt_plane` is the per-lane *transposed* weight layout
/// used by the lane-safe initializer.
#[derive(Debug)]
struct BatchPrepared {
    n: usize,
    maxint: i64,
    row: Parallel<i64>,
    lane_col: Parallel<i64>,
    diag: Parallel<bool>,
    last_col: Parallel<bool>,
    w_plane: Parallel<i64>,
    wt_plane: Parallel<i64>,
}

/// A lane-batched solver session: one `n x (n * L)` runtime prepared
/// for `L` same-size graphs, solving one destination per lane per call.
#[derive(Debug)]
pub struct BatchSession<E: Executor = ScalarBackend> {
    ppa: Ppa<E>,
    layout: LaneLayout,
    graphs: Vec<WeightMatrix>,
    prep: BatchPrepared,
}

/// `lanes` copies of one graph — the wavefront-of-destinations use of
/// [`BatchSession`] (phase 1: k destinations of the same problem).
pub fn replicate(w: &WeightMatrix, lanes: usize) -> Vec<WeightMatrix> {
    vec![w.clone(); lanes]
}

fn batch_word_bits(graphs: &[WeightMatrix]) -> u32 {
    graphs
        .iter()
        .map(mcp::fit_word_bits)
        .max()
        .unwrap_or(2)
        .clamp(2, 62)
}

fn check_graphs(graphs: &[WeightMatrix]) -> Result<usize> {
    if graphs.is_empty() {
        return Err(McpError::BatchShape {
            detail: "a batch needs at least one lane".into(),
        });
    }
    if graphs.len() > MAX_LANES {
        return Err(McpError::BatchShape {
            detail: format!("{} lanes exceed the {MAX_LANES}-lane word", graphs.len()),
        });
    }
    let n = graphs[0].n();
    if let Some((l, g)) = graphs.iter().enumerate().find(|(_, g)| g.n() != n) {
        return Err(McpError::BatchShape {
            detail: format!(
                "lane 0 has {n} vertices but lane {l} has {} — all lanes must be the same size",
                g.n()
            ),
        });
    }
    Ok(n)
}

impl BatchSession<ScalarBackend> {
    /// Builds a scalar-backend batch sized and word-fitted for `graphs`.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] for an empty, oversized, or mixed-size
    /// batch.
    pub fn new(graphs: &[WeightMatrix]) -> Result<Self> {
        let n = check_graphs(graphs)?;
        let ppa = Ppa::from_machine(Machine::new(n, n * graphs.len()))
            .with_word_bits(batch_word_bits(graphs));
        Self::from_ppa(ppa, graphs)
    }
}

impl BatchSession<PackedBackend> {
    /// Builds a packed-backend batch sized and word-fitted for `graphs`.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] for an empty, oversized, or mixed-size
    /// batch.
    pub fn new_packed(graphs: &[WeightMatrix]) -> Result<Self> {
        let n = check_graphs(graphs)?;
        let ppa = Ppa::from_machine(Machine::new_packed(n, n * graphs.len()))
            .with_word_bits(batch_word_bits(graphs));
        Self::from_ppa(ppa, graphs)
    }
}

impl BatchSession<ThreadedBackend> {
    /// Builds a threaded-backend batch sized and word-fitted for
    /// `graphs`, sharding each bit-plane micro-op over a `threads`-wide
    /// pool.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] for an empty, oversized, or mixed-size
    /// batch.
    pub fn new_threaded(graphs: &[WeightMatrix], threads: usize) -> Result<Self> {
        let n = check_graphs(graphs)?;
        let ppa = Ppa::from_machine(Machine::new_threaded(n, n * graphs.len(), threads))
            .with_word_bits(batch_word_bits(graphs));
        Self::from_ppa(ppa, graphs)
    }
}

impl<W: Word> BatchSession<PackedBackend<W>> {
    /// [`BatchSession::new_packed`] with an explicit machine word `W`.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] for an empty, oversized, or mixed-size
    /// batch.
    pub fn new_packed_wide(graphs: &[WeightMatrix]) -> Result<Self> {
        let n = check_graphs(graphs)?;
        let ppa = Ppa::from_machine(Machine::new_packed_wide(n, n * graphs.len()))
            .with_word_bits(batch_word_bits(graphs));
        Self::from_ppa(ppa, graphs)
    }
}

impl<W: Word> BatchSession<ThreadedBackend<W>> {
    /// [`BatchSession::new_threaded`] with an explicit machine word `W`.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] for an empty, oversized, or mixed-size
    /// batch.
    pub fn new_threaded_wide(graphs: &[WeightMatrix], threads: usize) -> Result<Self> {
        let n = check_graphs(graphs)?;
        let ppa = Ppa::from_machine(Machine::new_threaded_wide(n, n * graphs.len(), threads))
            .with_word_bits(batch_word_bits(graphs));
        Self::from_ppa(ppa, graphs)
    }
}

impl<E: Executor> BatchSession<E> {
    /// Wraps an existing runtime, preparing the shared planes for
    /// `graphs`. The machine must be `n x (n * lanes)` and at least as
    /// wide as the widest lane's required word.
    ///
    /// The preparation costs the same five ALU steps as a solo
    /// session's (the `ROW` register, the per-lane `COL` register, the
    /// `n - 1` immediate and the two derived masks); the two weight
    /// layouts are host I/O and free.
    ///
    /// # Errors
    /// [`McpError::BatchShape`], [`McpError::SizeMismatch`], or
    /// [`McpError::WordWidthTooSmall`].
    pub fn from_ppa(mut ppa: Ppa<E>, graphs: &[WeightMatrix]) -> Result<Self> {
        let n = check_graphs(graphs)?;
        let lanes = graphs.len();
        let layout = LaneLayout::new(n, lanes);
        let dim = ppa.dim();
        if dim != layout.dim() {
            return Err(McpError::BatchShape {
                detail: format!(
                    "machine is {}x{} but {lanes} lane(s) of {n}x{n} need {}x{}",
                    dim.rows,
                    dim.cols,
                    layout.dim().rows,
                    layout.dim().cols
                ),
            });
        }
        let required = graphs.iter().map(mcp::fit_word_bits).max().unwrap_or(2);
        if ppa.word_bits() < required {
            return Err(McpError::WordWidthTooSmall {
                required,
                actual: ppa.word_bits(),
            });
        }
        let maxint = ppa.maxint();

        // --- plane setup: hardwired registers (5 ALU, like solo) --------
        let row = ppa.row_index();
        let lane_col = ppa.lane_col_index(n);
        let nm1_imm = ppa.constant(n as i64 - 1);
        let diag = ppa.eq(&row, &lane_col)?; // ROW == lane-local COL
        let last_col = ppa.eq(&lane_col, &nm1_imm)?; // lane-local COL == n - 1

        // The W layouts arrive preloaded (host I/O, not SIMD steps) with
        // the diagonal pinned to 0 — the same dynamic-program convention
        // the solo solver documents. `wt_plane` holds each lane's
        // *transpose*: the initializer reads it southwards so no bus
        // transaction ever crosses a lane boundary.
        let mut vecs: Vec<Vec<i64>> = Vec::with_capacity(lanes);
        for g in graphs {
            let mut v = g.try_saturated_vec(maxint)?;
            for i in 0..n {
                v[i * n + i] = 0;
            }
            vecs.push(v);
        }
        let w_plane: Parallel<i64> =
            Parallel::from_vec(dim, layout.compose_vec(|l, r, c| vecs[l][r * n + c]));
        let wt_plane: Parallel<i64> =
            Parallel::from_vec(dim, layout.compose_vec(|l, r, c| vecs[l][c * n + r]));

        Ok(BatchSession {
            ppa,
            layout,
            graphs: graphs.to_vec(),
            prep: BatchPrepared {
                n,
                maxint,
                row,
                lane_col,
                diag,
                last_col,
                w_plane,
                wt_plane,
            },
        })
    }

    /// Per-lane problem size.
    pub fn n(&self) -> usize {
        self.prep.n
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.layout.lanes()
    }

    /// The lane geometry.
    pub fn layout(&self) -> LaneLayout {
        self.layout
    }

    /// The machine word width shared by every lane.
    pub fn word_bits(&self) -> u32 {
        self.ppa.word_bits()
    }

    /// The graphs loaded into the lanes, in lane order.
    pub fn graphs(&self) -> &[WeightMatrix] {
        &self.graphs
    }

    /// Borrow the underlying runtime (step reports, metrics, stats).
    pub fn ppa(&self) -> &Ppa<E> {
        &self.ppa
    }

    /// Mutably borrow the underlying runtime (attach sinks/metrics,
    /// machine-level budgets and cancellation).
    pub fn ppa_mut(&mut self) -> &mut Ppa<E> {
        &mut self.ppa
    }

    /// Consumes the session, returning the runtime.
    pub fn into_ppa(self) -> Ppa<E> {
        self.ppa
    }

    /// Cumulative backend execution statistics (plan cache, arena).
    pub fn exec_stats(&self) -> ExecStats {
        self.ppa.exec_stats()
    }

    /// Solves one destination per lane (`dests[l]` on lane `l`'s graph)
    /// in a single micro-op stream.
    ///
    /// The outer `Result` is the machine: a machine-level budget,
    /// cancellation, or bus fault aborts the whole batch. The inner
    /// per-lane `Result`s are the problems: each is bit-identical —
    /// outputs *and* [`McpStats`] — to a solo solve of that lane.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] if `dests` does not cover every lane;
    /// any machine-level failure.
    pub fn solve(&mut self, dests: &[usize]) -> Result<Vec<Result<McpOutput>>> {
        let limits = vec![LaneLimit::default(); self.layout.lanes()];
        self.solve_inner(dests, &limits, false)
    }

    /// [`BatchSession::solve`] with per-lane budgets and cancellation.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] if `dests` or `limits` does not cover
    /// every lane; any machine-level failure.
    pub fn solve_with(
        &mut self,
        dests: &[usize],
        limits: &[LaneLimit],
    ) -> Result<Vec<Result<McpOutput>>> {
        self.solve_inner(dests, limits, false)
    }

    /// [`BatchSession::solve`] with the host-side invariant checks of
    /// the verified solo solver, applied per lane: a lane that violates
    /// an invariant resolves to
    /// [`McpError::InvariantViolation`](crate::McpError) without
    /// disturbing its batchmates.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] if `dests` does not cover every lane;
    /// any machine-level failure.
    pub fn solve_verified(&mut self, dests: &[usize]) -> Result<Vec<Result<McpOutput>>> {
        let limits = vec![LaneLimit::default(); self.layout.lanes()];
        self.solve_inner(dests, &limits, true)
    }

    /// [`BatchSession::solve_verified`] with per-lane budgets and
    /// cancellation — the combination the serving layer uses.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] if `dests` or `limits` does not cover
    /// every lane; any machine-level failure.
    pub fn solve_verified_with(
        &mut self,
        dests: &[usize],
        limits: &[LaneLimit],
    ) -> Result<Vec<Result<McpOutput>>> {
        self.solve_inner(dests, limits, true)
    }

    /// All-pairs on a replicated single-graph batch: destinations
    /// `0..n` are retired in wavefronts of `lanes()` per pass. Outputs
    /// and per-destination stats are bit-identical to the solo
    /// [`all_pairs`](crate::apsp::all_pairs) driver.
    ///
    /// # Errors
    /// [`McpError::BatchShape`] unless every lane holds the same graph;
    /// the first per-destination failure otherwise.
    pub fn all_pairs(&mut self) -> Result<AllPairs> {
        let n = self.prep.n;
        let lanes = self.layout.lanes();
        if self.graphs.iter().any(|g| *g != self.graphs[0]) {
            return Err(McpError::BatchShape {
                detail: "all_pairs needs every lane to hold the same graph".into(),
            });
        }
        let mut runs: Vec<McpOutput> = Vec::with_capacity(n);
        let mut wave_start = 0usize;
        while wave_start < n {
            // Pad the ragged final wavefront by repeating its first
            // destination; padded lanes are solved and discarded.
            let dests: Vec<usize> = (0..lanes).map(|l| (wave_start + l).min(n - 1)).collect();
            let wave = self.solve(&dests)?;
            for (l, out) in wave.into_iter().enumerate() {
                if wave_start + l < n {
                    runs.push(out?);
                }
            }
            wave_start += lanes;
        }
        Ok(AllPairs { runs })
    }

    fn solve_inner(
        &mut self,
        dests: &[usize],
        limits: &[LaneLimit],
        verify: bool,
    ) -> Result<Vec<Result<McpOutput>>> {
        let n = self.prep.n;
        let lanes = self.layout.lanes();
        let maxint = self.prep.maxint;
        let layout = self.layout;
        if dests.len() != lanes {
            return Err(McpError::BatchShape {
                detail: format!("{} destination(s) for {lanes} lane(s)", dests.len()),
            });
        }
        if limits.len() != lanes {
            return Err(McpError::BatchShape {
                detail: format!("{} lane limit(s) for {lanes} lane(s)", limits.len()),
            });
        }

        let before_exec = self.ppa.exec_stats();
        let ppa = &mut self.ppa;
        let start = ppa.steps();
        let observed = ppa.observing();
        if observed {
            ppa.enter_span("batch");
        }
        ppa.set_phase(Some("setup"));

        // Lanes that can never run resolve before the first instruction:
        // a pre-raised cancel token fails at the first guarded op of a
        // solo run, and an out-of-range destination fails its range
        // check. Both ride along on a safe substitute destination.
        let mut results: Vec<Option<Result<McpOutput>>> = (0..lanes)
            .map(|l| {
                if limits[l].cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    Some(Err(McpError::Ppc(PpcError::Machine(
                        MachineError::Cancelled,
                    ))))
                } else if dests[l] >= n {
                    Some(Err(McpError::DestinationOutOfRange { d: dests[l], n }))
                } else {
                    None
                }
            })
            .collect();

        // --- destination masks (4 ALU, like solo) -----------------------
        let safe_dests: Vec<i64> = dests.iter().map(|&d| d.min(n - 1) as i64).collect();
        let d_imm = ppa.lane_constant(&safe_dests, n);
        let row_is_d = ppa.eq(&self.prep.row, &d_imm)?;
        let row_ne_d = ppa.not(&row_is_d)?;
        // Issued for step parity with the solo destination-mask block;
        // the batch initializer reads `wt_plane` southwards instead of
        // broadcasting `W` eastwards from column d (which would cross
        // lane boundaries: row buses see one head per lane, not one).
        let _col_is_d = ppa.eq(&self.prep.lane_col, &d_imm)?;

        // Parallel variable declarations (pinned to MAXINT, as solo).
        let mut sow = ppa.constant(maxint);
        let mut min_sow = ppa.constant(maxint);
        let mut ptn = ppa.constant(0i64);
        let mut old_sow = ppa.constant(maxint); // statement 3

        // --- Step 1: statements 4-7, lane-safe form ---------------------
        ppa.set_phase(Some("step 1 (stmts 4-7)"));
        // Solo realizes `SOW[d][i] = w_id` with an EAST spread of column
        // d followed by a SOUTH diagonal fold. The lane-safe equivalent
        // reads the preloaded transpose: a SOUTH broadcast from row d
        // puts w_id into every cell of lane column i, and the SOUTH
        // diagonal fold is then value-identical — two broadcast steps
        // either way, so the init report matches solo exactly.
        let b1 = ppa.broadcast(&self.prep.wt_plane, Direction::South, &row_is_d)?;
        let in_weights_t = ppa.broadcast(&b1, Direction::South, &self.prep.diag)?;
        ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<()> {
            p.assign(&mut sow, &in_weights_t)?; // 5 (intended)
            p.assign(&mut ptn, &d_imm)?; // 6: PTN = d
            p.assign(&mut min_sow, &in_weights_t)?;
            Ok(())
        })??;

        let init_report = ppa.steps().checked_since(&start).unwrap_or_default();

        // --- the per-lane solo-equivalent step ledger -------------------
        // Every costed op is one step and the last op of every pass is
        // guarded, so a solo run with `limit_steps(B)` succeeds iff it
        // completes within B total steps (prepare included) and
        // otherwise dies with `StepBudgetExhausted` — which lets the
        // ledger resolve budgets exactly at iteration boundaries.
        let cum = |ppa: &Ppa<E>| {
            PREPARE_STEPS
                + ppa
                    .steps()
                    .checked_since(&start)
                    .unwrap_or_default()
                    .total()
        };
        let cancelled = |l: usize| limits[l].cancel.as_ref().is_some_and(|t| t.is_cancelled());

        // Init boundary: a lane whose budget cannot even cover the
        // masks + initializer dies before pass 1's first guarded op.
        let cum_init = cum(ppa);
        for l in 0..lanes {
            if results[l].is_some() {
                continue;
            }
            if cancelled(l) {
                results[l] = Some(Err(McpError::Ppc(PpcError::Machine(
                    MachineError::Cancelled,
                ))));
            } else if limits[l].step_budget.is_some_and(|b| cum_init >= b) {
                results[l] = Some(Err(McpError::Ppc(PpcError::Machine(
                    MachineError::StepBudgetExhausted {
                        budget: limits[l].step_budget.unwrap_or_default(),
                    },
                ))));
            }
        }

        // Invariant 1 state per lane (host-side copies, verify only).
        let mut prev_row_d: Vec<Option<Vec<i64>>> = (0..lanes)
            .map(|l| (verify && results[l].is_none()).then(|| layout.lane_row(&sow, l, dests[l])))
            .collect();

        // --- Step 2: the do-while loop, statements 8-20 -----------------
        let mut per_iteration: Vec<StepReport> = Vec::new();
        let mut iterations = 0usize;
        while results.iter().any(Option::is_none) {
            let iter_start = ppa.steps();
            if observed {
                ppa.enter_span(&format!("iteration[{iterations}]"));
            }
            iterations += 1;

            // ---- statements 9-13, under where (ROW != d) ----
            ppa.set_phase(Some("stmt 10: broadcast+add"));
            let bsow = ppa.broadcast(&sow, Direction::South, &row_is_d)?;
            let sum = ppa.sat_add(&bsow, &self.prep.w_plane)?;
            ppa.where_(&row_ne_d, |p| p.assign(&mut sow, &sum))??;

            ppa.set_phase(Some("stmt 11: min"));
            let rowmin = ppa.min(&sow, Direction::West, &self.prep.last_col)?;
            ppa.where_(&row_ne_d, |p| p.assign(&mut min_sow, &rowmin))??;

            // The selection register is the *lane-local* COL, so PTN
            // values and tie-breaks match each lane's solo run.
            ppa.set_phase(Some("stmt 12: selected_min"));
            let is_argmin = ppa.eq(&min_sow, &sow)?;
            let sel = ppa.or(&is_argmin, &row_is_d)?;
            let argmin_col = ppa.selected_min(
                &self.prep.lane_col,
                Direction::West,
                &self.prep.last_col,
                &sel,
            )?;
            ppa.where_(&row_ne_d, |p| p.assign(&mut ptn, &argmin_col))??;

            // ---- statements 14-18, under where (ROW == d) ----
            ppa.set_phase(Some("stmts 14-18: fold into row d"));
            let bc_min = ppa.broadcast(&min_sow, Direction::South, &self.prep.diag)?;
            let bc_ptn = ppa.broadcast(&ptn, Direction::South, &self.prep.diag)?;
            let changed = ppa.where_(&row_is_d, |p| -> ppa_ppc::Result<Parallel<bool>> {
                p.assign(&mut old_sow, &sow)?; // 15
                p.assign(&mut sow, &bc_min)?; // 16
                let changed = p.ne(&sow, &old_sow)?; // 17 condition
                p.where_(&changed, |q| q.assign(&mut ptn, &bc_ptn))??; // 17-18
                Ok(changed)
            })??;

            per_iteration.push(ppa.steps().checked_since(&iter_start).unwrap_or_default());

            // ---- invariant 1 per lane: row-d costs never increase ----
            for l in 0..lanes {
                let Some(prev) = prev_row_d[l].as_mut() else {
                    continue;
                };
                if results[l].is_some() {
                    continue;
                }
                let now = layout.lane_row(&sow, l, dests[l]);
                if now.iter().zip(prev.iter()).any(|(new, old)| new > old) {
                    results[l] = Some(Err(McpError::InvariantViolation {
                        invariant: "a row-d cost increased across an iteration",
                    }));
                    continue;
                }
                *prev = now;
            }

            // ---- statement 20: the loop test ----
            ppa.set_phase(Some("stmt 20: loop test"));
            let changed_in_row_d = ppa.and(&changed, &row_is_d)?;
            // The global OR is issued every pass for step parity; the
            // batch's own loop condition is the per-lane host read
            // below (a converged lane is idempotent under further
            // passes, so riders cannot re-assert it).
            let _keep_going = ppa.any(&changed_in_row_d)?;
            if observed {
                ppa.exit_span(); // iteration[i] (includes the loop test)
            }

            // ---- iteration boundary: resolve lanes ----
            let since = ppa.steps().checked_since(&start).unwrap_or_default();
            let cum_now = PREPARE_STEPS + since.total();
            for l in 0..lanes {
                if results[l].is_some() {
                    continue;
                }
                let lane_changed = layout
                    .lane_row(&changed_in_row_d, l, dests[l])
                    .iter()
                    .any(|&c| c);
                let budget = limits[l].step_budget;
                let within = budget.is_none_or(|b| cum_now <= b);
                if !lane_changed && within {
                    // Converged inside budget: the solo twin returned
                    // here, before any cancellation could be observed.
                    results[l] = Some(read_lane(
                        layout,
                        maxint,
                        &self.graphs[l],
                        &sow,
                        &ptn,
                        l,
                        dests[l],
                        iterations,
                        &init_report,
                        &per_iteration,
                        since,
                        verify,
                    ));
                } else if cancelled(l) {
                    // The guard checks cancellation before the budget.
                    results[l] = Some(Err(McpError::Ppc(PpcError::Machine(
                        MachineError::Cancelled,
                    ))));
                } else if !lane_changed || budget.is_some_and(|b| cum_now >= b) {
                    // Converged over budget (the solo twin died inside
                    // this pass) or out of steps before the next pass's
                    // first guarded op.
                    results[l] = Some(Err(McpError::Ppc(PpcError::Machine(
                        MachineError::StepBudgetExhausted {
                            budget: budget.unwrap_or_default(),
                        },
                    ))));
                } else if iterations > n {
                    results[l] = Some(Err(McpError::NoConvergence { rounds: iterations }));
                }
            }
        }

        ppa.set_phase(None);
        if observed {
            ppa.exit_span(); // batch
        }
        if let Some(m) = ppa.metrics_mut() {
            for r in &per_iteration {
                m.observe("mcp.steps_per_iteration", r.total());
            }
            m.inc("mcp.iterations", iterations as u64);
            m.inc("batch.solves", 1);
            m.inc("batch.lanes", lanes as u64);
        }
        self.publish_backend_metrics(&before_exec);

        Ok(results
            .into_iter()
            .map(|r| r.expect("lane resolved"))
            .collect())
    }

    /// Publishes the backend's execution-stat deltas since `before` as
    /// `backend.*` counters, when a metrics registry is attached.
    fn publish_backend_metrics(&mut self, before: &ExecStats) {
        let delta = self.ppa.exec_stats().since(before);
        if let Some(m) = self.ppa.metrics_mut() {
            m.inc("backend.plan_hits", delta.plan_hits);
            m.inc("backend.plan_misses", delta.plan_misses);
            m.inc("backend.arena_fresh", delta.arena_fresh);
            m.inc("backend.arena_reused", delta.arena_reused);
        }
    }
}

/// Reads one resolved lane's row `d` into a [`McpOutput`] whose stats
/// are the lane's solo-equivalent slice of the shared reports. A free
/// function so the solve loop can call it while the runtime is
/// mutably borrowed.
#[allow(clippy::too_many_arguments)]
fn read_lane(
    layout: LaneLayout,
    maxint: i64,
    w: &WeightMatrix,
    sow: &Parallel<i64>,
    ptn: &Parallel<i64>,
    l: usize,
    d: usize,
    iterations: usize,
    init: &StepReport,
    per_iteration: &[StepReport],
    total: StepReport,
    verify: bool,
) -> Result<McpOutput> {
    let n = layout.n();
    let mut out_sow: Vec<Weight> = Vec::with_capacity(n);
    let mut out_ptn: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        let cost = *layout.lane_at(sow, l, d, i);
        if i == d {
            out_sow.push(0);
            out_ptn.push(d);
        } else if cost >= maxint {
            out_sow.push(INF);
            out_ptn.push(i);
        } else {
            out_sow.push(cost);
            out_ptn.push(*layout.lane_at(ptn, l, d, i) as usize);
        }
    }

    if verify {
        // ---- invariant 2: the destination's own cost is zero ----
        if *layout.lane_at(sow, l, d, d) != 0 {
            return Err(McpError::InvariantViolation {
                invariant: "destination cost must be zero",
            });
        }
        // ---- invariant 3: the Bellman fixpoint against the input ----
        for i in 0..n {
            if i == d {
                continue;
            }
            let mut best = INF;
            for j in 0..n {
                let wij = w.get(i, j);
                if j == i || wij == INF || out_sow[j] == INF {
                    continue;
                }
                best = best.min(wij + out_sow[j]);
            }
            if out_sow[i] != best {
                return Err(McpError::InvariantViolation {
                    invariant: "row-d costs must satisfy the Bellman fixpoint",
                });
            }
        }
    }

    Ok(McpOutput {
        dest: d,
        sow: out_sow,
        ptn: out_ptn,
        iterations,
        stats: McpStats {
            init: *init,
            per_iteration: per_iteration[..iterations].to_vec(),
            total,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McpSession;
    use ppa_graph::gen;

    fn solo(w: &WeightMatrix, d: usize, word_bits: u32) -> Result<McpOutput> {
        let ppa = Ppa::square(w.n()).with_word_bits(word_bits);
        McpSession::from_ppa(ppa, w)?.solve(d)
    }

    #[test]
    fn three_lane_wavefront_matches_solo_outputs_and_stats() -> Result<()> {
        let w = gen::random_connected(8, 0.3, 14, 11);
        let mut batch = BatchSession::new(&replicate(&w, 3))?;
        let h = batch.word_bits();
        let wave = batch.solve(&[0, 3, 7])?;
        for (out, d) in wave.into_iter().zip([0usize, 3, 7]) {
            let got = out.inspect_err(|_| eprintln!("lane for destination {d} failed"))?;
            let want = solo(&w, d, h)?;
            assert_eq!(got, want, "destination {d}");
        }
        Ok(())
    }

    #[test]
    fn independent_graphs_per_lane_match_their_solo_twins() -> Result<()> {
        let graphs: Vec<WeightMatrix> =
            (0..4).map(|s| gen::random_digraph(6, 0.4, 10, s)).collect();
        let mut batch = BatchSession::new(&graphs)?;
        let h = batch.word_bits();
        let wave = batch.solve(&[1, 2, 3, 4])?;
        for (l, out) in wave.into_iter().enumerate() {
            let got = out?;
            let want = solo(&graphs[l], l + 1, h)?;
            assert_eq!(got, want, "lane {l}");
        }
        Ok(())
    }

    #[test]
    fn batched_all_pairs_matches_session_all_pairs() -> Result<()> {
        let w = gen::random_digraph(7, 0.35, 9, 5);
        let mut batch = BatchSession::new(&replicate(&w, 3))?;
        let h = batch.word_bits();
        let by_batch = batch.all_pairs()?;
        let ppa = Ppa::square(7).with_word_bits(h);
        let by_session = McpSession::from_ppa(ppa, &w)?.all_pairs()?;
        assert_eq!(by_batch, by_session);
        Ok(())
    }

    #[test]
    fn cancelled_lane_fails_typed_and_batchmates_are_unperturbed() -> Result<()> {
        let w = gen::random_connected(6, 0.4, 12, 3);
        let mut batch = BatchSession::new(&replicate(&w, 3))?;
        let h = batch.word_bits();
        let token = CancelToken::new();
        token.cancel();
        let limits = vec![
            LaneLimit::unlimited(),
            LaneLimit {
                cancel: Some(token),
                ..LaneLimit::default()
            },
            LaneLimit::unlimited(),
        ];
        let wave = batch.solve_with(&[0, 1, 2], &limits)?;
        assert!(wave[1].as_ref().is_err_and(|e| e.is_cancelled()));
        for (l, d) in [(0usize, 0usize), (2, 2)] {
            let got = wave[l].clone()?;
            assert_eq!(got, solo(&w, d, h)?, "lane {l}");
        }
        Ok(())
    }

    #[test]
    fn lane_budget_fails_exactly_like_a_solo_step_limit() -> Result<()> {
        let w = gen::ring(5);
        let h = BatchSession::new(&replicate(&w, 2))?.word_bits();
        // Measure the lane's true solo cost on a fresh machine.
        let mut session = McpSession::from_ppa(Ppa::square(5).with_word_bits(h), &w)?;
        session.solve(0)?;
        let full = session.into_ppa().steps().total();

        for budget in [full, full - 1, 20] {
            // Solo twin under the same limit.
            let mut solo_ppa = Ppa::square(5).with_word_bits(h);
            solo_ppa.limit_steps(budget);
            let solo_res = McpSession::from_ppa(solo_ppa, &w).and_then(|mut s| s.solve(0));
            let mut batch = BatchSession::new(&replicate(&w, 2))?;
            let limits = vec![
                LaneLimit {
                    step_budget: Some(budget),
                    ..LaneLimit::default()
                },
                LaneLimit::unlimited(),
            ];
            let wave = batch.solve_with(&[0, 0], &limits)?;
            match (&wave[0], &solo_res) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "budget {budget}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "budget {budget}"),
                (got, want) => panic!("budget {budget}: batch {got:?} vs solo {want:?}"),
            }
            // The unlimited batchmate always completes.
            assert!(wave[1].is_ok(), "budget {budget}");
        }
        Ok(())
    }

    #[test]
    fn shape_errors_are_typed() {
        let w = gen::ring(4);
        assert!(matches!(
            BatchSession::new(&[]),
            Err(McpError::BatchShape { .. })
        ));
        assert!(matches!(
            BatchSession::new(&replicate(&w, 65)),
            Err(McpError::BatchShape { .. })
        ));
        let mixed = vec![gen::ring(4), gen::ring(5)];
        assert!(matches!(
            BatchSession::new(&mixed),
            Err(McpError::BatchShape { .. })
        ));
        let mut ok = BatchSession::new(&replicate(&w, 2)).unwrap();
        assert!(matches!(ok.solve(&[0]), Err(McpError::BatchShape { .. })));
    }

    #[test]
    fn out_of_range_destination_fails_its_lane_only() -> Result<()> {
        let w = gen::ring(4);
        let mut batch = BatchSession::new(&replicate(&w, 2))?;
        let h = batch.word_bits();
        let wave = batch.solve(&[9, 1])?;
        assert!(matches!(
            wave[0],
            Err(McpError::DestinationOutOfRange { d: 9, n: 4 })
        ));
        assert_eq!(wave[1].clone()?, solo(&w, 1, h)?);
        Ok(())
    }

    #[test]
    fn verified_batch_is_bit_identical_on_a_healthy_machine() -> Result<()> {
        let w = gen::random_digraph(6, 0.4, 11, 9);
        let mut plain = BatchSession::new(&replicate(&w, 3))?;
        let mut checked = BatchSession::new(&replicate(&w, 3))?;
        let a = plain.solve(&[0, 2, 5])?;
        let b = checked.solve_verified(&[0, 2, 5])?;
        for (l, (x, y)) in a.into_iter().zip(b).enumerate() {
            assert_eq!(x?, y?, "lane {l}: verification must be free");
        }
        Ok(())
    }
}
