//! All-pairs and single-source drivers built on the one-destination solver.
//!
//! The paper solves "all vertices to one destination". Two natural
//! extensions fall out for free and are exercised by the examples:
//!
//! * **single source**: run the solver on the reversed graph — a minimum
//!   cost path `s -> t` in `G` is a minimum cost path `t -> s` in `G`
//!   reversed;
//! * **all pairs**: run the solver once per destination (`n` runs of
//!   `O(p * h)` steps each on the same machine).

use crate::mcp::{minimum_cost_path, McpOutput, Prepared};
use crate::Result;
use ppa_graph::{Weight, WeightMatrix};
use ppa_machine::Executor;
use ppa_ppc::Ppa;

/// Minimum cost *from one source* to every vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourcePaths {
    /// The source vertex.
    pub source: usize,
    /// `dist[t]` — minimum cost of `source -> ... -> t`.
    pub dist: Vec<Weight>,
    /// `prev[t]` — predecessor of `t` on one such path (`prev[source] ==
    /// source`; `prev[t] == t` marks "no path").
    pub prev: Vec<usize>,
    /// Do-while iterations of the underlying run.
    pub iterations: usize,
}

/// Single-source shortest paths via the reversed graph.
///
/// Note the output's `prev` pointers: the destination-oriented `PTN`
/// of the reversed run *is* the predecessor function of the forward
/// problem.
pub fn single_source<E: Executor>(
    ppa: &mut Ppa<E>,
    w: &WeightMatrix,
    s: usize,
) -> Result<SourcePaths> {
    let out = minimum_cost_path(ppa, &w.reversed(), s)?;
    Ok(SourcePaths {
        source: s,
        dist: out.sow,
        prev: out.ptn,
        iterations: out.iterations,
    })
}

/// All-pairs result: one [`McpOutput`] per destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllPairs {
    /// Per-destination outputs, indexed by destination.
    pub runs: Vec<McpOutput>,
}

impl AllPairs {
    /// Minimum cost `i -> j` (`INF` when unreachable, 0 on the diagonal).
    pub fn dist(&self, i: usize, j: usize) -> Weight {
        self.runs[j].sow[i]
    }

    /// The full distance matrix, `result[i][j] = dist(i, j)`.
    pub fn matrix(&self) -> Vec<Vec<Weight>> {
        let n = self.runs.len();
        (0..n)
            .map(|i| (0..n).map(|j| self.dist(i, j)).collect())
            .collect()
    }

    /// The distance matrix as one flat row-major vector:
    /// `result[i * n + j] = dist(i, j)`. One allocation instead of
    /// `n + 1` — the form comparison harnesses and campaign merges
    /// want for bulk equality checks and hashing.
    pub fn matrix_flat(&self) -> Vec<Weight> {
        let n = self.runs.len();
        let mut out = Vec::with_capacity(n * n);
        for i in 0..n {
            for run in &self.runs {
                out.push(run.sow[i]);
            }
        }
        out
    }

    /// Total do-while iterations across all runs.
    pub fn total_iterations(&self) -> usize {
        self.runs.iter().map(|r| r.iterations).sum()
    }
}

/// All-pairs shortest paths: `n` destination runs on one machine.
///
/// This is a *batched* consumer of the solver: the destination-independent
/// planes (`ROW`, `COL`, the diagonal and last-column masks, and the `W`
/// layout) are prepared once and shared by all `n` runs, so only the four
/// destination masks are rebuilt per run — and on a plan-caching backend
/// the switch-pattern plans and mask buffers warmed up by the first run
/// are reused by every later one.
pub fn all_pairs<E: Executor>(ppa: &mut Ppa<E>, w: &WeightMatrix) -> Result<AllPairs> {
    let prep = Prepared::build(ppa, w)?;
    let mut runs = Vec::with_capacity(w.n());
    for d in 0..w.n() {
        runs.push(prep.solve(ppa, w, d, false)?);
    }
    Ok(AllPairs { runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_graph::reference::{dijkstra_to_dest, floyd_warshall};
    use ppa_graph::INF;

    fn machine_for(w: &WeightMatrix) -> Ppa {
        Ppa::square(w.n()).with_word_bits(crate::mcp::fit_word_bits(w).clamp(2, 62))
    }

    #[test]
    fn single_source_matches_reverse_dijkstra() {
        let w = gen::random_digraph(10, 0.3, 12, 4);
        let mut ppa = machine_for(&w);
        let sp = single_source(&mut ppa, &w, 2).unwrap();
        // Oracle: distances to dest 2 in the reversed graph = from 2 forward.
        let oracle = dijkstra_to_dest(&w.reversed(), 2);
        assert_eq!(sp.dist, oracle);
        assert_eq!(sp.dist[2], 0);
    }

    #[test]
    fn single_source_prev_pointers_walk_back() {
        let w = WeightMatrix::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let mut ppa = machine_for(&w);
        let sp = single_source(&mut ppa, &w, 0).unwrap();
        assert_eq!(sp.dist, vec![0, 1, 2, 3]);
        // Walk back from 3: 3 <- 2 <- 1 <- 0.
        assert_eq!(sp.prev[3], 2);
        assert_eq!(sp.prev[2], 1);
        assert_eq!(sp.prev[1], 0);
    }

    #[test]
    fn all_pairs_matches_floyd_warshall() {
        let w = gen::random_digraph(8, 0.35, 9, 11);
        let mut ppa = machine_for(&w);
        let ap = all_pairs(&mut ppa, &w).unwrap();
        let fw = floyd_warshall(&w);
        assert_eq!(ap.matrix(), fw);
    }

    #[test]
    fn all_pairs_diagonal_is_zero() {
        let w = gen::ring(5);
        let mut ppa = machine_for(&w);
        let ap = all_pairs(&mut ppa, &w).unwrap();
        for i in 0..5 {
            assert_eq!(ap.dist(i, i), 0);
        }
    }

    #[test]
    fn all_pairs_detects_unreachability() {
        let w = gen::path(4); // one-way chain: nothing reaches backwards
        let mut ppa = machine_for(&w);
        let ap = all_pairs(&mut ppa, &w).unwrap();
        assert_eq!(ap.dist(0, 3), 3);
        assert_eq!(ap.dist(3, 0), INF);
        assert!(ap.total_iterations() >= 4);
    }

    #[test]
    fn matrix_flat_is_the_row_major_matrix() {
        let w = gen::random_digraph(6, 0.4, 8, 2);
        let mut ppa = machine_for(&w);
        let ap = all_pairs(&mut ppa, &w).unwrap();
        let nested = ap.matrix();
        let flat = ap.matrix_flat();
        assert_eq!(flat.len(), 36);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(flat[i * 6 + j], nested[i][j], "({i},{j})");
            }
        }
    }
}
