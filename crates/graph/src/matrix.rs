//! Dense weight matrices with the paper's `MAXINT` convention.

use std::fmt;

/// Edge weight type. Finite weights are non-negative; [`INF`] marks an
/// absent edge (the paper: "if no edge exists from vertex i to vertex j,
/// then `w_ij = MAXINT`, that is an infinite value").
pub type Weight = i64;

/// The "infinite" weight marking an absent edge.
///
/// This is an abstract sentinel, independent of any particular machine's
/// word width; loading a matrix onto an `h`-bit machine maps it to that
/// machine's own `MAXINT = 2^h - 1`.
pub const INF: Weight = i64::MAX;

/// A typed rejection of untrusted matrix input.
///
/// The panicking mutators ([`WeightMatrix::set`],
/// [`WeightMatrix::from_edges`], [`WeightMatrix::to_saturated_vec`]) are
/// the right contract for programmatic construction, where a violation is
/// a caller bug. Input that crosses a trust boundary — files, job
/// payloads handed to a serving worker — goes through the `try_*`
/// variants instead, which return this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// An edge endpoint does not name a vertex of the `n`-vertex graph.
    EdgeOutOfRange {
        /// Source vertex of the offending edge.
        from: usize,
        /// Target vertex of the offending edge.
        to: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `i -> i` (not representable; the diagonal is pinned to
    /// [`INF`]).
    SelfLoop {
        /// The looping vertex.
        vertex: usize,
    },
    /// A weight outside the finite non-negative range `0..INF`.
    BadWeight {
        /// Source vertex of the offending edge.
        from: usize,
        /// Target vertex of the offending edge.
        to: usize,
        /// The rejected weight.
        weight: Weight,
    },
    /// A finite weight does not fit below the target machine's `MAXINT`
    /// (`2^h - 1` for an `h`-bit machine): the matrix cannot be loaded at
    /// that word width without colliding with the "infinite" sentinel.
    WeightOverflow {
        /// Source vertex of the offending edge.
        from: usize,
        /// Target vertex of the offending edge.
        to: usize,
        /// The weight that does not fit.
        weight: Weight,
        /// The machine `MAXINT` it was checked against.
        maxint: Weight,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::EdgeOutOfRange { from, to, n } => {
                write!(f, "edge ({from},{to}) out of range for {n} vertices")
            }
            MatrixError::SelfLoop { vertex } => {
                write!(f, "self-loops are not representable (vertex {vertex})")
            }
            MatrixError::BadWeight { from, to, weight } => write!(
                f,
                "edge ({from},{to}): weight must be finite and non-negative, got {weight}"
            ),
            MatrixError::WeightOverflow {
                from,
                to,
                weight,
                maxint,
            } => write!(
                f,
                "edge ({from},{to}): weight {weight} does not fit below the machine MAXINT {maxint}"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense `n x n` weight matrix of a directed graph.
///
/// Invariants enforced by construction:
/// * finite weights are non-negative (the paper's dynamic program, like
///   Bellman-Ford over `min/+`, assumes a non-negative cost structure and
///   its bit-serial `min` compares unsigned words);
/// * the diagonal is always [`INF`] — self-loops can never shorten a path
///   and keeping them out lets the PPA algorithm's destination row stay
///   fixed (see the `ppa-mcp` crate docs).
#[derive(Clone, PartialEq, Eq)]
pub struct WeightMatrix {
    n: usize,
    w: Vec<Weight>,
}

impl WeightMatrix {
    /// An `n`-vertex graph with no edges.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "graphs must have at least one vertex");
        WeightMatrix {
            n,
            w: vec![INF; n * n],
        }
    }

    /// Builds a matrix from an edge list `(from, to, weight)`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, negative or infinite
    /// weights (same contract as [`WeightMatrix::set`]).
    pub fn from_edges(n: usize, edges: &[(usize, usize, Weight)]) -> Self {
        let mut m = WeightMatrix::new(n);
        for &(i, j, w) in edges {
            m.set(i, j, w);
        }
        m
    }

    /// [`WeightMatrix::from_edges`] for untrusted input: the first
    /// malformed edge is reported as a typed [`MatrixError`] instead of a
    /// panic.
    ///
    /// # Errors
    /// [`MatrixError::EdgeOutOfRange`], [`MatrixError::SelfLoop`], or
    /// [`MatrixError::BadWeight`] for the first offending edge.
    ///
    /// # Panics
    /// Panics if `n == 0` (an empty graph is unrepresentable, not
    /// untrusted-input-dependent).
    pub fn try_from_edges(n: usize, edges: &[(usize, usize, Weight)]) -> Result<Self, MatrixError> {
        let mut m = WeightMatrix::new(n);
        for &(i, j, w) in edges {
            m.try_set(i, j, w)?;
        }
        Ok(m)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Weight of the edge `i -> j` ([`INF`] if absent).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Weight {
        self.w[i * self.n + j]
    }

    /// Inserts (or overwrites) the edge `i -> j`.
    ///
    /// # Panics
    /// Panics if `i`/`j` are out of range, if `i == j` (self-loop), or if
    /// the weight is negative or [`INF`] (use [`WeightMatrix::remove`]).
    pub fn set(&mut self, i: usize, j: usize, w: Weight) {
        assert!(i < self.n && j < self.n, "edge ({i},{j}) out of range");
        assert_ne!(i, j, "self-loops are not representable (vertex {i})");
        assert!(
            (0..INF).contains(&w),
            "edge weight must be finite and non-negative, got {w}"
        );
        self.w[i * self.n + j] = w;
    }

    /// [`WeightMatrix::set`] for untrusted input: a typed [`MatrixError`]
    /// instead of a panic; the matrix is unchanged on rejection.
    ///
    /// # Errors
    /// [`MatrixError::EdgeOutOfRange`], [`MatrixError::SelfLoop`], or
    /// [`MatrixError::BadWeight`].
    pub fn try_set(&mut self, i: usize, j: usize, w: Weight) -> Result<(), MatrixError> {
        if i >= self.n || j >= self.n {
            return Err(MatrixError::EdgeOutOfRange {
                from: i,
                to: j,
                n: self.n,
            });
        }
        if i == j {
            return Err(MatrixError::SelfLoop { vertex: i });
        }
        if !(0..INF).contains(&w) {
            return Err(MatrixError::BadWeight {
                from: i,
                to: j,
                weight: w,
            });
        }
        self.w[i * self.n + j] = w;
        Ok(())
    }

    /// Removes the edge `i -> j` (sets it back to [`INF`]).
    pub fn remove(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "edge ({i},{j}) out of range");
        self.w[i * self.n + j] = INF;
    }

    /// Whether the edge `i -> j` exists.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.get(i, j) != INF
    }

    /// Iterates over all present edges as `(from, to, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, Weight)> + '_ {
        let n = self.n;
        self.w
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != INF)
            .map(move |(idx, &w)| (idx / n, idx % n, w))
    }

    /// Number of present edges.
    pub fn edge_count(&self) -> usize {
        self.w.iter().filter(|&&w| w != INF).count()
    }

    /// Edge density relative to the `n * (n - 1)` possible non-loop edges.
    pub fn density(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            self.edge_count() as f64 / (self.n * (self.n - 1)) as f64
        }
    }

    /// The largest finite weight present (`None` if the graph is empty).
    pub fn max_finite_weight(&self) -> Option<Weight> {
        self.w.iter().copied().filter(|&w| w != INF).max()
    }

    /// The number of bits needed to represent, without overflow, any
    /// *simple-path* cost in this graph plus the `MAXINT` sentinel: the
    /// minimal machine word width `h` that can run the PPA algorithm on
    /// this input. Computed from the pessimistic bound
    /// `(n - 1) * max_weight`.
    pub fn required_word_bits(&self) -> u32 {
        let worst = self
            .max_finite_weight()
            .unwrap_or(0)
            .saturating_mul(self.n.saturating_sub(1) as i64)
            // The PPA algorithm also scans vertex indices bit-serially
            // (statement 12's `selected_min(COL, ...)`), so indices up to
            // n - 1 must be representable below MAXINT as well.
            .max(self.n.saturating_sub(1) as i64)
            .max(1);
        // MAXINT = 2^h - 1 must be *strictly* above the worst path cost so
        // a real cost never collides with the "infinite" sentinel; size h
        // for worst + 1.
        (64 - (worst as u64 + 1).leading_zeros()).max(2)
    }

    /// Out-degree of vertex `i`.
    pub fn out_degree(&self, i: usize) -> usize {
        (0..self.n).filter(|&j| self.has_edge(i, j)).count()
    }

    /// In-degree of vertex `j`.
    pub fn in_degree(&self, j: usize) -> usize {
        (0..self.n).filter(|&i| self.has_edge(i, j)).count()
    }

    /// Row-major copy of the weights with [`INF`] replaced by `maxint`
    /// (how a matrix is loaded into an `h`-bit machine plane).
    ///
    /// # Panics
    /// Panics if any finite weight exceeds `maxint` — the matrix does not
    /// fit the target word width.
    pub fn to_saturated_vec(&self, maxint: Weight) -> Vec<Weight> {
        match self.try_saturated_vec(maxint) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`WeightMatrix::to_saturated_vec`] for untrusted input: the first
    /// finite weight at or above `maxint` is reported as a typed
    /// [`MatrixError::WeightOverflow`] instead of a panic. The largest
    /// loadable weight is therefore `maxint - 1`: `maxint` itself is the
    /// "infinite" sentinel and a real cost must never collide with it.
    ///
    /// # Errors
    /// [`MatrixError::WeightOverflow`] naming the first offending edge.
    pub fn try_saturated_vec(&self, maxint: Weight) -> Result<Vec<Weight>, MatrixError> {
        self.w
            .iter()
            .enumerate()
            .map(|(idx, &w)| {
                if w == INF {
                    Ok(maxint)
                } else if w < maxint {
                    Ok(w)
                } else {
                    Err(MatrixError::WeightOverflow {
                        from: idx / self.n,
                        to: idx % self.n,
                        weight: w,
                        maxint,
                    })
                }
            })
            .collect()
    }

    /// The reverse graph (every edge flipped) — used to turn the paper's
    /// "all sources to one destination" solver into a "one source to all
    /// destinations" solver.
    pub fn reversed(&self) -> WeightMatrix {
        let mut r = WeightMatrix::new(self.n);
        for (i, j, w) in self.edges() {
            r.set(j, i, w);
        }
        r
    }
}

impl fmt::Debug for WeightMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "WeightMatrix(n={}) [", self.n)?;
        for i in 0..self.n {
            write!(f, "  ")?;
            for j in 0..self.n {
                let w = self.get(i, j);
                if w == INF {
                    write!(f, "  . ")?;
                } else {
                    write!(f, "{w:3} ")?;
                }
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matrix_has_no_edges() {
        let m = WeightMatrix::new(4);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.density(), 0.0);
        assert!(!m.has_edge(0, 1));
    }

    #[test]
    fn set_get_remove_round_trip() {
        let mut m = WeightMatrix::new(3);
        m.set(0, 2, 7);
        assert_eq!(m.get(0, 2), 7);
        assert!(m.has_edge(0, 2));
        m.remove(0, 2);
        assert_eq!(m.get(0, 2), INF);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        WeightMatrix::new(3).set(1, 1, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        WeightMatrix::new(3).set(0, 1, -1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn inf_weight_rejected_in_set() {
        WeightMatrix::new(3).set(0, 1, INF);
    }

    #[test]
    fn edges_iterates_all_present() {
        let m = WeightMatrix::from_edges(3, &[(0, 1, 5), (2, 0, 1)]);
        let mut es: Vec<_> = m.edges().collect();
        es.sort();
        assert_eq!(es, vec![(0, 1, 5), (2, 0, 1)]);
        assert_eq!(m.edge_count(), 2);
    }

    #[test]
    fn density_counts_non_loop_pairs() {
        let m = WeightMatrix::from_edges(3, &[(0, 1, 1), (1, 0, 1), (1, 2, 1)]);
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degrees() {
        let m = WeightMatrix::from_edges(4, &[(0, 1, 1), (0, 2, 1), (3, 1, 1)]);
        assert_eq!(m.out_degree(0), 2);
        assert_eq!(m.in_degree(1), 2);
        assert_eq!(m.out_degree(2), 0);
    }

    #[test]
    fn required_word_bits_covers_worst_path() {
        let m = WeightMatrix::from_edges(5, &[(0, 1, 10), (1, 2, 10)]);
        let h = m.required_word_bits();
        // Worst simple path = 4 edges x 10 = 40 < 2^h and MAXINT distinct.
        assert!((1i64 << h) - 1 > 40, "h={h}");
    }

    #[test]
    fn to_saturated_vec_maps_inf() {
        let m = WeightMatrix::from_edges(2, &[(0, 1, 3)]);
        let v = m.to_saturated_vec(15);
        assert_eq!(v, vec![15, 3, 15, 15]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_saturated_vec_checks_fit() {
        let m = WeightMatrix::from_edges(2, &[(0, 1, 20)]);
        let _ = m.to_saturated_vec(15);
    }

    #[test]
    fn try_set_rejects_with_typed_errors() {
        let mut m = WeightMatrix::new(3);
        assert_eq!(
            m.try_set(0, 3, 1),
            Err(MatrixError::EdgeOutOfRange {
                from: 0,
                to: 3,
                n: 3
            })
        );
        assert_eq!(m.try_set(1, 1, 1), Err(MatrixError::SelfLoop { vertex: 1 }));
        assert_eq!(
            m.try_set(0, 1, -4),
            Err(MatrixError::BadWeight {
                from: 0,
                to: 1,
                weight: -4
            })
        );
        assert_eq!(
            m.try_set(0, 1, INF),
            Err(MatrixError::BadWeight {
                from: 0,
                to: 1,
                weight: INF
            })
        );
        assert_eq!(m.edge_count(), 0, "rejections leave the matrix unchanged");
        assert!(m.try_set(0, 1, 7).is_ok());
        assert_eq!(m.get(0, 1), 7);
    }

    #[test]
    fn try_from_edges_reports_first_offender() {
        let err = WeightMatrix::try_from_edges(3, &[(0, 1, 2), (2, 2, 5)]).unwrap_err();
        assert_eq!(err, MatrixError::SelfLoop { vertex: 2 });
        let ok = WeightMatrix::try_from_edges(3, &[(0, 1, 2)]).unwrap();
        assert_eq!(ok, WeightMatrix::from_edges(3, &[(0, 1, 2)]));
    }

    #[test]
    fn try_saturated_vec_boundary_at_maxint() {
        // maxint - 1 is the largest loadable weight; maxint collides with
        // the "infinite" sentinel and is rejected with coordinates.
        let maxint = 15;
        let fits = WeightMatrix::from_edges(2, &[(0, 1, maxint - 1)]);
        assert_eq!(
            fits.try_saturated_vec(maxint).unwrap(),
            vec![maxint, maxint - 1, maxint, maxint]
        );
        let mut collides = WeightMatrix::new(2);
        collides.set(1, 0, maxint);
        assert_eq!(
            collides.try_saturated_vec(maxint),
            Err(MatrixError::WeightOverflow {
                from: 1,
                to: 0,
                weight: maxint,
                maxint,
            })
        );
    }

    #[test]
    fn matrix_error_display_names_the_edge() {
        let e = MatrixError::WeightOverflow {
            from: 1,
            to: 2,
            weight: 99,
            maxint: 63,
        };
        let s = e.to_string();
        assert!(s.contains("(1,2)"), "{s}");
        assert!(s.contains("99"), "{s}");
        assert!(s.contains("63"), "{s}");
    }

    #[test]
    fn reversed_flips_edges() {
        let m = WeightMatrix::from_edges(3, &[(0, 1, 5), (1, 2, 7)]);
        let r = m.reversed();
        assert_eq!(r.get(1, 0), 5);
        assert_eq!(r.get(2, 1), 7);
        assert!(!r.has_edge(0, 1));
        assert_eq!(r.reversed(), m);
    }

    #[test]
    fn max_finite_weight() {
        let m = WeightMatrix::from_edges(3, &[(0, 1, 5), (1, 2, 7)]);
        assert_eq!(m.max_finite_weight(), Some(7));
        assert_eq!(WeightMatrix::new(2).max_finite_weight(), None);
    }
}
