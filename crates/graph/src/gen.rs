//! Seeded workload generators.
//!
//! Every generator is deterministic in its `seed`, so the experiment
//! harness and the property tests can regenerate identical inputs. Weights
//! are drawn from `1..=max_w` (zero-weight edges are legal in the model but
//! excluded by the generators so that "shorter cost" and "fewer hops"
//! remain distinguishable in the tests).

use crate::matrix::{Weight, WeightMatrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An Erdős–Rényi-style random digraph: every ordered non-loop pair gets an
/// edge independently with probability `density`, weight uniform in
/// `1..=max_w`.
pub fn random_digraph(n: usize, density: f64, max_w: Weight, seed: u64) -> WeightMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    assert!(max_w >= 1, "max_w must be at least 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = WeightMatrix::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(density) {
                m.set(i, j, rng.gen_range(1..=max_w));
            }
        }
    }
    m
}

/// Like [`random_digraph`], but additionally wires the cycle
/// `0 -> 1 -> ... -> n-1 -> 0` so every vertex reaches every other — the
/// workload used whenever an experiment needs all costs finite.
pub fn random_connected(n: usize, density: f64, max_w: Weight, seed: u64) -> WeightMatrix {
    let mut m = random_digraph(n, density, max_w, seed);
    if n > 1 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for i in 0..n {
            m.set(i, (i + 1) % n, rng.gen_range(1..=max_w));
        }
    }
    m
}

/// The directed ring `0 -> 1 -> ... -> n-1 -> 0` with unit weights: the
/// worst case for iteration count, since the minimum-cost path from vertex
/// `d+1` back to `d` has `n - 1` hops (`p = n - 1`).
pub fn ring(n: usize) -> WeightMatrix {
    let mut m = WeightMatrix::new(n);
    if n > 1 {
        for i in 0..n {
            m.set(i, (i + 1) % n, 1);
        }
    }
    m
}

/// The directed path `0 -> 1 -> ... -> n-1` with unit weights.
pub fn path(n: usize) -> WeightMatrix {
    let mut m = WeightMatrix::new(n);
    for i in 0..n.saturating_sub(1) {
        m.set(i, i + 1, 1);
    }
    m
}

/// A "controlled diameter" workload: the directed path `0 -> ... -> p`
/// with unit weights, padded with `n - p - 1` extra vertices that all have
/// a direct unit edge to vertex `p`. The maximum MCP hop-length to
/// destination `p` is exactly `p`, independent of `n` — the input family
/// behind experiment T2 (steps linear in `p`, flat in `n`).
pub fn padded_path(n: usize, p: usize) -> WeightMatrix {
    assert!(p < n, "need p < n (p={p}, n={n})");
    let mut m = WeightMatrix::new(n);
    for i in 0..p {
        m.set(i, i + 1, 1);
    }
    for v in (p + 1)..n {
        m.set(v, p, 1);
    }
    m
}

/// A 4-neighbour grid of `rows x cols` vertices (vertex `r * cols + c`),
/// bidirectional edges with weights uniform in `1..=max_w` — the
/// "weighted terrain" workload of the robot-navigation example.
pub fn grid(rows: usize, cols: usize, max_w: Weight, seed: u64) -> WeightMatrix {
    assert!(rows > 0 && cols > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut m = WeightMatrix::new(n);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                m.set(idx(r, c), idx(r, c + 1), rng.gen_range(1..=max_w));
                m.set(idx(r, c + 1), idx(r, c), rng.gen_range(1..=max_w));
            }
            if r + 1 < rows {
                m.set(idx(r, c), idx(r + 1, c), rng.gen_range(1..=max_w));
                m.set(idx(r + 1, c), idx(r, c), rng.gen_range(1..=max_w));
            }
        }
    }
    m
}

/// A star: every satellite has one edge to the `center` (weight uniform in
/// `1..=max_w`); all MCPs to the center are single edges (`p = 1`).
pub fn star(n: usize, center: usize, max_w: Weight, seed: u64) -> WeightMatrix {
    assert!(center < n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = WeightMatrix::new(n);
    for i in 0..n {
        if i != center {
            m.set(i, center, rng.gen_range(1..=max_w));
        }
    }
    m
}

/// A random DAG: edges only from lower to higher vertex indices, each
/// present with probability `density`.
pub fn random_dag(n: usize, density: f64, max_w: Weight, seed: u64) -> WeightMatrix {
    assert!((0.0..=1.0).contains(&density));
    assert!(max_w >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = WeightMatrix::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                m.set(i, j, rng.gen_range(1..=max_w));
            }
        }
    }
    m
}

/// A random geometric ("road-network-like") graph: `n` points uniform in
/// the unit square, bidirectional edges between points within `radius`,
/// weight = Euclidean distance scaled to an integer in `1..=max_w`.
pub fn geometric(n: usize, radius: f64, max_w: Weight, seed: u64) -> WeightMatrix {
    assert!(radius > 0.0);
    assert!(max_w >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut m = WeightMatrix::new(n);
    let scale = max_w as f64 / radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= radius {
                let w = ((dist * scale).ceil() as Weight).max(1);
                m.set(i, j, w);
                m.set(j, i, w);
            }
        }
    }
    m
}

/// The complete digraph on `n` vertices, weights uniform in `1..=max_w`:
/// all MCPs are short (`p` small), the easy case for the PPA iteration.
pub fn complete(n: usize, max_w: Weight, seed: u64) -> WeightMatrix {
    random_digraph(n, 1.0, max_w, seed)
}

/// A random rooted tree with every edge directed *towards the root*
/// (vertex 0): each vertex `v > 0` picks a random parent among
/// `0..v`. Exactly one path per vertex, so `PTN` is fully determined —
/// the workload that pins pointer correctness hardest.
pub fn tree(n: usize, max_w: Weight, seed: u64) -> WeightMatrix {
    assert!(max_w >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = WeightMatrix::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        m.set(v, parent, rng.gen_range(1..=max_w));
    }
    m
}

/// A layered DAG: `layers` layers of roughly equal size, every vertex
/// wired to 1-3 random vertices of the next layer. The maximum MCP
/// hop-length to a layer-0 destination is `layers - 1` by construction —
/// a second controlled-diameter family besides [`padded_path`].
pub fn layered(n: usize, layers: usize, max_w: Weight, seed: u64) -> WeightMatrix {
    assert!(layers >= 1 && layers <= n, "need 1 <= layers <= n");
    assert!(max_w >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = WeightMatrix::new(n);
    let per = n.div_ceil(layers);
    let layer_of = |v: usize| (v / per).min(layers - 1);
    for v in 0..n {
        let l = layer_of(v);
        if l == 0 {
            continue;
        }
        // Vertices of layer l-1.
        let lo = (l - 1) * per;
        let hi = (l * per).min(n);
        let fanout = rng.gen_range(1..=3usize);
        for _ in 0..fanout {
            let t = rng.gen_range(lo..hi);
            if t != v {
                m.set(v, t, rng.gen_range(1..=max_w));
            }
        }
    }
    m
}

/// Identifiers for the generator families, used by the experiment harness
/// to sweep "all graph classes".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// [`random_digraph`] at density 0.25.
    Sparse,
    /// [`random_connected`] at density 0.1.
    Connected,
    /// [`ring`].
    Ring,
    /// [`grid`] (square-ish).
    Grid,
    /// [`star`] centred on vertex 0.
    Star,
    /// [`random_dag`] at density 0.3.
    Dag,
    /// [`geometric`] with radius 0.35.
    Geometric,
    /// [`complete`].
    Complete,
    /// [`tree`] rooted at vertex 0.
    Tree,
    /// [`layered`] with ~4 layers.
    Layered,
}

impl Family {
    /// Every family, in sweep order.
    pub const ALL: [Family; 10] = [
        Family::Sparse,
        Family::Connected,
        Family::Ring,
        Family::Grid,
        Family::Star,
        Family::Dag,
        Family::Geometric,
        Family::Complete,
        Family::Tree,
        Family::Layered,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Family::Sparse => "sparse",
            Family::Connected => "connected",
            Family::Ring => "ring",
            Family::Grid => "grid",
            Family::Star => "star",
            Family::Dag => "dag",
            Family::Geometric => "geometric",
            Family::Complete => "complete",
            Family::Tree => "tree",
            Family::Layered => "layered",
        }
    }

    /// Instantiates the family at `n` vertices with the given seed.
    pub fn build(self, n: usize, max_w: Weight, seed: u64) -> WeightMatrix {
        match self {
            Family::Sparse => random_digraph(n, 0.25, max_w, seed),
            Family::Connected => random_connected(n, 0.1, max_w, seed),
            Family::Ring => ring(n),
            Family::Grid => {
                let rows = (n as f64).sqrt().floor().max(1.0) as usize;
                let cols = n.div_ceil(rows);
                let mut g = grid(rows, cols, max_w, seed);
                // Trim to exactly n vertices by rebuilding if oversized.
                if rows * cols != n {
                    let mut m = WeightMatrix::new(n);
                    for (i, j, w) in g.edges() {
                        if i < n && j < n {
                            m.set(i, j, w);
                        }
                    }
                    g = m;
                }
                g
            }
            Family::Star => star(n, 0, max_w, seed),
            Family::Dag => random_dag(n, 0.3, max_w, seed),
            Family::Geometric => geometric(n, 0.35, max_w, seed),
            Family::Complete => complete(n, max_w, seed),
            Family::Tree => tree(n, max_w, seed),
            Family::Layered => layered(n, 4.min(n), max_w, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::INF;

    #[test]
    fn random_digraph_is_seed_deterministic() {
        let a = random_digraph(12, 0.3, 50, 7);
        let b = random_digraph(12, 0.3, 50, 7);
        assert_eq!(a, b);
        let c = random_digraph(12, 0.3, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_digraph_density_roughly_holds() {
        let m = random_digraph(40, 0.5, 10, 42);
        let d = m.density();
        assert!((0.4..0.6).contains(&d), "density {d}");
    }

    #[test]
    fn ring_has_n_edges_and_unit_weights() {
        let m = ring(6);
        assert_eq!(m.edge_count(), 6);
        for (_, _, w) in m.edges() {
            assert_eq!(w, 1);
        }
        assert!(m.has_edge(5, 0));
    }

    #[test]
    fn path_is_open() {
        let m = path(5);
        assert_eq!(m.edge_count(), 4);
        assert!(!m.has_edge(4, 0));
    }

    #[test]
    fn padded_path_has_diameter_p() {
        let m = padded_path(10, 3);
        assert!(m.has_edge(0, 1) && m.has_edge(2, 3));
        // Extra vertices jump straight to vertex p.
        for v in 4..10 {
            assert!(m.has_edge(v, 3), "vertex {v}");
            assert_eq!(m.out_degree(v), 1);
        }
    }

    #[test]
    fn grid_edges_are_bidirectional() {
        let m = grid(3, 4, 9, 1);
        for (i, j, _) in m.edges() {
            assert!(m.has_edge(j, i), "missing reverse of {i}->{j}");
        }
        // Interior vertex degree 4.
        assert_eq!(m.out_degree(5), 4);
    }

    #[test]
    fn star_points_at_center() {
        let m = star(7, 2, 5, 3);
        assert_eq!(m.in_degree(2), 6);
        assert_eq!(m.out_degree(2), 0);
    }

    #[test]
    fn dag_has_no_back_edges() {
        let m = random_dag(15, 0.5, 20, 11);
        for (i, j, _) in m.edges() {
            assert!(i < j);
        }
    }

    #[test]
    fn geometric_is_symmetric_with_positive_weights() {
        let m = geometric(20, 0.5, 100, 5);
        for (i, j, w) in m.edges() {
            assert_eq!(m.get(j, i), w);
            assert!(w >= 1);
        }
    }

    #[test]
    fn connected_generator_reaches_everything() {
        let m = random_connected(10, 0.05, 9, 2);
        // The forced cycle guarantees a finite path i -> j for all pairs.
        let dist = crate::reference::bellman_ford_to_dest(&m, 0).dist;
        assert!(dist.iter().all(|&d| d != INF));
    }

    #[test]
    fn families_build_at_requested_size() {
        for f in Family::ALL {
            let m = f.build(9, 10, 13);
            assert_eq!(m.n(), 9, "{}", f.label());
        }
    }

    #[test]
    fn complete_has_all_edges() {
        let m = complete(5, 10, 1);
        assert_eq!(m.edge_count(), 20);
    }

    #[test]
    fn tree_is_a_tree_towards_root() {
        let m = tree(12, 9, 4);
        assert_eq!(m.edge_count(), 11);
        for (i, j, _) in m.edges() {
            assert!(j < i, "edges point to lower indices (towards the root)");
        }
        // Every non-root vertex has exactly one out-edge, so everything
        // reaches vertex 0.
        for v in 1..12 {
            assert_eq!(m.out_degree(v), 1, "vertex {v}");
        }
        let dist = crate::reference::bellman_ford_to_dest(&m, 0).dist;
        assert!(dist.iter().all(|&d| d != INF));
    }

    #[test]
    fn layered_edges_go_one_layer_down() {
        let n = 16;
        let layers = 4;
        let m = layered(n, layers, 7, 2);
        let per = n.div_ceil(layers);
        for (i, j, _) in m.edges() {
            let li = (i / per).min(layers - 1);
            let lj = (j / per).min(layers - 1);
            assert_eq!(li, lj + 1, "edge {i}->{j} skips layers");
        }
        // Destination in layer 0: path lengths bounded by layers - 1.
        let r = crate::reference::bellman_ford_to_dest(&m, 0);
        assert!(r.rounds < layers, "rounds {}", r.rounds);
    }

    #[test]
    fn layered_single_layer_is_edgeless() {
        let m = layered(5, 1, 9, 3);
        assert_eq!(m.edge_count(), 0);
    }
}
