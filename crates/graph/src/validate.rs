//! Validation of single-destination shortest-path solutions.
//!
//! Minimum-cost paths are generally not unique, so comparing `PTN`
//! pointers against an oracle's pointers would reject correct answers.
//! The right check — used by every integration test and by experiment
//! T5 — is two-fold:
//!
//! 1. the *cost vector* must equal the oracle's exactly, and
//! 2. every finite-cost vertex's successor chain must reach the
//!    destination with edge weights summing to its claimed cost
//!    (which proves the pointers encode *some* optimal path).

use crate::matrix::{Weight, WeightMatrix, INF};
use crate::reference::bellman_ford_to_dest;
use std::fmt;

/// A reason a candidate solution failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Cost vector disagrees with the oracle at `vertex`.
    WrongCost {
        /// Vertex with the wrong cost.
        vertex: usize,
        /// Cost the candidate claims.
        claimed: Weight,
        /// Cost the oracle computes.
        oracle: Weight,
    },
    /// The successor chain from `vertex` does not reach the destination
    /// (missing edge, self-pointing interior vertex, or a cycle).
    BrokenChain {
        /// Vertex whose chain is broken.
        vertex: usize,
    },
    /// The successor chain from `vertex` reaches the destination but its
    /// edge weights sum to `actual`, not the claimed cost.
    CostMismatch {
        /// Vertex whose path re-sums differently.
        vertex: usize,
        /// Cost the candidate claims.
        claimed: Weight,
        /// Cost obtained by re-summing the chain's edges.
        actual: Weight,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongCost {
                vertex,
                claimed,
                oracle,
            } => write!(
                f,
                "vertex {vertex}: claimed cost {claimed}, oracle says {oracle}"
            ),
            Violation::BrokenChain { vertex } => {
                write!(
                    f,
                    "vertex {vertex}: successor chain does not reach the destination"
                )
            }
            Violation::CostMismatch {
                vertex,
                claimed,
                actual,
            } => write!(
                f,
                "vertex {vertex}: path re-sums to {actual}, claimed {claimed}"
            ),
        }
    }
}

/// Validates a candidate `(sow, ptn)` solution for destination `d`.
///
/// `sow[i]` is the claimed cost from `i` to `d` (`INF` = unreachable);
/// `ptn[i]` the claimed successor. Conventions at the destination itself
/// (`sow[d]`, `ptn[d]`) are not checked — the paper leaves them
/// meaningless. Returns all violations found (empty = valid).
pub fn validate_solution(
    w: &WeightMatrix,
    d: usize,
    sow: &[Weight],
    ptn: &[usize],
) -> Vec<Violation> {
    let n = w.n();
    assert_eq!(sow.len(), n, "sow length mismatch");
    assert_eq!(ptn.len(), n, "ptn length mismatch");
    let oracle = bellman_ford_to_dest(w, d);
    let mut violations = Vec::new();
    for i in 0..n {
        if i == d {
            continue;
        }
        if sow[i] != oracle.dist[i] {
            violations.push(Violation::WrongCost {
                vertex: i,
                claimed: sow[i],
                oracle: oracle.dist[i],
            });
            continue;
        }
        if sow[i] == INF {
            continue; // correctly unreachable; pointer is meaningless
        }
        // Walk the chain and re-sum.
        let mut cur = i;
        let mut cost: Weight = 0;
        let mut hops = 0usize;
        let mut ok = true;
        while cur != d {
            let nxt = ptn[cur];
            if nxt >= n || !w.has_edge(cur, nxt) || hops > n {
                violations.push(Violation::BrokenChain { vertex: i });
                ok = false;
                break;
            }
            cost += w.get(cur, nxt);
            cur = nxt;
            hops += 1;
        }
        if ok && cost != sow[i] {
            violations.push(Violation::CostMismatch {
                vertex: i,
                claimed: sow[i],
                actual: cost,
            });
        }
    }
    violations
}

/// `true` iff the candidate solution is optimal (no violations).
pub fn is_valid_solution(w: &WeightMatrix, d: usize, sow: &[Weight], ptn: &[usize]) -> bool {
    validate_solution(w, d, sow, ptn).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn fixture() -> (WeightMatrix, usize) {
        (
            WeightMatrix::from_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 3, 5), (2, 3, 2)]),
            3,
        )
    }

    #[test]
    fn oracle_solution_validates() {
        let (w, d) = fixture();
        let r = bellman_ford_to_dest(&w, d);
        assert!(is_valid_solution(&w, d, &r.dist, &r.next));
    }

    #[test]
    fn alternative_optimal_pointers_validate() {
        // Two equal-cost routes 0 -> 3: direct (cost 2) vs via 1 (cost 2).
        let w = WeightMatrix::from_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 3, 2), (2, 3, 1)]);
        let sow = vec![2, 1, 1, 0];
        // Direct pointer...
        assert!(is_valid_solution(&w, 3, &sow, &[3, 3, 3, 3]));
        // ...and the detour pointer are both accepted.
        assert!(is_valid_solution(&w, 3, &sow, &[1, 3, 3, 3]));
    }

    #[test]
    fn wrong_cost_detected() {
        let (w, d) = fixture();
        let r = bellman_ford_to_dest(&w, d);
        let mut sow = r.dist.clone();
        sow[0] += 1;
        let v = validate_solution(&w, d, &sow, &r.next);
        assert!(matches!(v[0], Violation::WrongCost { vertex: 0, .. }));
    }

    #[test]
    fn broken_chain_detected() {
        let (w, d) = fixture();
        let r = bellman_ford_to_dest(&w, d);
        let mut ptn = r.next.clone();
        ptn[0] = 2; // edge 0 -> 2 does not exist
        let v = validate_solution(&w, d, &r.dist, &ptn);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::BrokenChain { vertex: 0 })));
    }

    #[test]
    fn cycle_in_pointers_detected() {
        let w = WeightMatrix::from_edges(4, &[(0, 1, 1), (1, 0, 1), (1, 3, 1), (0, 3, 2)]);
        let sow = vec![2, 1, INF, 0];
        let ptn = vec![1, 0, 2, 3]; // 0 <-> 1 loop never reaches 3
        let v = validate_solution(&w, 3, &sow, &ptn);
        assert!(v.iter().any(|x| matches!(x, Violation::BrokenChain { .. })));
    }

    #[test]
    fn suboptimal_but_consistent_path_detected_via_cost() {
        let (w, d) = fixture();
        // Claim the direct 0 -> 3 edge (cost 5) instead of the optimum (2).
        let sow = vec![5, 1, 2, 0];
        let ptn = vec![3, 3, 3, 3];
        let v = validate_solution(&w, d, &sow, &ptn);
        assert!(matches!(v[0], Violation::WrongCost { vertex: 0, .. }));
    }

    #[test]
    fn unreachable_vertices_need_no_pointer() {
        let w = WeightMatrix::from_edges(3, &[(0, 1, 1)]);
        let sow = vec![1, 0, INF];
        let ptn = vec![1, 1, 2];
        assert!(is_valid_solution(&w, 1, &sow, &ptn));
    }

    #[test]
    fn mismatched_resum_detected() {
        let w = WeightMatrix::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 2)]);
        // Cost vector is right, but pointer walks the 2-hop route while a
        // doctored weight makes the claim unsummable: claim 2 via direct
        // edge... instead corrupt pointer to a longer-cost chain.
        let sow = vec![2, 1, 0];
        let ptn_ok = vec![2, 2, 2];
        assert!(is_valid_solution(&w, 2, &sow, &ptn_ok));
        // Pointing 0 -> 1 also sums to 2 (1 + 1): still valid.
        assert!(is_valid_solution(&w, 2, &sow, &[1, 2, 2]));
    }

    #[test]
    fn random_oracles_always_validate() {
        for seed in 0..20 {
            let w = gen::random_digraph(14, 0.25, 30, seed);
            let d = (seed as usize) % 14;
            let r = bellman_ford_to_dest(&w, d);
            assert!(
                is_valid_solution(&w, d, &r.dist, &r.next),
                "seed {seed}: {:?}",
                validate_solution(&w, d, &r.dist, &r.next)
            );
        }
    }
}
