//! # ppa-graph — graph substrate for the PPA minimum-cost-path suite
//!
//! The MCP problem of the paper takes a directed graph `G = (V, E)`
//! represented by its dense weight matrix `W` (`w_ij` is the weight of the
//! edge from vertex `i` to vertex `j`, `MAXINT` if absent) and one
//! destination vertex `d`; it asks for the minimum-cost path from *every*
//! vertex to `d`. This crate provides everything around that problem that
//! is not the PPA itself:
//!
//! * [`WeightMatrix`] — the dense matrix with the paper's `MAXINT`
//!   ("infinite") convention for absent edges ([`matrix`]);
//! * [`gen`] — seeded workload generators (random digraphs, rings, paths,
//!   grids, stars, DAGs, geometric/road-like graphs, complete graphs);
//! * [`reference`](mod@reference) — sequential oracles: the Bellman-Ford dynamic program
//!   the paper parallelizes, Dijkstra, and Floyd-Warshall;
//! * [`validate`] — checkers proving a parallel result optimal: cost-vector
//!   equality against the oracle plus walking the `PTN` successor pointers
//!   and re-summing edge weights.
//!
//! Everything is deterministic given a seed, so every experiment in
//! EXPERIMENTS.md regenerates bit-identical workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over multiple parallel arrays are the dominant idiom in
// this numeric code; the iterator rewrites clippy suggests obscure the
// row/column index math that mirrors the paper's notation.
#![allow(clippy::needless_range_loop)]

pub mod gen;
pub mod io;
pub mod matrix;
pub mod reference;
pub mod validate;

pub use matrix::{MatrixError, Weight, WeightMatrix, INF};
