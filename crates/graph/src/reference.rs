//! Sequential reference algorithms (oracles).
//!
//! [`bellman_ford_to_dest`] is *exactly* the dynamic program the paper
//! parallelizes (Section 3): start from the one-edge costs to the
//! destination and repeatedly allow paths one edge longer until nothing
//! improves. Its per-round structure also yields `p` — the maximum MCP
//! hop-length — which parameterizes every complexity claim.
//! [`dijkstra_to_dest`] and [`floyd_warshall`] are independent oracles used
//! to cross-check both the parallel algorithms and Bellman-Ford itself.

use crate::matrix::{Weight, WeightMatrix, INF};

/// Result of the single-destination shortest-path oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestPaths {
    /// Destination vertex.
    pub dest: usize,
    /// `dist[i]` = minimum cost of a path `i -> ... -> dest`
    /// ([`INF`] if unreachable). `dist[dest] == 0` by convention.
    pub dist: Vec<Weight>,
    /// `next[i]` = successor of `i` on some minimum-cost path to `dest`
    /// (`next[dest] == dest`; `next[i] == i` marks "no path").
    pub next: Vec<usize>,
    /// Number of improvement rounds performed: the maximum hop-length `p`
    /// over all minimum-cost paths (0 for a star seen from its centre).
    pub rounds: usize,
}

impl DestPaths {
    /// Reconstructs the vertex sequence from `from` to the destination by
    /// following `next` pointers; `None` if unreachable.
    pub fn path_from(&self, from: usize) -> Option<Vec<usize>> {
        if self.dist[from] == INF {
            return None;
        }
        let mut path = vec![from];
        let mut cur = from;
        while cur != self.dest {
            let nxt = self.next[cur];
            if nxt == cur || path.len() > self.dist.len() {
                return None; // corrupt pointers; callers treat as failure
            }
            path.push(nxt);
            cur = nxt;
        }
        Some(path)
    }
}

/// The paper's dynamic program, run sequentially: all-vertices-to-`d`
/// minimum cost paths by repeated one-edge extension.
///
/// Complexity `O(p * n^2)` for `p` improvement rounds — the sequential
/// baseline of experiment T4.
///
/// # Panics
/// Panics if `d >= w.n()`.
pub fn bellman_ford_to_dest(w: &WeightMatrix, d: usize) -> DestPaths {
    let n = w.n();
    assert!(d < n, "destination {d} out of range");
    // Round 0: one-edge paths (the paper's Step 1).
    let mut dist: Vec<Weight> = (0..n).map(|i| w.get(i, d)).collect();
    let mut next: Vec<usize> = (0..n)
        .map(|i| if w.get(i, d) != INF { d } else { i })
        .collect();
    dist[d] = 0;
    next[d] = d;
    let mut rounds = 0;
    loop {
        let mut changed = false;
        let mut new_dist = dist.clone();
        let mut new_next = next.clone();
        for i in 0..n {
            if i == d {
                continue;
            }
            for j in 0..n {
                let wij = w.get(i, j);
                if wij == INF || dist[j] == INF {
                    continue;
                }
                let cand = wij.saturating_add(dist[j]);
                if cand < new_dist[i] {
                    new_dist[i] = cand;
                    new_next[i] = j;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        dist = new_dist;
        next = new_next;
        rounds += 1;
        debug_assert!(
            rounds <= n,
            "non-negative weights must converge in n rounds"
        );
    }
    DestPaths {
        dest: d,
        dist,
        next,
        rounds,
    }
}

/// Dijkstra on the reverse graph: an independent oracle for the same
/// all-to-one problem, `O(n^2)` with a dense priority scan.
pub fn dijkstra_to_dest(w: &WeightMatrix, d: usize) -> Vec<Weight> {
    let n = w.n();
    assert!(d < n, "destination {d} out of range");
    // Work on reversed edges so a forward Dijkstra from `d` gives costs
    // *to* `d` in the original orientation.
    let mut dist = vec![INF; n];
    let mut done = vec![false; n];
    dist[d] = 0;
    for _ in 0..n {
        let mut u = None;
        let mut best = INF;
        for v in 0..n {
            if !done[v] && dist[v] < best {
                best = dist[v];
                u = Some(v);
            }
        }
        let Some(u) = u else { break };
        done[u] = true;
        for v in 0..n {
            // Reverse edge u <- v, i.e. original edge v -> u.
            let wvu = w.get(v, u);
            if wvu != INF && dist[u] != INF {
                let cand = dist[u].saturating_add(wvu);
                if cand < dist[v] {
                    dist[v] = cand;
                }
            }
        }
    }
    dist
}

/// All-pairs shortest paths; `result[i][j]` = min cost `i -> j`
/// (`0` on the diagonal).
pub fn floyd_warshall(w: &WeightMatrix) -> Vec<Vec<Weight>> {
    let n = w.n();
    let mut d: Vec<Vec<Weight>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0 } else { w.get(i, j) })
                .collect()
        })
        .collect();
    for k in 0..n {
        for i in 0..n {
            if d[i][k] == INF {
                continue;
            }
            for j in 0..n {
                if d[k][j] == INF {
                    continue;
                }
                let cand = d[i][k].saturating_add(d[k][j]);
                if cand < d[i][j] {
                    d[i][j] = cand;
                }
            }
        }
    }
    d
}

/// Minimum hop counts to `d` (unweighted BFS on reverse edges):
/// `result[i]` = fewest edges on any path `i -> d`, `None` if unreachable,
/// `Some(0)` at the destination. Oracle for the PPA `hop_levels` run.
pub fn hop_counts(w: &WeightMatrix, d: usize) -> Vec<Option<usize>> {
    let n = w.n();
    assert!(d < n, "destination {d} out of range");
    let mut level = vec![None; n];
    level[d] = Some(0);
    let mut frontier = vec![d];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for u in 0..n {
                if level[u].is_none() && w.has_edge(u, v) {
                    level[u] = Some(depth);
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    level
}

/// Boolean reachability closure: `result[i][j]` = "some path i -> j exists"
/// (vertices reach themselves). Oracle for the PPA transitive-closure
/// extension.
pub fn transitive_closure(w: &WeightMatrix) -> Vec<Vec<bool>> {
    let n = w.n();
    let mut r: Vec<Vec<bool>> = (0..n)
        .map(|i| (0..n).map(|j| i == j || w.has_edge(i, j)).collect())
        .collect();
    for k in 0..n {
        for i in 0..n {
            if r[i][k] {
                for j in 0..n {
                    if r[k][j] {
                        r[i][j] = true;
                    }
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bellman_ford_on_tiny_graph() {
        // 0 -> 1 (1), 1 -> 2 (1), 0 -> 2 (5): best 0 -> 2 is via 1, cost 2.
        let w = WeightMatrix::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 5)]);
        let r = bellman_ford_to_dest(&w, 2);
        assert_eq!(r.dist, vec![2, 1, 0]);
        assert_eq!(r.next[0], 1);
        assert_eq!(r.next[1], 2);
        assert_eq!(r.path_from(0), Some(vec![0, 1, 2]));
    }

    #[test]
    fn bellman_ford_marks_unreachable() {
        let w = WeightMatrix::from_edges(3, &[(0, 1, 1)]);
        let r = bellman_ford_to_dest(&w, 1);
        assert_eq!(r.dist[0], 1);
        assert_eq!(r.dist[2], INF);
        assert_eq!(r.path_from(2), None);
    }

    #[test]
    fn ring_needs_n_minus_one_rounds_to_converge() {
        let w = gen::ring(8);
        let r = bellman_ford_to_dest(&w, 0);
        // Vertex 1 is n-1 hops from 0; detecting convergence takes one
        // extra no-change pass, but `rounds` counts only improving passes.
        assert_eq!(r.dist[1], 7);
        assert!(r.rounds >= 6, "rounds={}", r.rounds);
        assert!(r.rounds <= 7, "rounds={}", r.rounds);
    }

    #[test]
    fn star_converges_instantly() {
        let w = gen::star(6, 0, 9, 3);
        let r = bellman_ford_to_dest(&w, 0);
        assert_eq!(r.rounds, 0);
        assert!((1..6).all(|i| r.dist[i] != INF));
    }

    #[test]
    fn dijkstra_agrees_with_bellman_ford() {
        for seed in 0..10 {
            let w = gen::random_digraph(15, 0.3, 30, seed);
            let bf = bellman_ford_to_dest(&w, 4);
            let dj = dijkstra_to_dest(&w, 4);
            assert_eq!(bf.dist, dj, "seed {seed}");
        }
    }

    #[test]
    fn floyd_warshall_agrees_columnwise() {
        let w = gen::random_connected(12, 0.2, 20, 99);
        let fw = floyd_warshall(&w);
        for d in 0..12 {
            let bf = bellman_ford_to_dest(&w, d);
            for i in 0..12 {
                assert_eq!(fw[i][d], bf.dist[i], "i={i} d={d}");
            }
        }
    }

    #[test]
    fn paths_resum_to_dist() {
        let w = gen::random_connected(10, 0.3, 25, 5);
        let r = bellman_ford_to_dest(&w, 3);
        for i in 0..10 {
            let p = r.path_from(i).expect("connected");
            let mut cost = 0;
            for k in 0..p.len() - 1 {
                cost += w.get(p[k], p[k + 1]);
            }
            assert_eq!(cost, r.dist[i], "from {i}");
        }
    }

    #[test]
    fn closure_matches_finite_distances() {
        let w = gen::random_digraph(12, 0.15, 9, 21);
        let tc = transitive_closure(&w);
        let fw = floyd_warshall(&w);
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(tc[i][j], fw[i][j] != INF, "{i}->{j}");
            }
        }
    }

    #[test]
    fn path_from_dest_is_trivial() {
        let w = gen::ring(5);
        let r = bellman_ford_to_dest(&w, 2);
        assert_eq!(r.path_from(2), Some(vec![2]));
        assert_eq!(r.dist[2], 0);
    }
}
