//! Reading and writing weight matrices.
//!
//! Two formats:
//!
//! * the **native edge list** — a line-oriented text format:
//!   ```text
//!   # comment
//!   n 5
//!   e 0 1 7      # edge 0 -> 1 with weight 7
//!   ```
//! * a subset of the **DIMACS shortest-path format** (`.gr`), the common
//!   interchange format for road-network benchmarks:
//!   ```text
//!   c comment
//!   p sp 5 7
//!   a 1 2 7      (vertices are 1-based)
//!   ```
//!
//! Both parsers reject self-loops, repeated `n`/`p` headers, out-of-range
//! endpoints and non-positive weights with positioned error messages.

use crate::matrix::{Weight, WeightMatrix};
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the native edge-list format.
pub fn parse_edge_list(text: &str) -> Result<WeightMatrix, ParseError> {
    let mut matrix: Option<WeightMatrix> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                if matrix.is_some() {
                    return Err(ParseError::new(lineno, "duplicate `n` header"));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| ParseError::new(lineno, "`n` needs a vertex count"))?
                    .parse()
                    .map_err(|_| ParseError::new(lineno, "invalid vertex count"))?;
                if n == 0 {
                    return Err(ParseError::new(lineno, "vertex count must be positive"));
                }
                matrix = Some(WeightMatrix::new(n));
            }
            Some("e") => {
                let m = matrix
                    .as_mut()
                    .ok_or_else(|| ParseError::new(lineno, "`e` before `n` header"))?;
                let mut field = |what: &str| -> Result<i64, ParseError> {
                    parts
                        .next()
                        .ok_or_else(|| ParseError::new(lineno, format!("`e` missing {what}")))?
                        .parse::<i64>()
                        .map_err(|_| ParseError::new(lineno, format!("invalid {what}")))
                };
                let from = field("source")?;
                let to = field("target")?;
                let weight: Weight = field("weight")?;
                let n = m.n() as i64;
                if !(0..n).contains(&from) || !(0..n).contains(&to) {
                    return Err(ParseError::new(lineno, "endpoint out of range"));
                }
                if from == to {
                    return Err(ParseError::new(lineno, "self-loops are not allowed"));
                }
                if weight < 0 {
                    return Err(ParseError::new(lineno, "weights must be non-negative"));
                }
                m.set(from as usize, to as usize, weight);
            }
            Some(other) => {
                return Err(ParseError::new(
                    lineno,
                    format!("unknown record `{other}` (expected `n` or `e`)"),
                ))
            }
            None => unreachable!("empty lines skipped"),
        }
    }
    matrix.ok_or_else(|| ParseError::new(0, "missing `n` header"))
}

/// Serializes to the native edge-list format (stable ordering).
pub fn to_edge_list(w: &WeightMatrix) -> String {
    let mut out = format!("n {}\n", w.n());
    for (i, j, weight) in w.edges() {
        out.push_str(&format!("e {i} {j} {weight}\n"));
    }
    out
}

/// Parses the DIMACS `.gr` subset (`c` comments, one `p sp <n> <m>`
/// header, `a <from> <to> <weight>` arcs with 1-based vertices).
pub fn parse_dimacs(text: &str) -> Result<WeightMatrix, ParseError> {
    let mut matrix: Option<WeightMatrix> = None;
    let mut declared_arcs: Option<usize> = None;
    let mut seen_arcs = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if matrix.is_some() {
                    return Err(ParseError::new(lineno, "duplicate `p` header"));
                }
                if parts.next() != Some("sp") {
                    return Err(ParseError::new(lineno, "expected `p sp <n> <m>`"));
                }
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::new(lineno, "invalid vertex count"))?;
                let m: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::new(lineno, "invalid arc count"))?;
                if n == 0 {
                    return Err(ParseError::new(lineno, "vertex count must be positive"));
                }
                matrix = Some(WeightMatrix::new(n));
                declared_arcs = Some(m);
            }
            Some("a") => {
                let m = matrix
                    .as_mut()
                    .ok_or_else(|| ParseError::new(lineno, "`a` before `p` header"))?;
                let mut field = |what: &str| -> Result<i64, ParseError> {
                    parts
                        .next()
                        .ok_or_else(|| ParseError::new(lineno, format!("`a` missing {what}")))?
                        .parse::<i64>()
                        .map_err(|_| ParseError::new(lineno, format!("invalid {what}")))
                };
                let from = field("source")?;
                let to = field("target")?;
                let weight: Weight = field("weight")?;
                let n = m.n() as i64;
                if !(1..=n).contains(&from) || !(1..=n).contains(&to) {
                    return Err(ParseError::new(lineno, "endpoint out of range (1-based)"));
                }
                if from == to {
                    return Err(ParseError::new(lineno, "self-loops are not allowed"));
                }
                if weight < 0 {
                    return Err(ParseError::new(lineno, "weights must be non-negative"));
                }
                m.set(from as usize - 1, to as usize - 1, weight);
                seen_arcs += 1;
            }
            Some(other) => {
                return Err(ParseError::new(lineno, format!("unknown record `{other}`")))
            }
            None => unreachable!("empty lines skipped"),
        }
    }
    let matrix = matrix.ok_or_else(|| ParseError::new(0, "missing `p sp` header"))?;
    if let Some(declared) = declared_arcs {
        if declared != seen_arcs {
            return Err(ParseError::new(
                0,
                format!("header declares {declared} arcs, file has {seen_arcs}"),
            ));
        }
    }
    Ok(matrix)
}

/// Auto-detects the format (`p sp` header => DIMACS, otherwise the
/// native edge list).
pub fn parse_auto(text: &str) -> Result<WeightMatrix, ParseError> {
    let dimacs = text.lines().any(|l| l.trim_start().starts_with("p sp"));
    if dimacs {
        parse_dimacs(text)
    } else {
        parse_edge_list(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let w = crate::gen::random_digraph(9, 0.3, 20, 5);
        let text = to_edge_list(&w);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn edge_list_with_comments_and_blanks() {
        let w = parse_edge_list("# header\n\nn 3\ne 0 1 5 # inline\n\ne 2 0 1\n").unwrap();
        assert_eq!(w.n(), 3);
        assert_eq!(w.get(0, 1), 5);
        assert_eq!(w.get(2, 0), 1);
    }

    #[test]
    fn edge_list_errors_are_positioned() {
        let e = parse_edge_list("n 3\ne 0 0 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("self-loop"));
        let e = parse_edge_list("e 0 1 1\n").unwrap_err();
        assert!(e.message.contains("before `n`"));
        let e = parse_edge_list("n 2\ne 0 5 1\n").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_edge_list("n 2\ne 0 1 -3\n").unwrap_err();
        assert!(e.message.contains("non-negative"));
        let e = parse_edge_list("n 2\nn 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = parse_edge_list("x 1\n").unwrap_err();
        assert!(e.message.contains("unknown record"));
        let e = parse_edge_list("").unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn dimacs_parses_one_based_arcs() {
        let w = parse_dimacs("c demo\np sp 4 2\na 1 2 9\na 4 1 3\n").unwrap();
        assert_eq!(w.n(), 4);
        assert_eq!(w.get(0, 1), 9);
        assert_eq!(w.get(3, 0), 3);
        assert_eq!(w.edge_count(), 2);
    }

    #[test]
    fn dimacs_checks_arc_count() {
        let e = parse_dimacs("p sp 3 2\na 1 2 1\n").unwrap_err();
        assert!(e.message.contains("declares 2 arcs"), "{e}");
    }

    #[test]
    fn dimacs_rejects_zero_based_and_loops() {
        let e = parse_dimacs("p sp 3 1\na 0 1 1\n").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_dimacs("p sp 3 1\na 2 2 1\n").unwrap_err();
        assert!(e.message.contains("self-loop"));
    }

    #[test]
    fn auto_detection() {
        let native = parse_auto("n 2\ne 0 1 4\n").unwrap();
        assert_eq!(native.get(0, 1), 4);
        let dimacs = parse_auto("p sp 2 1\na 1 2 4\n").unwrap();
        assert_eq!(dimacs.get(0, 1), 4);
        assert_eq!(native, dimacs);
    }
}
