//! The metrics registry: named counters and histograms, snapshotable to
//! JSON and reconstructible from it (exact round-trip).
//!
//! Counter naming convention used across the workspace:
//! * `steps.<op>` — controller steps by instruction class (`steps.alu`,
//!   `steps.broadcast`, ...); their sum reconciles with
//!   `Controller::report().total()`.
//! * `bus.transactions` / `bus.clusters` — reconfigurable-bus activity.
//! * `mask.active_pes` / `mask.writes` — PE-activity occupancy accounting.
//!
//! Histograms use log2 buckets: bucket `i` counts samples `v` with
//! `floor(log2(v)) == i` (`v == 0` goes to bucket 0), enough resolution to
//! see "steps per iteration is flat" at a glance.

use crate::json::Json;
use std::collections::BTreeMap;

/// Number of log2 buckets (covers u64 range).
pub const BUCKETS: usize = 64;

/// A log2-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: Box<[u64; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; BUCKETS]),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (63 - v.leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile sample (`0.0 < q <= 1.0`) at
    /// the histogram's log2 bucket resolution: the inclusive upper edge
    /// of the first bucket where the cumulative count reaches
    /// `ceil(q * count)`, clamped to the exact maximum. Used by the
    /// serving layer to report p50 and p99 latency straight from a
    /// metrics snapshot.
    ///
    /// Edge cases are typed, never sentinel values: an **empty**
    /// histogram returns `None` for every `q` (an idle service has no
    /// latency, not latency 0), a **single-sample** histogram returns
    /// exactly that sample for every `q`, and a non-finite `q` returns
    /// `None` rather than whatever a saturating float cast would pick.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !q.is_finite() {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let edge = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(edge.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Smallest sample as a typed value: `None` when the histogram is
    /// empty (the raw `min` field holds a `u64::MAX` sentinel in that
    /// state, which must never leak into a snapshot).
    pub fn min_sample(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample: `None` when the histogram is empty (the raw `max`
    /// field reads 0, indistinguishable from a real 0 sample).
    pub fn max_sample(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            (
                "min",
                if self.count == 0 {
                    Json::Null
                } else {
                    self.min.into()
                },
            ),
            ("max", self.max.into()),
            ("mean", self.mean().into()),
            (
                "buckets",
                Json::Array(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(i, c)| Json::Array(vec![i.into(), c.into()]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Histogram, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("histogram missing `{k}`"));
        let num = |k: &str| field(k)?.as_u64().ok_or_else(|| format!("`{k}` not a u64"));
        let mut h = Histogram {
            count: num("count")?,
            sum: num("sum")?,
            min: match field("min")? {
                Json::Null => u64::MAX,
                other => other.as_u64().ok_or("`min` not a u64")?,
            },
            max: num("max")?,
            buckets: Box::new([0; BUCKETS]),
        };
        let buckets = field("buckets")?
            .as_array()
            .ok_or("`buckets` not an array")?;
        for b in buckets {
            let pair = b.as_array().ok_or("bucket not a pair")?;
            let [i, c] = pair else {
                return Err("bucket pair wrong arity".into());
            };
            let i = i.as_u64().ok_or("bucket index not a u64")? as usize;
            if i >= BUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            h.buckets[i] = c.as_u64().ok_or("bucket count not a u64")?;
        }
        Ok(h)
    }
}

/// The metrics registry: named counters and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one histogram sample.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// counters as `counter` samples, histograms as cumulative
    /// `_bucket{le="..."}` series over the log2 bucket upper edges
    /// (`2^(i+1) - 1`) plus `_sum`/`_count`. Metric names are sanitized
    /// to the Prometheus charset (`.` and anything else outside
    /// `[a-zA-Z0-9_:]` becomes `_`), so `serve.latency_us` scrapes as
    /// `serve_latency_us`.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, c) in h.nonzero_buckets() {
                cumulative += c;
                let le = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge sample-exactly at bucket resolution).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
            for i in 0..BUCKETS {
                mine.buckets[i] += h.buckets[i];
            }
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the registry to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), v.into()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstructs a registry from [`Metrics::to_json`] output.
    ///
    /// # Errors
    /// A description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Metrics, String> {
        let mut m = Metrics::new();
        let counters = v.get("counters").ok_or("missing `counters`")?;
        let Json::Object(pairs) = counters else {
            return Err("`counters` not an object".into());
        };
        for (k, v) in pairs {
            m.counters.insert(
                k.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("counter `{k}` not a u64"))?,
            );
        }
        let hists = v.get("histograms").ok_or("missing `histograms`")?;
        let Json::Object(pairs) = hists else {
            return Err("`histograms` not an object".into());
        };
        for (k, v) in pairs {
            m.histograms.insert(k.clone(), Histogram::from_json(v)?);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("steps.alu", 2);
        m.inc("steps.alu", 3);
        assert_eq!(m.counter("steps.alu"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_tracks_stats_and_buckets() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 900] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 906);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 900);
        assert!((h.mean() - 181.2).abs() < 1e-9);
        // 0 and 1 share bucket 0; 2 and 3 share bucket 1; 900 in bucket 9.
        assert_eq!(h.nonzero_buckets(), vec![(0, 2), (1, 2), (9, 1)]);
    }

    #[test]
    fn prometheus_rendering_sanitizes_names_and_cumulates_buckets() {
        let mut m = Metrics::new();
        m.inc("serve.completed", 3);
        m.inc("net.conn_accepted", 1);
        for v in [0u64, 1, 2, 3, 900] {
            m.observe("serve.latency_us", v);
        }
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE serve_completed counter\nserve_completed 3\n"));
        assert!(text.contains("net_conn_accepted 1\n"));
        assert!(text.contains("# TYPE serve_latency_us histogram\n"));
        // Buckets cumulate: 0,1 -> le=1; 2,3 -> le=3; 900 -> le=1023.
        assert!(
            text.contains("serve_latency_us_bucket{le=\"1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_latency_us_bucket{le=\"3\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_latency_us_bucket{le=\"1023\"} 5\n"),
            "{text}"
        );
        assert!(
            text.contains("serve_latency_us_bucket{le=\"+Inf\"} 5\n"),
            "{text}"
        );
        assert!(text.contains("serve_latency_us_sum 906\n"));
        assert!(text.contains("serve_latency_us_count 5\n"));
        // The histograms iterator exposes the same registry view.
        let names: Vec<&str> = m.histograms().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["serve.latency_us"]);
        assert!(Metrics::new().render_prometheus().is_empty());
    }

    #[test]
    fn quantile_bound_tracks_bucket_edges() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile_bound(0.5), None);
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Median of 1..=100 is 50, inside bucket 5 (32..=63).
        assert_eq!(h.quantile_bound(0.5), Some(63));
        // p99 lands in the top bucket, clamped to the exact max.
        assert_eq!(h.quantile_bound(0.99), Some(100));
        assert_eq!(h.quantile_bound(1.0), Some(100));
        let mut one = Histogram::default();
        one.observe(7);
        assert_eq!(one.quantile_bound(0.5), Some(7));
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut m = Metrics::new();
        m.inc("steps.alu", 41);
        m.inc("bus.transactions", 7);
        m.observe("mcp.steps_per_iteration", 131);
        m.observe("mcp.steps_per_iteration", 131);
        m.observe("cluster.size", 0);
        let text = m.to_json().to_string_pretty();
        let back = Metrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_round_trips() {
        let m = Metrics::new();
        let back = Metrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert!(back.is_empty());
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = Metrics::new();
        a.inc("x", 1);
        a.observe("h", 4);
        let mut b = Metrics::new();
        b.inc("x", 2);
        b.inc("y", 5);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 12);
    }

    #[test]
    fn empty_and_single_sample_quantiles_are_typed() {
        // Idle-service introspection snapshots hit exactly these edges:
        // no latency samples yet, or a single one.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile_bound(q), None, "q = {q}");
        }
        assert_eq!(empty.min_sample(), None);
        assert_eq!(empty.max_sample(), None);
        assert_eq!(empty.mean(), 0.0);

        let mut one = Histogram::default();
        one.observe(0);
        assert_eq!(one.quantile_bound(0.5), Some(0));
        assert_eq!(one.quantile_bound(1.0), Some(0));
        assert_eq!(one.min_sample(), Some(0));
        assert_eq!(one.max_sample(), Some(0));

        let mut seven = Histogram::default();
        seven.observe(7);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(seven.quantile_bound(q), Some(7), "q = {q}");
        }
        assert_eq!(seven.quantile_bound(f64::NAN), None);
        assert_eq!(seven.quantile_bound(f64::INFINITY), None);
    }

    #[test]
    fn merge_collision_equals_interleaved_observation() {
        // Merging two registries that share counter and histogram keys
        // must equal having observed everything in one registry.
        let mut left = Metrics::new();
        let mut right = Metrics::new();
        let mut reference = Metrics::new();
        for (target, key, v) in [
            (0, "serve.latency_us", 3u64),
            (1, "serve.latency_us", 900),
            (0, "serve.latency_us", 900),
            (1, "queue.wait", 0),
            (0, "serve.latency_us", 17),
        ] {
            let m = if target == 0 { &mut left } else { &mut right };
            m.observe(key, v);
            reference.observe(key, v);
        }
        for (target, key, by) in [
            (0, "serve.accepted", 5u64),
            (1, "serve.accepted", 7),
            (1, "serve.retries", 2),
        ] {
            let m = if target == 0 { &mut left } else { &mut right };
            m.inc(key, by);
            reference.inc(key, by);
        }
        left.merge(&right);
        assert_eq!(left, reference);
        // The collided histogram is sample-exact on all summary stats.
        let h = left.histogram("serve.latency_us").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 1820, 3, 900));
    }

    #[test]
    fn merge_with_empty_is_identity_and_commutes_on_disjoint_keys() {
        let mut a = Metrics::new();
        a.inc("x", 3);
        a.observe("h", 12);
        let snapshot = a.clone();
        a.merge(&Metrics::new());
        assert_eq!(a, snapshot);

        let mut empty = Metrics::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);

        let mut b = Metrics::new();
        b.inc("y", 1);
        b.observe("g", 4);
        let mut ab = snapshot.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&snapshot);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merged_registry_still_round_trips_exactly() {
        let mut a = Metrics::new();
        a.inc("k", 1);
        a.observe("h", 2);
        let mut b = Metrics::new();
        b.inc("k", 9);
        b.observe("h", 1 << 40);
        a.merge(&b);
        let back =
            Metrics::from_json(&Json::parse(&a.to_json().to_string_compact()).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Metrics::from_json(&Json::Null).is_err());
        let bad = Json::obj(vec![
            ("counters", Json::obj(vec![("k", Json::Str("no".into()))])),
            ("histograms", Json::obj(vec![])),
        ]);
        assert!(Metrics::from_json(&bad).is_err());
    }
}
