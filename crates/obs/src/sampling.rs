//! Sampling policy for per-instruction activity statistics.
//!
//! When an observer (trace sink or metrics registry) is attached, the
//! machine annotates every bus/mask instruction with its mask occupancy
//! (fraction of active PEs) and bus cluster count. Computing those numbers
//! is host-side work the simulated machine never performs — an `O(n^2)`
//! scan per instruction — so observed runs pay a wall-clock tax that pure
//! step counting does not. [`OccupancySampling`] makes that tax
//! configurable without changing any step counter: the policy gates only
//! the *statistics annotations*, never the step accounting itself.

/// How often an observed run computes per-instruction occupancy/cluster
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OccupancySampling {
    /// Never compute activity statistics (cheapest observed runs; the
    /// per-class step counters are unaffected).
    Off,
    /// Compute activity statistics on every `k`-th eligible instruction.
    /// `Sampled(1)` behaves like [`OccupancySampling::EveryStep`];
    /// `Sampled(0)` behaves like [`OccupancySampling::Off`].
    Sampled(u32),
    /// Compute activity statistics on every eligible instruction (the
    /// default, and the historical behavior).
    #[default]
    EveryStep,
}

impl OccupancySampling {
    /// Whether the `tick`-th eligible instruction (0-based) samples.
    pub fn samples_at(self, tick: u64) -> bool {
        match self {
            OccupancySampling::Off => false,
            OccupancySampling::Sampled(0) => false,
            OccupancySampling::Sampled(k) => tick % u64::from(k) == 0,
            OccupancySampling::EveryStep => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_step_always_samples() {
        for t in 0..10 {
            assert!(OccupancySampling::EveryStep.samples_at(t));
        }
    }

    #[test]
    fn off_never_samples() {
        for t in 0..10 {
            assert!(!OccupancySampling::Off.samples_at(t));
        }
    }

    #[test]
    fn sampled_hits_every_kth() {
        let s = OccupancySampling::Sampled(3);
        let hits: Vec<bool> = (0..7).map(|t| s.samples_at(t)).collect();
        assert_eq!(hits, vec![true, false, false, true, false, false, true]);
        assert!(!OccupancySampling::Sampled(0).samples_at(0));
        assert!(OccupancySampling::Sampled(1).samples_at(5));
    }
}
