//! A small self-contained JSON value type, printer, and parser.
//!
//! The experiment artifacts (tables, metrics snapshots, Chrome traces) are
//! machine-readable JSON; this module is the single serialization point the
//! whole workspace uses, so the artifact format has one implementation and
//! the test suite can parse what the tools emit without external crates.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion order (stable artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; stored as `f64` plus an exact integer mirror when
    /// the source was integral (so `u64` counters survive round-trips).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Object(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` (only when non-negative and integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object fields as an ordered map (empty for non-objects).
    pub fn fields(&self) -> BTreeMap<&str, &Json> {
        match self {
            Json::Object(pairs) => pairs.iter().map(|(k, v)| (k.as_str(), v)).collect(),
            _ => BTreeMap::new(),
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => out.push_str(&format_number(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        // `{}` on f64 always round-trips in Rust.
        format!("{v}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // {
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our emitters;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_parse_round_trip() {
        let v = Json::obj(vec![
            ("id", "T9".into()),
            ("count", 42u64.into()),
            ("share", 0.25.into()),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::Str("v\"x\n".into()))])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(Json::parse("18").unwrap().as_u64(), Some(18));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::parse(r#"{"a": [1, "two"], "b": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_control_chars() {
        let v = Json::Str("a\u{1}b".into());
        let s = v.to_string_compact();
        assert!(s.contains("\\u0001"), "{s}");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn integers_survive_round_trip_exactly() {
        let v = Json::from(9_007_199_254_740_990u64);
        let s = v.to_string_compact();
        assert_eq!(
            Json::parse(&s).unwrap().as_u64(),
            Some(9_007_199_254_740_990)
        );
    }
}
