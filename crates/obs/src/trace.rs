//! Hierarchical trace spans and the sinks that consume them.
//!
//! The simulated machine's notion of time is the *controller step index* —
//! the unit the paper's complexity claims are stated in — so every span and
//! event here is timestamped in steps, not wall-clock. Rendering a trace in
//! Perfetto therefore draws the complexity analysis literally: a `min` span
//! is `4h + 4` units wide no matter how long the host took to simulate it.
//!
//! Three sinks cover the use cases:
//! * [`MemorySink`] — in-memory record list, for tests and aggregation;
//! * [`JsonLinesSink`] — one JSON object per record, for streaming tools;
//! * [`ChromeTraceSink`] — Chrome `trace_event` format, loadable in
//!   Perfetto / `chrome://tracing`.
//!
//! All sinks are cheap-to-clone shared handles (`Arc<Mutex<_>>`): the
//! emitting side (a controller, a baseline meter) owns one clone while the
//! caller keeps another to harvest the result afterwards.

use crate::json::Json;
use std::io;
use std::sync::{Arc, Mutex};

/// One instruction-level trace event.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Instruction class label (e.g. `"alu"`, `"broadcast"`).
    pub class: &'a str,
    /// Controller step index at which the event starts.
    pub step: u64,
    /// Steps the event accounts for (1 for single instructions; batched
    /// emitters such as the baseline meters use larger spans).
    pub dur: u64,
    /// Statement/phase label, if the emitter attributes finer than spans.
    pub label: Option<&'a str>,
    /// Fraction of PEs active under the current mask, when known.
    pub occupancy: Option<f64>,
    /// Number of bus clusters driven, for bus transactions.
    pub clusters: Option<u64>,
}

impl<'a> Event<'a> {
    /// A bare event of `class` at `step` covering one step.
    pub fn new(class: &'a str, step: u64) -> Self {
        Event {
            class,
            step,
            dur: 1,
            label: None,
            occupancy: None,
            clusters: None,
        }
    }
}

/// Receiver of hierarchical spans and instruction events.
///
/// Implementations must tolerate unbalanced exits (an `exit_span` with no
/// matching `enter_span` is ignored) so emitters can be defensive.
pub trait TraceSink: Send {
    /// Opens a span named `name` at step `step`.
    fn enter_span(&mut self, name: &str, step: u64);
    /// Closes the innermost open span at step `step`.
    fn exit_span(&mut self, step: u64);
    /// Records one instruction-level event.
    fn event(&mut self, ev: &Event<'_>);
}

/// One record kept by [`MemorySink`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// Span opened.
    Enter {
        /// Span name.
        name: String,
        /// Step at which it opened.
        step: u64,
    },
    /// Span closed.
    Exit {
        /// Step at which it closed.
        step: u64,
    },
    /// Instruction event.
    Event {
        /// Instruction class label.
        class: String,
        /// Step index.
        step: u64,
        /// Steps accounted for.
        dur: u64,
        /// Optional statement label.
        label: Option<String>,
    },
}

#[derive(Debug, Default)]
struct MemoryInner {
    records: Vec<TraceRecord>,
}

/// In-memory sink: records everything for later inspection.
#[derive(Debug, Clone, Default)]
pub struct MemorySink(Arc<Mutex<MemoryInner>>);

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of all records so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.0.lock().expect("memory sink poisoned").records.clone()
    }

    /// Whether every `Exit` matches an `Enter` and nothing is left open.
    pub fn balanced(&self) -> bool {
        let mut depth = 0i64;
        for r in self.records() {
            match r {
                TraceRecord::Enter { .. } => depth += 1,
                TraceRecord::Exit { .. } => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                TraceRecord::Event { .. } => {}
            }
        }
        depth == 0
    }

    /// Aggregates event durations per span *path* (`"a > b"`), in order of
    /// first appearance. Events outside any span fall under `"(root)"`.
    pub fn span_totals(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        let mut stack: Vec<String> = Vec::new();
        for r in self.records() {
            match r {
                TraceRecord::Enter { name, .. } => stack.push(name),
                TraceRecord::Exit { .. } => {
                    stack.pop();
                }
                TraceRecord::Event { dur, .. } => {
                    let path = if stack.is_empty() {
                        "(root)".to_owned()
                    } else {
                        stack.join(" > ")
                    };
                    match out.iter_mut().find(|(p, _)| *p == path) {
                        Some((_, n)) => *n += dur,
                        None => out.push((path, dur)),
                    }
                }
            }
        }
        out
    }

    /// Total event duration across all records (= controller steps seen).
    pub fn total_steps(&self) -> u64 {
        self.records()
            .iter()
            .map(|r| match r {
                TraceRecord::Event { dur, .. } => *dur,
                _ => 0,
            })
            .sum()
    }
}

impl TraceSink for MemorySink {
    fn enter_span(&mut self, name: &str, step: u64) {
        self.0
            .lock()
            .expect("memory sink poisoned")
            .records
            .push(TraceRecord::Enter {
                name: name.to_owned(),
                step,
            });
    }

    fn exit_span(&mut self, step: u64) {
        self.0
            .lock()
            .expect("memory sink poisoned")
            .records
            .push(TraceRecord::Exit { step });
    }

    fn event(&mut self, ev: &Event<'_>) {
        self.0
            .lock()
            .expect("memory sink poisoned")
            .records
            .push(TraceRecord::Event {
                class: ev.class.to_owned(),
                step: ev.step,
                dur: ev.dur,
                label: ev.label.map(str::to_owned),
            });
    }
}

#[derive(Debug, Default)]
struct JsonLinesInner {
    lines: Vec<String>,
}

/// JSON-lines sink: one compact JSON object per span edge / event.
#[derive(Debug, Clone, Default)]
pub struct JsonLinesSink(Arc<Mutex<JsonLinesInner>>);

impl JsonLinesSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        JsonLinesSink::default()
    }

    fn push(&self, value: Json) {
        self.0
            .lock()
            .expect("jsonl sink poisoned")
            .lines
            .push(value.to_string_compact());
    }

    /// A copy of the emitted lines.
    pub fn lines(&self) -> Vec<String> {
        self.0.lock().expect("jsonl sink poisoned").lines.clone()
    }

    /// Writes all lines, newline-terminated, to `w`.
    pub fn write_to(&self, w: &mut impl io::Write) -> io::Result<()> {
        for line in self.lines() {
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

impl TraceSink for JsonLinesSink {
    fn enter_span(&mut self, name: &str, step: u64) {
        self.push(Json::obj(vec![
            ("kind", "enter".into()),
            ("name", name.into()),
            ("step", step.into()),
        ]));
    }

    fn exit_span(&mut self, step: u64) {
        self.push(Json::obj(vec![
            ("kind", "exit".into()),
            ("step", step.into()),
        ]));
    }

    fn event(&mut self, ev: &Event<'_>) {
        let mut pairs = vec![
            ("kind", Json::from("event")),
            ("class", ev.class.into()),
            ("step", ev.step.into()),
            ("dur", ev.dur.into()),
        ];
        if let Some(l) = ev.label {
            pairs.push(("label", l.into()));
        }
        if let Some(o) = ev.occupancy {
            pairs.push(("occupancy", o.into()));
        }
        if let Some(c) = ev.clusters {
            pairs.push(("clusters", c.into()));
        }
        self.push(Json::obj(pairs));
    }
}

#[derive(Debug, Default)]
struct ChromeInner {
    events: Vec<Json>,
    open: u64,
}

/// Chrome `trace_event` sink (Perfetto / `chrome://tracing` compatible).
///
/// Span enters/exits become `"B"`/`"E"` duration events and instructions
/// become `"X"` complete events; the microsecond timestamp field carries
/// the *controller step index*, so span widths in the viewer are exactly
/// the step counts of the complexity analysis.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceSink(Arc<Mutex<ChromeInner>>);

/// Process id used in exported Chrome traces.
const PID: u64 = 1;
/// Thread id used in exported Chrome traces (one SIMD controller).
const TID: u64 = 1;

impl ChromeTraceSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        ChromeTraceSink::default()
    }

    fn push(&self, value: Json, delta_open: i64) {
        let mut inner = self.0.lock().expect("chrome sink poisoned");
        inner.events.push(value);
        inner.open = inner.open.saturating_add_signed(delta_open);
    }

    /// The trace document as a JSON value: closes any still-open spans at
    /// `final_step` and wraps everything in `{"traceEvents": [...]}`.
    pub fn finish(&self, final_step: u64) -> Json {
        let mut inner = self.0.lock().expect("chrome sink poisoned");
        let open = inner.open;
        for _ in 0..open {
            inner.events.push(Json::obj(vec![
                ("ph", "E".into()),
                ("pid", PID.into()),
                ("tid", TID.into()),
                ("ts", final_step.into()),
            ]));
        }
        inner.open = 0;
        let mut events = vec![Json::obj(vec![
            ("ph", "M".into()),
            ("pid", PID.into()),
            ("tid", TID.into()),
            ("name", "process_name".into()),
            (
                "args",
                Json::obj(vec![(
                    "name",
                    "ppa simulation (ts = controller step)".into(),
                )]),
            ),
        ])];
        events.extend(inner.events.iter().cloned());
        Json::obj(vec![
            ("traceEvents", Json::Array(events)),
            ("displayTimeUnit", "ms".into()),
        ])
    }

    /// Number of events recorded so far (excluding the metadata record).
    pub fn len(&self) -> usize {
        self.0.lock().expect("chrome sink poisoned").events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for ChromeTraceSink {
    fn enter_span(&mut self, name: &str, step: u64) {
        self.push(
            Json::obj(vec![
                ("ph", "B".into()),
                ("pid", PID.into()),
                ("tid", TID.into()),
                ("ts", step.into()),
                ("name", name.into()),
            ]),
            1,
        );
    }

    fn exit_span(&mut self, step: u64) {
        let open = self.0.lock().expect("chrome sink poisoned").open;
        if open == 0 {
            return; // tolerate unbalanced exits
        }
        self.push(
            Json::obj(vec![
                ("ph", "E".into()),
                ("pid", PID.into()),
                ("tid", TID.into()),
                ("ts", step.into()),
            ]),
            -1,
        );
    }

    fn event(&mut self, ev: &Event<'_>) {
        let mut args = vec![("class", Json::from(ev.class))];
        if let Some(l) = ev.label {
            args.push(("label", l.into()));
        }
        if let Some(o) = ev.occupancy {
            args.push(("occupancy", o.into()));
        }
        if let Some(c) = ev.clusters {
            args.push(("clusters", c.into()));
        }
        self.push(
            Json::obj(vec![
                ("ph", "X".into()),
                ("pid", PID.into()),
                ("tid", TID.into()),
                ("ts", ev.step.into()),
                ("dur", ev.dur.into()),
                ("name", ev.class.into()),
                ("args", Json::obj(args)),
            ]),
            0,
        );
    }
}

/// Checks a parsed Chrome trace document for well-formedness: every `"E"`
/// matches an open `"B"` and all spans are closed. Returns the number of
/// `B`/`E` pairs, or an error description.
pub fn validate_chrome_trace(doc: &Json) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    let mut depth = 0i64;
    let mut pairs = 0usize;
    for ev in events {
        match ev.get("ph").and_then(Json::as_str) {
            Some("B") => {
                if ev.get("name").and_then(Json::as_str).is_none() {
                    return Err("B event without name".into());
                }
                depth += 1;
            }
            Some("E") => {
                depth -= 1;
                if depth < 0 {
                    return Err("E without matching B".into());
                }
                pairs += 1;
            }
            Some("X") => {
                if ev.get("dur").and_then(Json::as_u64).is_none() {
                    return Err("X event without dur".into());
                }
            }
            Some("M") => {}
            other => return Err(format!("unexpected ph {other:?}")),
        }
        if ev.get("ts").and_then(Json::as_u64).is_none()
            && ev.get("ph").and_then(Json::as_str) != Some("M")
        {
            return Err("event without numeric ts".into());
        }
    }
    if depth != 0 {
        return Err(format!("{depth} span(s) left open"));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sink: &mut dyn TraceSink) {
        sink.enter_span("mcp", 0);
        sink.enter_span("iteration[0]", 0);
        sink.event(&Event::new("alu", 0));
        sink.event(&Event {
            occupancy: Some(0.5),
            clusters: Some(6),
            label: Some("stmt 11"),
            ..Event::new("broadcast", 1)
        });
        sink.exit_span(2);
        sink.exit_span(2);
    }

    #[test]
    fn memory_sink_balances_and_aggregates() {
        let mut sink = MemorySink::new();
        drive(&mut sink);
        assert!(sink.balanced());
        assert_eq!(sink.total_steps(), 2);
        let totals = sink.span_totals();
        assert_eq!(totals, vec![("mcp > iteration[0]".to_owned(), 2)]);
    }

    #[test]
    fn memory_sink_detects_imbalance() {
        let mut sink = MemorySink::new();
        sink.enter_span("x", 0);
        assert!(!sink.balanced());
        let mut sink = MemorySink::new();
        sink.exit_span(0);
        assert!(!sink.balanced());
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let mut sink = JsonLinesSink::new();
        drive(&mut sink);
        let lines = sink.lines();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert!(v.get("kind").is_some(), "{line}");
        }
        let mut buf = Vec::new();
        sink.write_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 6);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let mut sink = ChromeTraceSink::new();
        drive(&mut sink);
        let doc = sink.finish(2);
        assert_eq!(validate_chrome_trace(&doc), Ok(2));
        // Round-trips through text.
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(validate_chrome_trace(&parsed), Ok(2));
    }

    #[test]
    fn chrome_finish_closes_open_spans() {
        let mut sink = ChromeTraceSink::new();
        sink.enter_span("left-open", 0);
        sink.event(&Event::new("alu", 0));
        let doc = sink.finish(5);
        assert_eq!(validate_chrome_trace(&doc), Ok(1));
    }

    #[test]
    fn chrome_ignores_spurious_exits() {
        let mut sink = ChromeTraceSink::new();
        sink.exit_span(0);
        let doc = sink.finish(0);
        assert_eq!(validate_chrome_trace(&doc), Ok(0));
    }

    #[test]
    fn shared_handles_see_the_same_records() {
        let sink = MemorySink::new();
        let mut emitter = sink.clone();
        emitter.event(&Event::new("alu", 0));
        assert_eq!(sink.total_steps(), 1);
    }
}
