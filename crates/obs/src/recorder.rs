//! [`Recorder`] — the emitter-side bundle for components that keep their
//! own step clocks (the baseline architecture models, host-side tools).
//!
//! The PPA controller drives a [`TraceSink`](crate::trace::TraceSink)
//! directly because it owns the authoritative step counter. Everything
//! else — the hypercube/GCN/mesh cost models, host utilities — goes
//! through a `Recorder`, which carries a sink, a [`Metrics`] registry and
//! a monotonically advancing step clock, so all architectures emit
//! profiles in the same format and the same time unit.

use crate::metrics::Metrics;
use crate::trace::{Event, TraceSink};

/// A sink + metrics + step-clock bundle for self-clocked emitters.
pub struct Recorder {
    sink: Box<dyn TraceSink>,
    /// The metrics registry fed alongside the trace.
    pub metrics: Metrics,
    clock: u64,
    depth: u64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("metrics", &self.metrics)
            .field("clock", &self.clock)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// Wraps a sink; the clock starts at step 0.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Recorder {
            sink: Box::new(sink),
            metrics: Metrics::new(),
            clock: 0,
            depth: 0,
        }
    }

    /// The current step clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Opens a span at the current clock.
    pub fn enter(&mut self, name: &str) {
        self.sink.enter_span(name, self.clock);
        self.depth += 1;
    }

    /// Closes the innermost span at the current clock.
    pub fn exit(&mut self) {
        if self.depth > 0 {
            self.depth -= 1;
            self.sink.exit_span(self.clock);
        }
    }

    /// Emits one event of `class` covering `dur` steps, advances the
    /// clock, and bumps the `steps.<class>` counter.
    pub fn advance(&mut self, class: &str, dur: u64) {
        if dur == 0 {
            return;
        }
        self.sink.event(&Event {
            class,
            step: self.clock,
            dur,
            label: None,
            occupancy: None,
            clusters: None,
        });
        self.clock += dur;
        self.metrics.inc(&format!("steps.{class}"), dur);
        self.metrics.inc("steps.total", dur);
    }

    /// Closes any open spans and returns the metrics registry.
    pub fn finish(mut self) -> Metrics {
        while self.depth > 0 {
            self.exit();
        }
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemorySink;

    #[test]
    fn recorder_advances_clock_and_metrics() {
        let sink = MemorySink::new();
        let mut r = Recorder::new(sink.clone());
        r.enter("solve");
        r.advance("word-op", 16);
        r.advance("flag-op", 1);
        r.exit();
        assert_eq!(r.clock(), 17);
        let m = r.finish();
        assert_eq!(m.counter("steps.word-op"), 16);
        assert_eq!(m.counter("steps.total"), 17);
        assert!(sink.balanced());
        assert_eq!(sink.total_steps(), 17);
    }

    #[test]
    fn finish_closes_open_spans() {
        let sink = MemorySink::new();
        let mut r = Recorder::new(sink.clone());
        r.enter("a");
        r.enter("b");
        r.advance("x", 1);
        let _ = r.finish();
        assert!(sink.balanced());
    }

    #[test]
    fn zero_duration_events_are_dropped() {
        let sink = MemorySink::new();
        let mut r = Recorder::new(sink.clone());
        r.advance("x", 0);
        assert_eq!(r.clock(), 0);
        assert_eq!(sink.records().len(), 0);
    }
}
