//! Wall-clock profiles: the host-time view that reconciles against the
//! simulated step counts.
//!
//! The step counters answer "how long would the PPA take"; these types
//! answer "where did the *simulator* spend host time", so a slow phase can
//! be attributed either to genuinely many simulated steps or to expensive
//! per-step host work (large planes, thread spawn overhead).

use crate::json::Json;
use crate::metrics::Metrics;
use std::collections::BTreeMap;

/// Wall-clock and step tallies of one phase (span path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWall {
    /// Host nanoseconds attributed to the phase.
    pub nanos: u64,
    /// Simulated controller steps attributed to the phase.
    pub steps: u64,
}

impl PhaseWall {
    /// Host nanoseconds per simulated step (0.0 when no steps ran).
    pub fn nanos_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.nanos as f64 / self.steps as f64
        }
    }
}

/// Per-phase wall-clock profile, in order of first appearance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WallProfile {
    phases: Vec<(String, PhaseWall)>,
}

impl WallProfile {
    /// A fresh, empty profile.
    pub fn new() -> Self {
        WallProfile::default()
    }

    /// Attributes `nanos` host time and `steps` simulated steps to `phase`.
    pub fn add(&mut self, phase: &str, nanos: u64, steps: u64) {
        match self.phases.iter_mut().find(|(p, _)| p == phase) {
            Some((_, w)) => {
                w.nanos += nanos;
                w.steps += steps;
            }
            None => self
                .phases
                .push((phase.to_owned(), PhaseWall { nanos, steps })),
        }
    }

    /// The recorded phases in order of first appearance.
    pub fn phases(&self) -> &[(String, PhaseWall)] {
        &self.phases
    }

    /// Totals across all phases.
    pub fn total(&self) -> PhaseWall {
        let mut t = PhaseWall::default();
        for (_, w) in &self.phases {
            t.nanos += w.nanos;
            t.steps += w.steps;
        }
        t
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Serializes the profile to JSON.
    pub fn to_json(&self) -> Json {
        Json::Array(
            self.phases
                .iter()
                .map(|(p, w)| {
                    Json::obj(vec![
                        ("phase", p.as_str().into()),
                        ("nanos", w.nanos.into()),
                        ("steps", w.steps.into()),
                        ("nanos_per_step", w.nanos_per_step().into()),
                    ])
                })
                .collect(),
        )
    }
}

/// Aggregate wall-clock statistics of the execution engine's per-PE loops,
/// filled in by `ppa-machine::engine` when profiling is enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// `build` invocations (one per elementwise instruction).
    pub build_calls: u64,
    /// `reduce` invocations (one per global-OR style reduction).
    pub reduce_calls: u64,
    /// Host nanoseconds spent in sequentially executed calls.
    pub sequential_nanos: u64,
    /// Host nanoseconds spent in thread-chunked calls (whole-call span).
    pub threaded_nanos: u64,
    /// Host nanoseconds spent inside worker chunks, indexed by worker slot
    /// (reveals chunk imbalance across threads).
    pub per_thread_nanos: Vec<u64>,
}

impl EngineProfile {
    /// Total engine invocations.
    pub fn calls(&self) -> u64 {
        self.build_calls + self.reduce_calls
    }

    /// Serializes the profile to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("build_calls", self.build_calls.into()),
            ("reduce_calls", self.reduce_calls.into()),
            ("sequential_nanos", self.sequential_nanos.into()),
            ("threaded_nanos", self.threaded_nanos.into()),
            (
                "per_thread_nanos",
                Json::Array(self.per_thread_nanos.iter().map(|&n| n.into()).collect()),
            ),
        ])
    }
}

/// Wall-clock and invocation tally of one micro-op class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassWall {
    /// Host nanoseconds attributed to the class.
    pub nanos: u64,
    /// Instructions of this class that were timed.
    pub count: u64,
}

/// Per-instruction-class wall-clock attribution for one execution backend.
///
/// `ppa-machine` wraps the post-issue mechanics of every costed primitive
/// in a timer and records the elapsed host nanoseconds under the
/// instruction's class label (`"alu"`, `"shift"`, ...), so each class's
/// `count` reconciles 1:1 with the controller's `steps.<class>` counters.
/// The profile identifies which backend executed (`"scalar"`, `"packed"`,
/// `"threaded"`), emits into a [`Metrics`] registry as
/// `exec.<backend>.<class>.ns` / `.count`, and renders as
/// `inferno`-compatible folded-stack lines for flamegraphs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MicroProfile {
    backend: String,
    classes: BTreeMap<String, ClassWall>,
}

impl MicroProfile {
    /// A fresh, empty profile for the named execution backend.
    pub fn new(backend: &str) -> Self {
        MicroProfile {
            backend: backend.to_owned(),
            classes: BTreeMap::new(),
        }
    }

    /// The execution backend this profile attributes time to.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Attributes `nanos` host time to one instruction of `class`.
    pub fn record(&mut self, class: &str, nanos: u64) {
        let w = self.classes.entry(class.to_owned()).or_default();
        w.nanos += nanos;
        w.count += 1;
    }

    /// The tally for one class, if any instruction of it was timed.
    pub fn class(&self, class: &str) -> Option<ClassWall> {
        self.classes.get(class).copied()
    }

    /// All recorded classes, sorted by name.
    pub fn classes(&self) -> impl Iterator<Item = (&str, ClassWall)> {
        self.classes.iter().map(|(k, &w)| (k.as_str(), w))
    }

    /// Totals across all classes.
    pub fn total(&self) -> ClassWall {
        let mut t = ClassWall::default();
        for w in self.classes.values() {
            t.nanos += w.nanos;
            t.count += w.count;
        }
        t
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Folds the profile into a metrics registry as
    /// `exec.<backend>.<class>.ns` and `exec.<backend>.<class>.count`
    /// counters, the form the baseline snapshots and introspection
    /// endpoints consume.
    pub fn emit(&self, metrics: &mut Metrics) {
        for (class, w) in &self.classes {
            metrics.inc(&format!("exec.{}.{class}.ns", self.backend), w.nanos);
            metrics.inc(&format!("exec.{}.{class}.count", self.backend), w.count);
        }
    }

    /// Renders the profile as `inferno`-compatible folded-stack lines
    /// (`backend;class <nanos>`, one per class, sorted), suitable for
    /// `inferno-flamegraph` or any folded-stack consumer.
    pub fn folded_lines(&self) -> String {
        let mut out = String::new();
        for (class, w) in &self.classes {
            out.push_str(&format!("{};{} {}\n", self.backend, class, w.nanos));
        }
        out
    }

    /// Serializes the profile to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("backend", self.backend.as_str().into()),
            (
                "classes",
                Json::Object(
                    self.classes
                        .iter()
                        .map(|(k, w)| {
                            (
                                k.clone(),
                                Json::obj(vec![
                                    ("nanos", w.nanos.into()),
                                    ("count", w.count.into()),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Parses folded-stack text (`frame;frame;... <count>` per line) into
/// `(stack, count)` pairs, validating the `inferno` line grammar: at
/// least one frame, no empty frames, and a trailing unsigned integer
/// separated by a single space.
///
/// # Errors
/// A description of the first malformed line (1-based line number).
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no count separator"))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {lineno}: count `{count}` not a u64"))?;
        let frames: Vec<String> = stack.split(';').map(str::to_owned).collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("line {lineno}: empty frame in `{stack}`"));
        }
        out.push((frames, count));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_profile_accumulates_per_phase() {
        let mut p = WallProfile::new();
        p.add("min", 100, 10);
        p.add("min", 50, 5);
        p.add("setup", 7, 1);
        assert_eq!(p.phases().len(), 2);
        assert_eq!(
            p.phases()[0].1,
            PhaseWall {
                nanos: 150,
                steps: 15
            }
        );
        assert_eq!(
            p.total(),
            PhaseWall {
                nanos: 157,
                steps: 16
            }
        );
        assert!((p.phases()[0].1.nanos_per_step() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut p = WallProfile::new();
        p.add("x", 10, 2);
        let j = p.to_json();
        let first = &j.as_array().unwrap()[0];
        assert_eq!(first.get("phase").unwrap().as_str(), Some("x"));
        assert_eq!(first.get("nanos").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn engine_profile_counts() {
        let e = EngineProfile {
            build_calls: 3,
            reduce_calls: 2,
            ..EngineProfile::default()
        };
        assert_eq!(e.calls(), 5);
        assert!(e.to_json().get("per_thread_nanos").is_some());
    }

    #[test]
    fn micro_profile_accumulates_per_class() {
        let mut p = MicroProfile::new("packed");
        p.record("alu", 100);
        p.record("alu", 50);
        p.record("bus-or", 7);
        assert_eq!(p.backend(), "packed");
        assert_eq!(
            p.class("alu"),
            Some(ClassWall {
                nanos: 150,
                count: 2
            })
        );
        assert_eq!(
            p.total(),
            ClassWall {
                nanos: 157,
                count: 3
            }
        );
        assert!(!p.is_empty());
        assert!(MicroProfile::new("scalar").is_empty());
    }

    #[test]
    fn micro_profile_emits_exec_counters() {
        let mut p = MicroProfile::new("threaded");
        p.record("shift", 40);
        p.record("shift", 2);
        let mut m = Metrics::new();
        p.emit(&mut m);
        assert_eq!(m.counter("exec.threaded.shift.ns"), 42);
        assert_eq!(m.counter("exec.threaded.shift.count"), 2);
    }

    #[test]
    fn folded_lines_parse_as_inferno_stacks() {
        let mut p = MicroProfile::new("packed");
        p.record("alu", 123);
        p.record("bus-or", 9);
        let folded = p.folded_lines();
        let stacks = parse_folded(&folded).unwrap();
        assert_eq!(
            stacks,
            vec![
                (vec!["packed".to_owned(), "alu".to_owned()], 123),
                (vec!["packed".to_owned(), "bus-or".to_owned()], 9),
            ]
        );
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(parse_folded("no-count-here").is_err());
        assert!(parse_folded("a;b x").is_err());
        assert!(parse_folded("a;;b 3").is_err());
        assert_eq!(parse_folded("").unwrap(), vec![]);
        assert_eq!(
            parse_folded("a;b;c 5\n").unwrap(),
            vec![(vec!["a".to_owned(), "b".to_owned(), "c".to_owned()], 5u64)]
        );
    }

    #[test]
    fn micro_profile_json_shape() {
        let mut p = MicroProfile::new("scalar");
        p.record("global-or", 11);
        let j = p.to_json();
        assert_eq!(j.get("backend").unwrap().as_str(), Some("scalar"));
        let class = j.get("classes").unwrap().get("global-or").unwrap();
        assert_eq!(class.get("nanos").unwrap().as_u64(), Some(11));
        assert_eq!(class.get("count").unwrap().as_u64(), Some(1));
    }
}
