//! Wall-clock profiles: the host-time view that reconciles against the
//! simulated step counts.
//!
//! The step counters answer "how long would the PPA take"; these types
//! answer "where did the *simulator* spend host time", so a slow phase can
//! be attributed either to genuinely many simulated steps or to expensive
//! per-step host work (large planes, thread spawn overhead).

use crate::json::Json;

/// Wall-clock and step tallies of one phase (span path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWall {
    /// Host nanoseconds attributed to the phase.
    pub nanos: u64,
    /// Simulated controller steps attributed to the phase.
    pub steps: u64,
}

impl PhaseWall {
    /// Host nanoseconds per simulated step (0.0 when no steps ran).
    pub fn nanos_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.nanos as f64 / self.steps as f64
        }
    }
}

/// Per-phase wall-clock profile, in order of first appearance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WallProfile {
    phases: Vec<(String, PhaseWall)>,
}

impl WallProfile {
    /// A fresh, empty profile.
    pub fn new() -> Self {
        WallProfile::default()
    }

    /// Attributes `nanos` host time and `steps` simulated steps to `phase`.
    pub fn add(&mut self, phase: &str, nanos: u64, steps: u64) {
        match self.phases.iter_mut().find(|(p, _)| p == phase) {
            Some((_, w)) => {
                w.nanos += nanos;
                w.steps += steps;
            }
            None => self
                .phases
                .push((phase.to_owned(), PhaseWall { nanos, steps })),
        }
    }

    /// The recorded phases in order of first appearance.
    pub fn phases(&self) -> &[(String, PhaseWall)] {
        &self.phases
    }

    /// Totals across all phases.
    pub fn total(&self) -> PhaseWall {
        let mut t = PhaseWall::default();
        for (_, w) in &self.phases {
            t.nanos += w.nanos;
            t.steps += w.steps;
        }
        t
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Serializes the profile to JSON.
    pub fn to_json(&self) -> Json {
        Json::Array(
            self.phases
                .iter()
                .map(|(p, w)| {
                    Json::obj(vec![
                        ("phase", p.as_str().into()),
                        ("nanos", w.nanos.into()),
                        ("steps", w.steps.into()),
                        ("nanos_per_step", w.nanos_per_step().into()),
                    ])
                })
                .collect(),
        )
    }
}

/// Aggregate wall-clock statistics of the execution engine's per-PE loops,
/// filled in by `ppa-machine::engine` when profiling is enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// `build` invocations (one per elementwise instruction).
    pub build_calls: u64,
    /// `reduce` invocations (one per global-OR style reduction).
    pub reduce_calls: u64,
    /// Host nanoseconds spent in sequentially executed calls.
    pub sequential_nanos: u64,
    /// Host nanoseconds spent in thread-chunked calls (whole-call span).
    pub threaded_nanos: u64,
    /// Host nanoseconds spent inside worker chunks, indexed by worker slot
    /// (reveals chunk imbalance across threads).
    pub per_thread_nanos: Vec<u64>,
}

impl EngineProfile {
    /// Total engine invocations.
    pub fn calls(&self) -> u64 {
        self.build_calls + self.reduce_calls
    }

    /// Serializes the profile to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("build_calls", self.build_calls.into()),
            ("reduce_calls", self.reduce_calls.into()),
            ("sequential_nanos", self.sequential_nanos.into()),
            ("threaded_nanos", self.threaded_nanos.into()),
            (
                "per_thread_nanos",
                Json::Array(self.per_thread_nanos.iter().map(|&n| n.into()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_profile_accumulates_per_phase() {
        let mut p = WallProfile::new();
        p.add("min", 100, 10);
        p.add("min", 50, 5);
        p.add("setup", 7, 1);
        assert_eq!(p.phases().len(), 2);
        assert_eq!(
            p.phases()[0].1,
            PhaseWall {
                nanos: 150,
                steps: 15
            }
        );
        assert_eq!(
            p.total(),
            PhaseWall {
                nanos: 157,
                steps: 16
            }
        );
        assert!((p.phases()[0].1.nanos_per_step() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut p = WallProfile::new();
        p.add("x", 10, 2);
        let j = p.to_json();
        let first = &j.as_array().unwrap()[0];
        assert_eq!(first.get("phase").unwrap().as_str(), Some("x"));
        assert_eq!(first.get("nanos").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn engine_profile_counts() {
        let e = EngineProfile {
            build_calls: 3,
            reduce_calls: 2,
            ..EngineProfile::default()
        };
        assert_eq!(e.calls(), 5);
        assert!(e.to_json().get("per_thread_nanos").is_some());
    }
}
