//! # ppa-obs — observability for the whole simulation stack
//!
//! The paper's entire evidence chain is *counted controller steps*
//! ("considering that all the statements have O(1) complexity ..."), so
//! this crate treats the step index as the canonical clock and provides:
//!
//! * [`trace`] — hierarchical spans (`mcp > iteration[3] > stmt 11`) and
//!   per-instruction events over a [`trace::TraceSink`], with in-memory,
//!   JSON-lines, and Chrome `trace_event` (Perfetto-loadable) sinks;
//! * [`metrics`] — a counter/histogram registry snapshotable to JSON and
//!   parseable back (exact round-trip);
//! * [`profile`] — wall-clock phase profiles that reconcile host time
//!   against simulated steps, plus engine-level thread-chunk timings;
//! * [`json`] — the one JSON implementation behind all artifacts;
//! * [`recorder::Recorder`] — the emitter bundle used by the baseline
//!   architecture models so PPA, hypercube, GCN, and plain-mesh runs all
//!   produce directly comparable profiles.
//!
//! This crate is dependency-free and sits below `ppa-machine`; the
//! controller and the cost meters feed it, the CLI tools export it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod sampling;
pub mod trace;

pub use json::{Json, JsonError};
pub use metrics::{Histogram, Metrics};
pub use profile::{parse_folded, ClassWall, EngineProfile, MicroProfile, PhaseWall, WallProfile};
pub use recorder::Recorder;
pub use sampling::OccupancySampling;
pub use trace::{
    validate_chrome_trace, ChromeTraceSink, Event, JsonLinesSink, MemorySink, TraceRecord,
    TraceSink,
};
