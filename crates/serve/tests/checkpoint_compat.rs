//! Checkpoint version compatibility: a future (bumped) version field must
//! surface as a typed resume error — never a panic and never a silent
//! from-scratch re-run — while a same-version checkpoint resumes
//! byte-identically, including when the service routes to the threaded
//! backend.

use ppa_graph::gen;
use ppa_serve::{
    ApspCheckpoint, JobKind, JobOutcome, JobSpec, ServeConfig, ServeError, SolveService,
};

fn apsp(resume_from: Option<ppa_obs::Json>) -> JobKind {
    JobKind::Apsp {
        resume_from,
        checkpoint_every: 1,
    }
}

#[test]
fn bumped_checkpoint_version_is_a_typed_error_not_a_rerun() {
    let w = gen::random_connected(6, 0.45, 9, 77);

    // Produce a genuine version-1 checkpoint document, then bump its
    // version field as a future writer would.
    let svc = SolveService::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let full = svc
        .submit(JobSpec::new(w.clone(), apsp(None)))
        .unwrap()
        .wait();
    let JobOutcome::Apsp(doc) = full.outcome.unwrap() else {
        panic!("expected an APSP outcome");
    };
    let mut fields: Vec<(&str, ppa_obs::Json)> = Vec::new();
    let obj = match &doc {
        ppa_obs::Json::Object(pairs) => pairs,
        other => panic!("checkpoint must serialize as an object, got {other:?}"),
    };
    for (k, v) in obj {
        if k == "version" {
            fields.push(("version", 2u64.into()));
        } else {
            fields.push((k.as_str(), v.clone()));
        }
    }
    let bumped = ppa_obs::Json::obj(fields);

    // The parser rejects it outright...
    let err = ApspCheckpoint::from_json(&bumped).unwrap_err();
    assert!(err.contains("version"), "untyped reason: {err}");

    // ...and a resume submission fails *typed*, before any solving: the
    // job must not silently restart the campaign from scratch.
    let report = svc
        .submit(JobSpec::new(w.clone(), apsp(Some(bumped))))
        .unwrap()
        .wait();
    match report.outcome.unwrap_err() {
        ServeError::InvalidResume { reason } => {
            assert!(reason.contains("version"), "{reason}");
        }
        other => panic!("expected InvalidResume, got {other}"),
    }
    assert_eq!(report.attempts, 0, "rejected before any attempt ran");
    let metrics = svc.shutdown();
    assert_eq!(
        metrics.counter("serve.resumes"),
        0,
        "a bad version must never count as a resume"
    );
    assert_eq!(metrics.counter("serve.worker_panics"), 0);
}

#[test]
fn same_version_resume_is_byte_identical_on_the_threaded_backend() {
    let w = gen::random_connected(6, 0.45, 9, 78);
    let threaded = ServeConfig {
        workers: 1,
        prefer_packed: false,
        prefer_threaded: true,
        threads: 3,
        ..ServeConfig::default()
    };

    // Reference: uninterrupted campaign, all on the threaded backend.
    let svc = SolveService::start(threaded.clone());
    let full = svc
        .submit(JobSpec::new(w.clone(), apsp(None)))
        .unwrap()
        .wait();
    assert_eq!(format!("{}", full.backend.unwrap()), "threaded");
    let JobOutcome::Apsp(reference) = full.outcome.unwrap() else {
        panic!("expected an APSP outcome");
    };

    // Interrupt a second campaign partway with a step budget.
    let mut session = ppa_mcp::McpSession::new(&w).unwrap();
    session.ppa_mut().limit_steps(1_000_000);
    session.all_pairs().unwrap();
    let used = 1_000_000 - session.ppa_mut().steps_remaining().unwrap();
    let mut spec = JobSpec::new(w.clone(), apsp(None));
    spec.step_budget = Some(used / 2);
    let interrupted = svc.submit(spec).unwrap().wait();
    let ServeError::Interrupted { checkpoint, .. } = interrupted.outcome.unwrap_err() else {
        panic!("half the steps must interrupt mid-campaign");
    };
    let progress = ApspCheckpoint::from_json(&checkpoint).unwrap();
    assert!(progress.next_dest() > 0 && !progress.is_complete());
    svc.shutdown();

    // A fresh threaded service resumes it to the identical document.
    let svc = SolveService::start(threaded);
    let resumed = svc
        .submit(JobSpec::new(w, apsp(Some(checkpoint))))
        .unwrap()
        .wait();
    assert_eq!(format!("{}", resumed.backend.unwrap()), "threaded");
    let JobOutcome::Apsp(final_doc) = resumed.outcome.unwrap() else {
        panic!("resumed campaign must complete");
    };
    assert_eq!(final_doc.to_string_compact(), reference.to_string_compact());
    let metrics = svc.shutdown();
    assert_eq!(metrics.counter("serve.resumes"), 1);
}
