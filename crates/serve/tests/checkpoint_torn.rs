//! Torn-write regression: a checkpoint truncated at *every* byte offset
//! must surface as a typed [`ServeError::InvalidResume`] — never a
//! panic, and never a silent re-run (an `Ok` with fewer destinations
//! than were actually completed would make the resumed campaign redo —
//! and re-report — work the durable record already covered).
//!
//! The atomic save path (temp + fsync + rename) makes torn files
//! unreachable through [`ApspCheckpoint::save`]; this suite proves the
//! *reader* is also safe against them, because operators can hand the
//! service arbitrary files.

use ppa_graph::gen;
use ppa_mcp::McpSession;
use ppa_serve::{ApspCheckpoint, ServeError};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppa-torn-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn full_checkpoint(n: usize) -> ApspCheckpoint {
    let w = gen::random_connected(n, 0.5, 9, 0x70AA);
    let mut session = McpSession::new(&w).unwrap();
    let mut cp = ApspCheckpoint::new(n);
    for d in 0..n {
        cp.record(&session.solve(d).unwrap());
    }
    cp
}

#[test]
fn every_truncation_offset_is_a_typed_invalid_resume() {
    let dir = scratch_dir("prefix");
    let cp = full_checkpoint(5);
    let path = dir.join("cp.json");
    cp.save(&path).unwrap();
    let bytes = fs::read(&path).unwrap();
    let complete = cp.completed().len();

    let torn = dir.join("torn.json");
    for cut in 0..bytes.len() {
        fs::write(&torn, &bytes[..cut]).unwrap();
        let verdict = catch_unwind(AssertUnwindSafe(|| ApspCheckpoint::load(&torn)));
        let loaded = verdict
            .unwrap_or_else(|_| panic!("load panicked on a checkpoint truncated at byte {cut}"));
        match loaded {
            Err(ServeError::InvalidResume { .. }) => {}
            Err(other) => panic!("truncation at byte {cut}: wrong error class {other}"),
            Ok(back) => panic!(
                "truncation at byte {cut} silently loaded {} of {complete} destinations",
                back.completed().len()
            ),
        }
    }
    // The untruncated file still loads, so the loop above really was
    // exercising the parser and not a broken fixture.
    assert_eq!(ApspCheckpoint::load(&path).unwrap(), cp);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_file_corruption_is_typed_too() {
    // Truncation is the kill -9 shape; flipped bytes are the bitrot
    // shape. Both must stay typed.
    let dir = scratch_dir("flip");
    let cp = full_checkpoint(4);
    let path = dir.join("cp.json");
    cp.save(&path).unwrap();
    let bytes = fs::read(&path).unwrap();
    let mangled = dir.join("mangled.json");
    for (stride, flip) in [(7usize, 0xFFu8), (13, 0x20), (29, 0x01)] {
        let mut b = bytes.clone();
        for i in (0..b.len()).step_by(stride) {
            b[i] ^= flip;
        }
        fs::write(&mangled, &b).unwrap();
        let verdict = catch_unwind(AssertUnwindSafe(|| ApspCheckpoint::load(&mangled)));
        let loaded = verdict.expect("load must not panic on corrupted bytes");
        if let Ok(back) = loaded {
            // Astronomically unlikely, but if the mangled bytes still
            // parse they must describe a *consistent* checkpoint.
            assert!(back.completed().len() <= back.n());
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn save_is_atomic_under_concurrent_readers() {
    // Hammer save/load concurrently: readers must only ever observe a
    // complete document (either generation), never a torn one.
    let dir = scratch_dir("atomic");
    let path = dir.join("cp.json");
    let a = full_checkpoint(4);
    let mut b = full_checkpoint(4);
    // Make generation B textually different from A (drop one result).
    let parts = b.completed()[..3].to_vec();
    b = ApspCheckpoint::from_parts(4, parts).unwrap();
    a.save(&path).unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let (path, stop) = (path.clone(), stop.clone());
        let (wa, wb) = (
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
        );
        std::thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let back = ApspCheckpoint::load(&path).expect("reader saw a torn checkpoint");
                let text = back.to_json().to_string_compact();
                assert!(text == wa || text == wb, "reader saw a hybrid document");
                seen += 1;
            }
            seen
        })
    };
    for _ in 0..200 {
        a.save(&path).unwrap();
        b.save(&path).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let seen = reader.join().unwrap();
    assert!(seen > 0, "the reader must have observed at least one load");
    let _ = fs::remove_dir_all(&dir);
}
