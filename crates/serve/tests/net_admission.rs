//! Admission control under a seeded flood: when clients submit far
//! faster than the pool can solve, the bounded queue must convert the
//! excess into typed `rejected` frames (with retry hints) — never
//! enqueue it — and the jobs that *were* admitted must finish with
//! latency bounded by the queue they waited in, not by the size of the
//! flood. Client-side tallies reconcile 1:1 against both the `serve.*`
//! and `net.*` registries.

use ppa_graph::gen;
use ppa_graph::io::to_edge_list;
use ppa_serve::wire::{CampaignRequest, Request, Response, SubmitRequest};
use ppa_serve::{NetClient, NetConfig, NetServer, ServeConfig, SolveService};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xF100D;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 50;
const QUEUE_CAPACITY: usize = 4;
const WORKERS: usize = 2;

fn submit_req(graph_text: &str) -> Request {
    Request::Submit(SubmitRequest {
        graph: graph_text.to_owned(),
        kind: "shortest".to_owned(),
        dest: 0,
        checkpoint_every: 1,
        resume_from: None,
        deadline_ms: None,
        step_budget: None,
        transient_faults: None,
        wait: false,
    })
}

#[test]
fn a_flood_is_shed_at_admission_and_admitted_latency_stays_bounded() {
    let svc = Arc::new(SolveService::start(ServeConfig {
        workers: WORKERS,
        queue_capacity: QUEUE_CAPACITY,
        ..ServeConfig::default()
    }));
    let server = NetServer::start(
        Arc::clone(&svc),
        NetConfig {
            max_connections: CLIENTS + 4,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let w = gen::random_connected(24, 0.4, 9, SEED);
    let graph_text = to_edge_list(&w);

    // Baseline: one job on an idle service, for the latency yardstick.
    let mut probe = NetClient::connect(addr).unwrap();
    let Response::Accepted { id } = probe.call(&submit_req(&graph_text)).unwrap() else {
        panic!("idle service must accept");
    };
    let Response::Report { latency_us, .. } = probe.call(&Request::Result { id }).unwrap() else {
        panic!("baseline job must report");
    };
    let baseline_us = latency_us.max(10_000); // floor: 10ms yardstick

    // The flood: CLIENTS threads firing PER_CLIENT submissions each,
    // as fast as the loopback allows, no pacing.
    let mut tallies = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let graph_text = &graph_text;
            handles.push(s.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let mut accepted = Vec::new();
                let mut rejected = 0u64;
                for _ in 0..PER_CLIENT {
                    match client.call(&submit_req(graph_text)).unwrap() {
                        Response::Accepted { id } => accepted.push(id),
                        Response::Error(f) => {
                            assert_eq!(f.kind, "rejected", "only backpressure may shed");
                            let hint = f.retry_after_ms.expect("rejections carry a hint");
                            assert!(hint >= 1, "the hint must ask for real backoff");
                            rejected += 1;
                        }
                        other => panic!("unexpected flood response: {other:?}"),
                    }
                }
                (accepted, rejected)
            }));
        }
        for h in handles {
            tallies.push(h.join().unwrap());
        }
    });
    let accepted: Vec<u64> = tallies.iter().flat_map(|(ids, _)| ids.clone()).collect();
    let rejected: u64 = tallies.iter().map(|(_, r)| r).sum();
    let total = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(
        accepted.len() as u64 + rejected,
        total,
        "every submission answered"
    );
    assert!(rejected > 0, "the flood must actually saturate the queue");
    assert!(!accepted.is_empty(), "an empty queue must admit");

    // Fetch every admitted job's report; the flood may not lose one.
    let mut latencies: Vec<u64> = Vec::with_capacity(accepted.len());
    let mut fetch = NetClient::connect(addr).unwrap();
    for &id in &accepted {
        match fetch.call(&Request::Result { id }).unwrap() {
            Response::Report {
                id: rid,
                latency_us,
                ..
            } => {
                assert_eq!(rid, id);
                latencies.push(latency_us);
            }
            other => panic!("admitted job {id} did not report: {other:?}"),
        }
    }

    // p99 of admitted-job latency is bounded by the queue an admitted
    // job can wait in (capacity + workers in flight), not by the ~400
    // jobs the flood threw. An unbounded queue would blow through this
    // by an order of magnitude.
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() - 1) * 99 / 100];
    let bound = (QUEUE_CAPACITY as u64 + WORKERS as u64 + 1) * baseline_us * 4;
    assert!(
        p99 <= bound,
        "p99 {p99}us exceeds the queue-law bound {bound}us (baseline {baseline_us}us)"
    );

    // Reconcile 1:1 against the server's own registries. The +1 on the
    // accepted side is the baseline probe job.
    let Response::MetricsDoc(doc) = fetch.call(&Request::Metrics).unwrap() else {
        panic!("expected metrics");
    };
    let m = ppa_obs::Metrics::from_json(&doc).unwrap();
    assert_eq!(m.counter("serve.submitted"), total + 1);
    assert_eq!(m.counter("serve.accepted"), accepted.len() as u64 + 1);
    assert_eq!(m.counter("serve.rejected_queue_full"), rejected);
    assert_eq!(
        m.counter("serve.completed"),
        accepted.len() as u64 + 1,
        "every admitted job completed; no rejected job ever ran"
    );
    assert_eq!(m.counter("net.submitted"), accepted.len() as u64 + 1);
    assert_eq!(m.counter("net.submit_rejected"), rejected);

    // And the service ends quiescent: nothing rejected left enqueued.
    let Response::Status(doc) = fetch.call(&Request::Status).unwrap() else {
        panic!("expected status");
    };
    let snap = ppa_serve::Introspection::from_json(&doc).unwrap();
    assert_eq!(snap.queue_depth, 0);
    assert!(snap.inflight.is_empty());
    server.shutdown();
}

#[test]
fn a_campaign_yields_to_backpressure_instead_of_jumping_the_queue() {
    // A server-side campaign rides the same bounded queue as everyone
    // else: saturate the queue with a tiny capacity and prove the
    // campaign still completes (by backing off and retrying), without
    // the service ever exceeding its configured capacity.
    let svc = Arc::new(SolveService::start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    }));
    let server = NetServer::start(Arc::clone(&svc), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let w = gen::random_connected(12, 0.4, 9, SEED ^ 1);
    let graph_text = to_edge_list(&w);

    // Competing traffic on a second connection while the campaign runs.
    let competitor = std::thread::spawn({
        let graph_text = graph_text.clone();
        move || {
            let mut client = NetClient::connect(addr).unwrap();
            let mut outcomes = (0u64, 0u64); // (accepted, rejected)
            for _ in 0..40 {
                match client.call(&submit_req(&graph_text)).unwrap() {
                    Response::Accepted { id } => {
                        outcomes.0 += 1;
                        let _ = client.call(&Request::Result { id });
                    }
                    Response::Error(f) => {
                        assert_eq!(f.kind, "rejected");
                        outcomes.1 += 1;
                        std::thread::sleep(Duration::from_millis(
                            f.retry_after_ms.unwrap_or(1).min(20),
                        ));
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            outcomes
        }
    });

    let mut client = NetClient::connect(addr).unwrap();
    let done = client
        .campaign(
            CampaignRequest {
                graph: graph_text.clone(),
                checkpoint_every: 1,
                deadline_ms: None,
                step_budget: None,
                resume_from: None,
            },
            |_, _| {},
        )
        .expect("the campaign must complete despite contention");
    let cp = ppa_serve::ApspCheckpoint::from_json(&done).unwrap();
    assert!(cp.is_complete());
    let (accepted, _rejected) = competitor.join().unwrap();
    assert!(accepted > 0, "interactive traffic was never starved out");
    server.shutdown();
}
