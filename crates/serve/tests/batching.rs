//! Serve-layer coalescing edges: hold-window expiry on an otherwise
//! empty queue, a lane hitting its deadline while its batchmates
//! complete, and kill+resume checkpoint byte-identity for batched APSP
//! campaigns. Every batched result must be bit-identical to the same
//! job solved solo, and the `serve.*` tallies must reconcile 1:1 with
//! client-side observations — batching changes scheduling, never
//! accounting.

use ppa_graph::{gen, WeightMatrix};
use ppa_mcp::McpSession;
use ppa_serve::{
    BatchingConfig, JobKind, JobOutcome, JobSpec, ServeConfig, ServeError, SolveService,
};
use std::time::Duration;

/// The solo oracle on the scalar reference backend; batched serve
/// results must equal it exactly (verified solves, same word fit).
fn solo(w: &WeightMatrix, dest: usize) -> ppa_mcp::McpOutput {
    McpSession::new(w)
        .and_then(|mut s| s.solve_verified(dest))
        .expect("solo oracle")
}

fn batching_config(max_lanes: usize, hold: Duration) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        batching: BatchingConfig {
            enabled: true,
            max_lanes,
            hold_window: hold,
        },
        ..ServeConfig::default()
    }
}

#[test]
fn hold_window_expiry_flushes_a_lonely_job() {
    // One eligible job and an otherwise empty queue: nothing ever joins
    // the wave, so only the hold-window expiry can release it. The job
    // must still complete (correctly) and the flush must be attributed
    // to the hold timer.
    let w = gen::random_connected(8, 0.35, 12, 0xB01D);
    let svc = SolveService::start(batching_config(16, Duration::from_millis(50)));
    let report = svc
        .submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 3 }))
        .expect("submit")
        .wait();
    let JobOutcome::Shortest(out) = report.outcome.expect("job must complete") else {
        panic!("expected a shortest outcome");
    };
    assert_eq!(out, solo(&w, 3), "held job diverged from its solo run");
    let metrics = svc.shutdown();
    assert_eq!(metrics.counter("serve.completed"), 1);
    assert!(
        metrics.counter("serve.batch.hold_flush") >= 1,
        "a lonely job can only leave the coalescer via the hold window"
    );
    // A single-lane wave is dispatched as a plain job, not a batch.
    assert_eq!(metrics.counter("serve.batch.jobs"), 0);
}

#[test]
fn coalesced_waves_solve_every_lane_like_solo_runs() {
    // Six compatible jobs against max_lanes = 4: the wave fills once
    // (full flush) and the stragglers leave on the hold timer. Every
    // destination's answer must equal its solo run and the outcome
    // tallies must reconcile with what the client saw.
    let w = gen::random_connected(8, 0.35, 12, 0xC0A1);
    let svc = SolveService::start(batching_config(4, Duration::from_millis(100)));
    let tickets: Vec<_> = (0..6)
        .map(|d| {
            svc.submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: d }))
                .expect("submit")
        })
        .collect();
    let mut completed = 0u64;
    for (d, t) in tickets.into_iter().enumerate() {
        let report = t.wait();
        let JobOutcome::Shortest(out) = report.outcome.expect("job must complete") else {
            panic!("expected a shortest outcome");
        };
        assert_eq!(out, solo(&w, d), "destination {d} diverged from solo");
        completed += 1;
    }
    let metrics = svc.shutdown();
    assert_eq!(metrics.counter("serve.completed"), completed);
    assert_eq!(metrics.counter("serve.failed"), 0);
    assert_eq!(metrics.counter("serve.accepted"), 6);
    assert!(
        metrics.counter("serve.batch.flushed") >= 1,
        "six held jobs must produce at least one flush"
    );
    let occupancy = metrics
        .histogram("serve.batch.occupancy")
        .expect("flushes record occupancy");
    assert_eq!(
        occupancy.sum, 6,
        "every accepted job leaves through exactly one flush"
    );
    assert!(
        occupancy.max <= 4,
        "no wave may exceed max_lanes: {}",
        occupancy.max
    );
}

#[test]
fn a_deadline_lane_fails_without_perturbing_its_batchmates() {
    // Three coalesced jobs; the last one carries a deadline far too
    // small for the scalar backend it is pinned to. Its batchmates must
    // complete bit-identically to solo runs, and the tallies must
    // reconcile: completed + failed == accepted, with the failure
    // counted as a deadline.
    let n = 16;
    let w = gen::random_connected(n, 0.3, 14, 0xDEAD);
    let svc = SolveService::start(ServeConfig {
        prefer_packed: false, // scalar: slow enough that 1ms cannot finish
        ..batching_config(4, Duration::from_millis(100))
    });
    let healthy: Vec<_> = [0usize, 5]
        .into_iter()
        .map(|d| {
            svc.submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: d }))
                .expect("submit")
        })
        .collect();
    let mut doomed_spec = JobSpec::new(w.clone(), JobKind::Shortest { dest: 9 });
    doomed_spec.deadline = Some(Duration::from_millis(1));
    let doomed = svc.submit(doomed_spec).expect("submit");

    for (d, t) in [0usize, 5].into_iter().zip(healthy) {
        let report = t.wait();
        let JobOutcome::Shortest(out) = report.outcome.expect("healthy lane must complete") else {
            panic!("expected a shortest outcome");
        };
        assert_eq!(out, solo(&w, d), "healthy lane {d} diverged from solo");
    }
    let failure = doomed.wait().outcome.expect_err("1ms cannot solve n=16");
    assert!(
        matches!(
            failure,
            ServeError::DeadlineExceeded | ServeError::DeadlineExpiredInQueue { .. }
        ),
        "expected a deadline-class failure, got {failure:?}"
    );
    let metrics = svc.shutdown();
    assert_eq!(metrics.counter("serve.accepted"), 3);
    assert_eq!(
        metrics.counter("serve.completed") + metrics.counter("serve.failed"),
        3,
        "every accepted job must be tallied exactly once"
    );
    assert_eq!(metrics.counter("serve.completed"), 2);
    assert_eq!(metrics.counter("serve.deadline_exceeded"), 1);
}

#[test]
fn interrupted_batched_campaign_resumes_byte_identically() {
    // A batched APSP campaign killed by a deterministic step budget must
    // hand back a checkpoint that resumes — on another batching-enabled
    // service — to the byte-identical final document a never-interrupted
    // campaign produces, batched or not.
    let n = 8;
    let w = gen::random_connected(n, 0.35, 12, 0x5E5A);
    let apsp = |resume_from| JobKind::Apsp {
        resume_from,
        checkpoint_every: 1,
    };
    // Budget ~2.5 solo destination solves: with 2 lanes per wave the
    // first wave (2 destinations) lands and flushes, and the campaign
    // dies mid-flight well before its 4th wave.
    let solo_steps = {
        let mut session = McpSession::new(&w).expect("session");
        session.solve(0).expect("solve");
        session.into_ppa().steps().total()
    };
    let budget = solo_steps * 5 / 2;

    let final_doc = |config: ServeConfig, resume: Option<ppa_obs::Json>| -> ppa_obs::Json {
        let svc = SolveService::start(config);
        let report = svc
            .submit(JobSpec::new(w.clone(), apsp(resume)))
            .expect("submit")
            .wait();
        let JobOutcome::Apsp(doc) = report.outcome.expect("campaign must complete") else {
            panic!("expected an APSP outcome");
        };
        doc
    };

    // Kill: the budgeted campaign must die with a checkpoint in hand.
    let svc = SolveService::start(batching_config(2, Duration::from_millis(5)));
    let mut spec = JobSpec::new(w.clone(), apsp(None));
    spec.step_budget = Some(budget);
    let report = svc.submit(spec).expect("submit").wait();
    drop(svc);
    let ServeError::Interrupted { checkpoint, cause } = report
        .outcome
        .expect_err("the budget must kill the campaign")
    else {
        panic!("expected an interrupted campaign");
    };
    assert!(
        matches!(*cause, ServeError::StepBudgetExhausted { .. }),
        "unexpected interruption cause: {cause}"
    );

    let resumed = final_doc(
        batching_config(2, Duration::from_millis(5)),
        Some(checkpoint),
    );
    let batched = final_doc(batching_config(2, Duration::from_millis(5)), None);
    let solo_campaign = final_doc(ServeConfig::default(), None);
    assert_eq!(
        resumed.to_string_compact(),
        batched.to_string_compact(),
        "kill+resume must reproduce the uninterrupted batched campaign byte-for-byte"
    );
    assert_eq!(
        batched.to_string_compact(),
        solo_campaign.to_string_compact(),
        "batched campaigns must checkpoint byte-identically to solo campaigns"
    );
}
