//! Seeded soak: a random mix of jobs — including deliberate worker
//! panics, injected faults, and tight step budgets — through a small
//! pool, then a graceful drain. The service's own `serve.*` counters
//! must reconcile 1:1 against what the client observed: no job lost,
//! none double-reported, every rejection and panic accounted for.

use ppa_graph::{gen, WeightMatrix};
use ppa_serve::{
    ApspCheckpoint, JobKind, JobOutcome, JobSpec, RetryPolicy, ServeConfig, ServeError,
    SolveService,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Duration;

fn soak_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 8,
        retry: RetryPolicy {
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
            ..RetryPolicy::default()
        },
        seed: 17,
        ..ServeConfig::default()
    }
}

#[test]
fn seeded_soak_reconciles_client_counts_with_service_metrics() {
    let mut rng = SmallRng::seed_from_u64(0x50AB);
    let graphs: Vec<WeightMatrix> = (0..4)
        .map(|s| gen::random_connected(5 + s, 0.45, 9, s as u64))
        .collect();
    let svc = SolveService::start(soak_config(4));

    const JOBS: usize = 120;
    let mut tickets = Vec::new();
    let mut client_rejected = 0u64;
    for i in 0..JOBS {
        let g = graphs[rng.gen_range(0..graphs.len())].clone();
        let n = g.n();
        let kind = match rng.gen_range(0..10) {
            0 => JobKind::Chaos,
            1 | 2 => JobKind::Widest {
                dest: rng.gen_range(0..n),
            },
            3 => JobKind::Apsp {
                resume_from: None,
                checkpoint_every: 2,
            },
            _ => JobKind::Shortest {
                dest: rng.gen_range(0..n),
            },
        };
        let mut spec = JobSpec::new(g, kind);
        if rng.gen_range(0..6) == 0 {
            spec.transient_faults = Some((0.002, i as u64));
        }
        if rng.gen_range(0..8) == 0 {
            spec.step_budget = Some(rng.gen_range(20..400u64));
        }
        match svc.submit(spec) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Rejected { .. }) => client_rejected += 1,
            Err(other) => panic!("unexpected submit failure: {other}"),
        }
    }
    let client_accepted = tickets.len() as u64;

    // Graceful drain: every accepted job must still be reported.
    let metrics = svc.shutdown();

    let mut seen_ids = HashSet::new();
    let (mut ok, mut failed, mut panicked) = (0u64, 0u64, 0u64);
    for t in tickets {
        let id = t.id();
        let report = t.wait();
        assert_eq!(report.id, id, "report routed to the wrong ticket");
        assert!(seen_ids.insert(report.id), "job {id} reported twice");
        match &report.outcome {
            Ok(_) => ok += 1,
            Err(ServeError::WorkerPanicked { .. }) => {
                panicked += 1;
                failed += 1;
            }
            Err(_) => failed += 1,
        }
    }

    assert_eq!(ok + failed, client_accepted, "a drained job went missing");
    assert_eq!(metrics.counter("serve.submitted"), JOBS as u64);
    assert_eq!(metrics.counter("serve.accepted"), client_accepted);
    assert_eq!(
        metrics.counter("serve.rejected_queue_full"),
        client_rejected
    );
    assert_eq!(metrics.counter("serve.completed"), ok);
    assert_eq!(metrics.counter("serve.failed"), failed);
    assert_eq!(metrics.counter("serve.worker_panics"), panicked);
    assert_eq!(
        metrics.counter("serve.workers_replaced"),
        panicked,
        "every panicked worker must have been replaced before Stop"
    );
    assert_eq!(
        metrics.histogram("serve.latency_us").map(|h| h.count),
        Some(client_accepted),
        "every accepted job contributes exactly one latency sample"
    );
    assert!(panicked > 0, "seed must exercise the chaos path");
    assert!(client_rejected > 0, "seed must exercise backpressure");
}

#[test]
fn killed_campaign_resumes_on_a_fresh_service_byte_identically() {
    let w = gen::random_connected(7, 0.4, 9, 23);
    let apsp = |resume_from| JobKind::Apsp {
        resume_from,
        checkpoint_every: 1,
    };

    // Reference document from an uninterrupted campaign.
    let svc = SolveService::start(soak_config(1));
    let full = svc
        .submit(JobSpec::new(w.clone(), apsp(None)))
        .unwrap()
        .wait();
    let JobOutcome::Apsp(reference) = full.outcome.unwrap() else {
        panic!("expected an APSP outcome");
    };
    svc.shutdown();

    // Measure the campaign's step cost so the kill lands mid-way.
    let mut session = ppa_mcp::McpSession::new(&w).unwrap();
    session.ppa_mut().limit_steps(1_000_000);
    session.all_pairs().unwrap();
    let used = 1_000_000 - session.ppa_mut().steps_remaining().unwrap();

    // "Kill" a campaign partway: a step budget interrupts it, and the
    // whole service is torn down — only the checkpoint document survives.
    let svc = SolveService::start(soak_config(1));
    let mut spec = JobSpec::new(w.clone(), apsp(None));
    spec.step_budget = Some(used / 2);
    let report = svc.submit(spec).unwrap().wait();
    let ServeError::Interrupted { checkpoint, .. } = report.outcome.unwrap_err() else {
        panic!("half the campaign's steps must interrupt it mid-way");
    };
    svc.shutdown();
    let progress = ApspCheckpoint::from_json(&checkpoint).unwrap();
    assert!(progress.next_dest() > 0 && !progress.is_complete());

    // A brand-new service (fresh machines, fresh pool) finishes it.
    let svc = SolveService::start(soak_config(1));
    let resumed = svc
        .submit(JobSpec::new(w, apsp(Some(checkpoint))))
        .unwrap()
        .wait();
    let JobOutcome::Apsp(final_doc) = resumed.outcome.unwrap() else {
        panic!("resumed campaign must complete");
    };
    let metrics = svc.shutdown();
    assert_eq!(final_doc.to_string_compact(), reference.to_string_compact());
    assert_eq!(metrics.counter("serve.resumes"), 1);
}
