//! Property tests of the wire codec on attacker-controlled bytes: the
//! decoder must never panic, every failure must be a typed
//! [`WireError`], and well-formed documents must round-trip exactly —
//! on random streams, on mutated valid frames, and on every strict
//! truncation of a valid frame.

use ppa_obs::Json;
use ppa_serve::wire::{
    read_incoming, write_frame, Incoming, Request, Response, SubmitRequest, WireError, WireFailure,
    DEFAULT_MAX_FRAME,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::io::Cursor;

const FUZZ_MAX_FRAME: usize = 64 << 10;

fn bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    (0..max_len)
        .prop_flat_map(|len| proptest::collection::vec((0u32..256).prop_map(|b| b as u8), len))
}

fn json_doc() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (0u64..1_000_000_000).prop_map(Json::from),
        "[a-z ]{0,12}".prop_map(Json::Str),
    ]
    .boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
            (proptest::collection::vec("[a-z]{1,6}", 0..4), Just(())).prop_flat_map(
                move |(keys, ())| {
                    let inner = inner.clone();
                    proptest::collection::vec(inner, keys.len()).prop_map(move |vals| {
                        Json::Object(keys.clone().into_iter().zip(vals).collect())
                    })
                }
            ),
        ]
    })
}

fn submit_request() -> impl Strategy<Value = Request> {
    (
        "[0-9a-z \n]{0,24}",
        prop_oneof![
            Just("shortest"),
            Just("widest"),
            Just("apsp"),
            Just("chaos")
        ],
        0usize..64,
        1usize..8,
        any::<bool>(),
        (
            prop_oneof![Just(None), (0u64..100_000).prop_map(Some)],
            prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)],
        ),
    )
        .prop_map(
            |(graph, kind, dest, every, wait, (deadline_ms, step_budget))| {
                Request::Submit(SubmitRequest {
                    graph,
                    kind: kind.to_owned(),
                    dest,
                    checkpoint_every: every,
                    resume_from: None,
                    deadline_ms,
                    step_budget,
                    transient_faults: None,
                    wait,
                })
            },
        )
}

fn any_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        submit_request().boxed(),
        (0u64..1000).prop_map(|id| Request::Result { id }).boxed(),
        (0u64..1000).prop_map(|id| Request::Cancel { id }).boxed(),
        Just(Request::Status).boxed(),
        Just(Request::Metrics).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_streams_never_panic_and_errors_stay_typed(stream in bytes(512)) {
        let mut r = Cursor::new(stream);
        // Drain the stream: every step is Ok(..) or a typed WireError;
        // a panic would fail the property outright.
        for _ in 0..64 {
            match read_incoming(&mut r, FUZZ_MAX_FRAME) {
                Ok(Incoming::Eof) => break,
                Ok(_) => continue,
                Err(
                    WireError::Truncated
                    | WireError::FrameTooLarge { .. }
                    | WireError::Malformed { .. },
                ) => break,
                Err(WireError::Io { .. }) => {
                    prop_assert!(false, "a Cursor cannot fail transport i/o");
                }
            }
        }
    }

    #[test]
    fn mutated_valid_frames_never_panic(doc in json_doc(), flips in bytes(8), cut in 0usize..512) {
        let mut frame = Vec::new();
        write_frame(&mut frame, &doc).unwrap();
        // Byte flips at positions derived from the fuzz input.
        let mut mutated = frame.clone();
        for (i, b) in flips.iter().enumerate() {
            if !mutated.is_empty() {
                let pos = (*b as usize + i * 131) % mutated.len();
                mutated[pos] ^= b.wrapping_add(1);
            }
        }
        let mut r = Cursor::new(mutated);
        let _ = read_incoming(&mut r, FUZZ_MAX_FRAME);
        // Truncations at an arbitrary offset.
        let cut = cut.min(frame.len());
        let mut r = Cursor::new(frame[..cut].to_vec());
        match read_incoming(&mut r, FUZZ_MAX_FRAME) {
            Ok(Incoming::Frame(back)) => {
                // Only the untruncated frame may decode.
                prop_assert_eq!(cut, frame.len());
                prop_assert_eq!(back.to_string_compact(), doc.to_string_compact());
            }
            Ok(other) => prop_assert!(
                matches!(other, Incoming::Eof) && cut == 0,
                "unexpected decode of a truncated frame: {:?}", other
            ),
            Err(_) => prop_assert!(cut < frame.len()),
        }
    }

    #[test]
    fn well_formed_documents_round_trip_exactly(doc in json_doc()) {
        let mut frame = Vec::new();
        write_frame(&mut frame, &doc).unwrap();
        let mut r = Cursor::new(frame);
        let Ok(Incoming::Frame(back)) = read_incoming(&mut r, DEFAULT_MAX_FRAME) else {
            return Err(TestCaseError::fail("valid frame failed to decode"));
        };
        prop_assert_eq!(back.to_string_compact(), doc.to_string_compact());
        prop_assert_eq!(read_incoming(&mut r, DEFAULT_MAX_FRAME).unwrap(), Incoming::Eof);
    }

    #[test]
    fn requests_survive_the_full_wire_path(req in any_request()) {
        let mut frame = Vec::new();
        write_frame(&mut frame, &req.to_json()).unwrap();
        let mut r = Cursor::new(frame);
        let Ok(Incoming::Frame(doc)) = read_incoming(&mut r, DEFAULT_MAX_FRAME) else {
            return Err(TestCaseError::fail("request frame failed to decode"));
        };
        prop_assert_eq!(Request::from_json(&doc).unwrap(), req);
    }

    #[test]
    fn random_json_never_panics_request_or_response_parsers(doc in json_doc()) {
        // Any JSON document — almost never a valid protocol message —
        // must produce Ok or Err(String), never a panic.
        let _ = Request::from_json(&doc);
        let _ = Response::from_json(&doc);
        let _ = ppa_serve::wire::outcome_from_json(&doc);
    }

    #[test]
    fn error_responses_round_trip(kind in "[a-z_]{1,16}", msg in "[a-z :]{0,32}",
                                  retry in prop_oneof![Just(None), (0u64..10_000).prop_map(Some)]) {
        let resp = Response::Error(WireFailure {
            kind,
            message: msg,
            id: None,
            retry_after_ms: retry,
            checkpoint: None,
        });
        let text = resp.to_json().to_string_compact();
        let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, resp);
    }
}
