//! `ppa-serve` — a hardened concurrent solve service over the PPA stack.
//!
//! The solver crates answer *"is the algorithm right?"*; this crate
//! answers *"can it be operated?"*. A [`SolveService`] runs a pool of
//! worker threads over [`McpSession`](ppa_mcp::McpSession)s and accepts
//! MCP, widest-path, and all-pairs jobs through a **bounded** queue:
//!
//! * **Backpressure** — a full queue rejects the submission
//!   ([`ServeError::Rejected`]) instead of buffering unboundedly.
//! * **Deadlines & step budgets** — a watchdog cancels the machine
//!   cooperatively ([`ppa_machine::CancelToken`]) when a job's deadline
//!   passes, and every attempt runs under a controller step budget, so a
//!   pathological input (the paper's `O(p·h)` loop with an adversarial
//!   `p`) can never wedge a worker. Both surface as typed errors.
//! * **Panic isolation** — a panicking job is caught, reported as
//!   [`ServeError::WorkerPanicked`], and the worker is replaced by a
//!   supervisor thread. No ticket is ever left hanging.
//! * **Retries** — corruption-class failures (transient injected faults)
//!   are retried on a fresh machine with exponential backoff + jitter
//!   ([`RetryPolicy`]), reusing the recovery layer's failure taxonomy.
//! * **Circuit breaking** — repeated failures on the fast backend
//!   (packed by default, threaded when [`ServeConfig::prefer_threaded`]
//!   is set) trip a [`CircuitBreaker`] that falls back to the scalar
//!   reference backend and only re-admits fast traffic after a live
//!   divergence probe passes.
//! * **Self-healing** — shortest-path jobs can run lane-replicated
//!   under DMR/TMR voting ([`ServeConfig::redundancy`]); a background
//!   scrubber runs six-pattern BIST on idle workers under a duty-cycle
//!   budget, and a persistent per-machine [`HealthLedger`] quarantines
//!   machines with localized faults (routing jobs away, spinning up
//!   replacements) and re-admits them only after a clean sweep plus N
//!   clean probe solves.
//! * **Checkpoint/resume** — all-pairs campaigns flush an
//!   [`ApspCheckpoint`] as they go; an interrupted campaign returns
//!   [`ServeError::Interrupted`] with the last flushed document and can
//!   be resumed to a byte-identical final result.
//!
//! Everything observable flows through [`ppa_obs::Metrics`] under
//! `serve.*` names, so a client can reconcile what it saw (rejections,
//! deadline misses, retries, panics) 1:1 against the service's own
//! counters — the stress campaign in `ppa-bench` does exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod checkpoint;
pub mod health;
pub mod introspect;
pub mod job;
pub mod net;
pub mod policy;
pub mod service;
pub mod shard;
pub mod wire;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Route};
pub use checkpoint::{ApspCheckpoint, DestResult};
pub use health::{HealthLedger, HealthPolicy, HealthRecord, MachineHealth};
pub use introspect::{
    BreakerView, HealthView, InflightJob, Introspection, StatusReporter, WorkerView,
};
pub use job::{BackendChoice, JobKind, JobOutcome, JobReport, JobSpec, ServeError};
pub use net::{ClientError, NetClient, NetConfig, NetServer};
pub use policy::RetryPolicy;
pub use service::{
    BatchingConfig, FaultSpec, JobTicket, MachineFaultPlan, ScrubConfig, ServeConfig, SolveService,
};
pub use shard::{
    merge_shard_files, merge_shards, run_shard_worker, shard_ranges, ShardCheckpoint, ShardError,
};
pub use wire::{Request, Response, SubmitRequest, WireError, WireFailure};
