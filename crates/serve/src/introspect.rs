//! Point-in-time service introspection: a JSON-round-trippable snapshot
//! of everything a live [`SolveService`](crate::SolveService) knows
//! about itself — queue depth, in-flight jobs with their age and
//! deadline, per-worker state, breaker state, the retry/replacement
//! counters, and the full merged metrics registry.
//!
//! The snapshot is *exact*: [`Introspection::from_json`] of
//! [`Introspection::to_json`] reproduces the value (and its JSON bytes)
//! identically, so a snapshot persisted by `report serve` or dumped by
//! `solve --serve --status-every` can be diffed, archived, and
//! reconciled against client-side tallies without loss.

use crate::breaker::BreakerState;
use crate::service::SolveService;
use ppa_obs::{Json, Metrics};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One job the pool is executing right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InflightJob {
    /// Job id (matches the ticket and the eventual report).
    pub id: u64,
    /// Job kind label (`shortest`, `widest`, `apsp`, `chaos`).
    pub kind: String,
    /// Microseconds since the job was submitted.
    pub age_us: u64,
    /// Effective deadline in microseconds from submission (per-job
    /// deadline, else the service default), when one applies.
    pub deadline_us: Option<u64>,
    /// Index of the worker executing the job.
    pub worker: u64,
}

impl InflightJob {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("kind", Json::Str(self.kind.clone())),
            ("age_us", Json::Num(self.age_us as f64)),
            (
                "deadline_us",
                match self.deadline_us {
                    Some(d) => Json::Num(d as f64),
                    None => Json::Null,
                },
            ),
            ("worker", Json::Num(self.worker as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<InflightJob, String> {
        Ok(InflightJob {
            id: field_u64(v, "id")?,
            kind: field_str(v, "kind")?,
            age_us: field_u64(v, "age_us")?,
            deadline_us: match v.get("deadline_us") {
                Some(Json::Null) | None => None,
                Some(d) => Some(
                    d.as_f64()
                        .ok_or_else(|| "inflight deadline_us is not a number".to_owned())?
                        as u64,
                ),
            },
            worker: field_u64(v, "worker")?,
        })
    }
}

/// One worker thread's state at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerView {
    /// Worker index (monotonically assigned; replacements get new
    /// indices, so gaps mean panics happened).
    pub index: u64,
    /// The id of the job this worker is executing, `None` when idle
    /// (blocked on the intake queue) or scrubbing.
    pub job: Option<u64>,
    /// Whether the worker is sweeping/probing its machine right now
    /// (background scrub, quarantine sweep, or probation probe). A
    /// scrubbing worker is deliberately *not* "idle", so client tallies
    /// reconcile 1:1 against snapshots.
    pub scrubbing: bool,
}

impl WorkerView {
    fn state_label(self) -> &'static str {
        if self.job.is_some() {
            "running"
        } else if self.scrubbing {
            "scrubbing"
        } else {
            "idle"
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("index", Json::Num(self.index as f64)),
            ("state", Json::Str(self.state_label().to_owned())),
            (
                "job",
                match self.job {
                    Some(id) => Json::Num(id as f64),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<WorkerView, String> {
        let job = match v.get("job") {
            Some(Json::Null) | None => None,
            Some(j) => Some(
                j.as_f64()
                    .ok_or_else(|| "worker job is not a number".to_owned())? as u64,
            ),
        };
        let state = field_str(v, "state")?;
        let scrubbing = match state.as_str() {
            "running" | "idle" => false,
            "scrubbing" => true,
            other => return Err(format!("unknown worker state {other:?}")),
        };
        let view = WorkerView {
            index: field_u64(v, "index")?,
            job,
            scrubbing,
        };
        if state != view.state_label() {
            return Err(format!(
                "worker state {state:?} contradicts its job field (expected {:?})",
                view.state_label()
            ));
        }
        Ok(view)
    }
}

/// One machine's health-ledger record at snapshot time (see
/// [`crate::health::HealthLedger`]). Records outlive their workers, so
/// a snapshot may show machines whose worker already exited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthView {
    /// Worker index the machine belongs to.
    pub worker: u64,
    /// Quarantine state label: `healthy`, `suspect`, `quarantined`, or
    /// `probation`.
    pub state: String,
    /// Corruption-class failures sighted while serving.
    pub fault_sightings: u64,
    /// Redundant-vote disagreements among the sightings.
    pub vote_disagreements: u64,
    /// BIST sweeps run against this machine.
    pub scrubs: u64,
    /// Sweeps that localized at least one stuck switch.
    pub bist_faults: u64,
    /// Probation probe solves.
    pub probes: u64,
    /// Consecutive clean observations in the current state.
    pub clean_streak: u64,
}

impl HealthView {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("worker", Json::Num(self.worker as f64)),
            ("state", Json::Str(self.state.clone())),
            ("fault_sightings", Json::Num(self.fault_sightings as f64)),
            (
                "vote_disagreements",
                Json::Num(self.vote_disagreements as f64),
            ),
            ("scrubs", Json::Num(self.scrubs as f64)),
            ("bist_faults", Json::Num(self.bist_faults as f64)),
            ("probes", Json::Num(self.probes as f64)),
            ("clean_streak", Json::Num(self.clean_streak as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<HealthView, String> {
        let view = HealthView {
            worker: field_u64(v, "worker")?,
            state: field_str(v, "state")?,
            fault_sightings: field_u64(v, "fault_sightings")?,
            vote_disagreements: field_u64(v, "vote_disagreements")?,
            scrubs: field_u64(v, "scrubs")?,
            bist_faults: field_u64(v, "bist_faults")?,
            probes: field_u64(v, "probes")?,
            clean_streak: field_u64(v, "clean_streak")?,
        };
        match view.state.as_str() {
            "healthy" | "suspect" | "quarantined" | "probation" => Ok(view),
            other => Err(format!("unknown machine health state {other:?}")),
        }
    }
}

/// The circuit breaker's state, flattened for JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerView {
    /// `closed`, `open`, or `half-open`.
    pub state: String,
    /// Jobs left in the Open-state cooldown (0 unless `state == open`).
    pub cooldown_left: u64,
}

impl BreakerView {
    /// Flattens a live [`BreakerState`].
    pub fn from_state(s: BreakerState) -> BreakerView {
        match s {
            BreakerState::Closed => BreakerView {
                state: "closed".to_owned(),
                cooldown_left: 0,
            },
            BreakerState::Open { cooldown_left } => BreakerView {
                state: "open".to_owned(),
                cooldown_left: u64::from(cooldown_left),
            },
            BreakerState::HalfOpen => BreakerView {
                state: "half-open".to_owned(),
                cooldown_left: 0,
            },
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("state", Json::Str(self.state.clone())),
            ("cooldown_left", Json::Num(self.cooldown_left as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<BreakerView, String> {
        let view = BreakerView {
            state: field_str(v, "state")?,
            cooldown_left: field_u64(v, "cooldown_left")?,
        };
        match view.state.as_str() {
            "closed" | "open" | "half-open" => Ok(view),
            other => Err(format!("unknown breaker state {other:?}")),
        }
    }
}

/// A point-in-time snapshot of a running [`SolveService`]
/// (see [`SolveService::introspect`](crate::SolveService::introspect)).
#[derive(Debug, Clone, PartialEq)]
pub struct Introspection {
    /// Jobs accepted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Whether the intake is open (`false` once a drain began).
    pub accepting: bool,
    /// Jobs the coalescer is holding for batchmates (a subset of
    /// `queue_depth`; always 0 with batching disabled).
    pub batch_pending: u64,
    /// Lanes of coalesced batches executing right now (counts lanes,
    /// not batches; always 0 with batching disabled).
    pub batch_lanes_inflight: u64,
    /// Jobs currently executing, ordered by id.
    pub inflight: Vec<InflightJob>,
    /// Live workers, ordered by index.
    pub workers: Vec<WorkerView>,
    /// Per-machine health records, ordered by worker index (persistent:
    /// includes machines whose worker already exited).
    pub health: Vec<HealthView>,
    /// Circuit-breaker state.
    pub breaker: BreakerView,
    /// Convenience mirror of the `serve.retries` counter.
    pub retries: u64,
    /// Convenience mirror of the `serve.workers_replaced` counter.
    pub workers_replaced: u64,
    /// Convenience mirror of the `serve.health.quarantine_leaks`
    /// counter — the chaos drill's "no job ever reached a benched
    /// machine" audit; always 0 unless the health gate is broken.
    pub quarantine_leaks: u64,
    /// The full metrics registry at snapshot time.
    pub metrics: Metrics,
}

impl Introspection {
    /// Serializes the snapshot. The field order is fixed, so equal
    /// snapshots always produce byte-identical JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queue_depth", Json::Num(self.queue_depth as f64)),
            ("accepting", Json::Bool(self.accepting)),
            ("batch_pending", Json::Num(self.batch_pending as f64)),
            (
                "batch_lanes_inflight",
                Json::Num(self.batch_lanes_inflight as f64),
            ),
            ("breaker", self.breaker.to_json()),
            (
                "workers",
                Json::Array(self.workers.iter().map(|w| w.to_json()).collect()),
            ),
            (
                "health",
                Json::Array(self.health.iter().map(HealthView::to_json).collect()),
            ),
            (
                "inflight",
                Json::Array(self.inflight.iter().map(InflightJob::to_json).collect()),
            ),
            ("retries", Json::Num(self.retries as f64)),
            ("workers_replaced", Json::Num(self.workers_replaced as f64)),
            ("quarantine_leaks", Json::Num(self.quarantine_leaks as f64)),
            ("metrics", self.metrics.to_json()),
        ])
    }

    /// Parses a snapshot serialized by [`Introspection::to_json`].
    ///
    /// # Errors
    /// A message naming the first malformed field.
    pub fn from_json(v: &Json) -> Result<Introspection, String> {
        let workers = match v.get("workers") {
            Some(Json::Array(items)) => items
                .iter()
                .map(WorkerView::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing workers array".to_owned()),
        };
        let health = match v.get("health") {
            Some(Json::Array(items)) => items
                .iter()
                .map(HealthView::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing health array".to_owned()),
        };
        let inflight = match v.get("inflight") {
            Some(Json::Array(items)) => items
                .iter()
                .map(InflightJob::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing inflight array".to_owned()),
        };
        Ok(Introspection {
            queue_depth: field_u64(v, "queue_depth")?,
            accepting: match v.get("accepting") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("missing accepting flag".to_owned()),
            },
            batch_pending: field_u64(v, "batch_pending")?,
            batch_lanes_inflight: field_u64(v, "batch_lanes_inflight")?,
            inflight,
            workers,
            health,
            breaker: BreakerView::from_json(
                v.get("breaker")
                    .ok_or_else(|| "missing breaker".to_owned())?,
            )?,
            retries: field_u64(v, "retries")?,
            workers_replaced: field_u64(v, "workers_replaced")?,
            quarantine_leaks: field_u64(v, "quarantine_leaks")?,
            metrics: Metrics::from_json(
                v.get("metrics")
                    .ok_or_else(|| "missing metrics".to_owned())?,
            )?,
        })
    }
}

/// A periodic status dumper with a **guaranteed final snapshot**: the
/// sink receives an [`Introspection`] every `period` while the service
/// runs, and exactly one more — flagged `final` — taken strictly
/// *after* [`StatusReporter::finish`] was called. Because the caller
/// finishes the reporter only after its last ticket reported, the
/// final snapshot's counters are settled and reconcile 1:1 against
/// client-side tallies (`solve --serve --status-every` relies on this;
/// the raw sidecar thread it replaced could take its last snapshot
/// before the report landed and miss the job's own counters).
pub struct StatusReporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatusReporter {
    /// Starts the reporter thread. `sink` is called as
    /// `sink(snapshot, is_final)`; `is_final` is `true` on exactly the
    /// last call, which happens after `finish` (or drop) requested the
    /// stop.
    pub fn start(
        svc: Arc<SolveService>,
        period: Duration,
        mut sink: impl FnMut(Introspection, bool) + Send + 'static,
    ) -> StatusReporter {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Acquire) {
                sink(svc.introspect(), false);
                // Sleep in slices so a finish() mid-period is observed
                // promptly instead of after a full period.
                let mut slept = Duration::ZERO;
                while slept < period && !flag.load(Ordering::Acquire) {
                    let slice = (period - slept).min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
            // The guaranteed final snapshot: taken only after the stop
            // request, so every counter the caller could have observed
            // is already in it.
            sink(svc.introspect(), true);
        });
        StatusReporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the reporter and blocks until the final snapshot has been
    /// delivered to the sink.
    pub fn finish(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatusReporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn field_u64(v: &Json, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field {name:?}"))
}

fn field_str(v: &Json, name: &str) -> Result<String, String> {
    match v.get(name) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {name:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Introspection {
        let mut metrics = Metrics::new();
        metrics.inc("serve.accepted", 5);
        metrics.observe("serve.latency_us", 1234);
        Introspection {
            queue_depth: 2,
            accepting: true,
            batch_pending: 1,
            batch_lanes_inflight: 3,
            inflight: vec![InflightJob {
                id: 7,
                kind: "apsp".to_owned(),
                age_us: 431,
                deadline_us: Some(9000),
                worker: 1,
            }],
            workers: vec![
                WorkerView {
                    index: 0,
                    job: None,
                    scrubbing: false,
                },
                WorkerView {
                    index: 1,
                    job: Some(7),
                    scrubbing: false,
                },
                WorkerView {
                    index: 2,
                    job: None,
                    scrubbing: true,
                },
            ],
            health: vec![
                HealthView {
                    worker: 0,
                    state: "healthy".to_owned(),
                    fault_sightings: 0,
                    vote_disagreements: 0,
                    scrubs: 3,
                    bist_faults: 0,
                    probes: 0,
                    clean_streak: 3,
                },
                HealthView {
                    worker: 2,
                    state: "quarantined".to_owned(),
                    fault_sightings: 2,
                    vote_disagreements: 1,
                    scrubs: 4,
                    bist_faults: 2,
                    probes: 1,
                    clean_streak: 0,
                },
            ],
            breaker: BreakerView::from_state(BreakerState::Open { cooldown_left: 3 }),
            retries: 4,
            workers_replaced: 1,
            quarantine_leaks: 0,
            metrics,
        }
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let snap = sample();
        let doc = snap.to_json();
        let back = Introspection::from_json(&doc).unwrap();
        assert_eq!(back, snap);
        assert_eq!(
            back.to_json().to_string_compact(),
            doc.to_string_compact(),
            "round-tripped snapshot must re-serialize byte-identically"
        );
    }

    #[test]
    fn parse_survives_json_text_round_trip() {
        let snap = sample();
        let text = snap.to_json().to_string_pretty();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(Introspection::from_json(&doc).unwrap(), snap);
    }

    #[test]
    fn breaker_states_flatten_distinctly() {
        let closed = BreakerView::from_state(BreakerState::Closed);
        let open = BreakerView::from_state(BreakerState::Open { cooldown_left: 8 });
        let half = BreakerView::from_state(BreakerState::HalfOpen);
        assert_eq!(closed.state, "closed");
        assert_eq!(open.state, "open");
        assert_eq!(open.cooldown_left, 8);
        assert_eq!(half.state, "half-open");
    }

    #[test]
    fn the_final_snapshot_reconciles_with_client_tallies() {
        use crate::job::{JobKind, JobSpec};
        use crate::service::ServeConfig;
        use std::sync::Mutex;

        let svc = Arc::new(SolveService::start(ServeConfig {
            workers: 2,
            queue_capacity: 2,
            ..ServeConfig::default()
        }));
        let snaps: Arc<Mutex<Vec<(Introspection, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_snaps = Arc::clone(&snaps);
        let reporter = StatusReporter::start(
            Arc::clone(&svc),
            Duration::from_millis(5),
            move |snap, is_final| sink_snaps.lock().unwrap().push((snap, is_final)),
        );

        // Client-side tallies: submissions, rejections, completions.
        let w = ppa_graph::gen::random_connected(16, 0.4, 9, 0x57A7);
        let (mut submitted, mut rejected, mut completed) = (0u64, 0u64, 0u64);
        let mut tickets = Vec::new();
        for _ in 0..12 {
            submitted += 1;
            match svc.submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 0 })) {
                Ok(t) => tickets.push(t),
                Err(_) => rejected += 1,
            }
        }
        for t in tickets {
            assert!(t.wait().outcome.is_ok());
            completed += 1;
        }

        // Finish only after the last report: the final snapshot must
        // contain every counter the client observed.
        reporter.finish();
        let snaps = snaps.lock().unwrap();
        let finals: Vec<&(Introspection, bool)> = snaps.iter().filter(|(_, f)| *f).collect();
        assert_eq!(finals.len(), 1, "exactly one final snapshot");
        assert!(
            std::ptr::eq(finals[0], snaps.last().unwrap()),
            "the final snapshot is the last one delivered"
        );
        let last = &finals[0].0;
        assert_eq!(last.metrics.counter("serve.submitted"), submitted);
        assert_eq!(last.metrics.counter("serve.rejected_queue_full"), rejected);
        assert_eq!(last.metrics.counter("serve.completed"), completed);
        assert_eq!(
            last.metrics.counter("serve.accepted"),
            completed,
            "accepted == completed once every ticket reported"
        );
        assert_eq!(last.queue_depth, 0, "final snapshot sees a drained queue");
        assert!(last.inflight.is_empty(), "nothing may still be running");
        // Without the guaranteed final snapshot, a fast run could end
        // with NO snapshot containing the settled counters; the
        // periodic ones are allowed to be mid-flight.
        for (snap, is_final) in snaps.iter() {
            if !is_final {
                assert!(snap.metrics.counter("serve.completed") <= completed);
            }
        }
    }

    #[test]
    fn malformed_fields_are_named_in_errors() {
        let mut doc = sample().to_json();
        // Corrupt the worker state so it contradicts the job field.
        if let Json::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "workers" {
                    if let Json::Array(ws) = v {
                        if let Json::Object(w) = &mut ws[0] {
                            for (wk, wv) in w.iter_mut() {
                                if wk == "state" {
                                    *wv = Json::Str("running".to_owned());
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = Introspection::from_json(&doc).unwrap_err();
        assert!(err.contains("contradicts"), "{err}");
        assert!(Introspection::from_json(&Json::Null).is_err());

        // A scrubbing worker claiming a job contradicts too.
        let mut doc = sample().to_json();
        if let Json::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "workers" {
                    if let Json::Array(ws) = v {
                        if let Json::Object(w) = &mut ws[2] {
                            for (wk, wv) in w.iter_mut() {
                                if wk == "job" {
                                    *wv = Json::Num(9.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = Introspection::from_json(&doc).unwrap_err();
        assert!(err.contains("contradicts"), "{err}");

        // An unknown machine-health state is named.
        let mut doc = sample().to_json();
        if let Json::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "health" {
                    if let Json::Array(hs) = v {
                        if let Json::Object(h) = &mut hs[0] {
                            for (hk, hv) in h.iter_mut() {
                                if hk == "state" {
                                    *hv = Json::Str("benched".to_owned());
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = Introspection::from_json(&doc).unwrap_err();
        assert!(err.contains("machine health"), "{err}");
    }

    #[test]
    fn scrubbing_workers_are_not_idle_in_snapshots() {
        let snap = sample();
        let doc = snap.to_json();
        let text = doc.to_string_compact();
        assert!(text.contains("\"scrubbing\""), "{text}");
        let back = Introspection::from_json(&doc).unwrap();
        let scrubbing = back.workers.iter().filter(|w| w.scrubbing).count();
        let idle = back
            .workers
            .iter()
            .filter(|w| w.job.is_none() && !w.scrubbing)
            .count();
        assert_eq!(scrubbing, 1);
        assert_eq!(idle, 1, "the scrubbing worker must not count as idle");
    }
}
