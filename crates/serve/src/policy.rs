//! Retry policy: exponential backoff with seeded jitter.
//!
//! The classification of *what* to retry reuses the recovery layer's
//! semantics ([`McpError::indicates_corruption`](ppa_mcp::McpError::indicates_corruption)):
//! transient device faults clear on a fresh attempt, so they are worth a
//! bounded number of retries; resource-limit outcomes (deadline, step
//! budget) and input-validation failures are not. The *pacing* is the
//! standard serving recipe — exponential backoff with full jitter — so
//! a burst of correlated failures does not resynchronize the workers.

use rand::rngs::SmallRng;
use rand::Rng;
use std::time::Duration;

/// Bounded retries with exponential backoff + jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based) is drawn uniformly from
    /// `[0, base * 2^(k-1)]`, capped at `max_backoff` ("full jitter").
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The jittered sleep before retry `attempt` (1-based).
    pub fn backoff(&self, attempt: u32, rng: &mut SmallRng) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let ceiling = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.gen_range(0..=nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_is_jittered_within_the_exponential_ceiling() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(12),
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for attempt in 1..=6 {
            let ceiling = Duration::from_millis(2u64 << (attempt - 1)).min(p.max_backoff);
            for _ in 0..50 {
                let b = p.backoff(attempt as u32, &mut rng);
                assert!(b <= ceiling, "attempt {attempt}: {b:?} > {ceiling:?}");
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (1..5).map(|k| p.backoff(k, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (1..5).map(|k| p.backoff(k, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zero_base_means_zero_sleep() {
        let p = RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.backoff(1, &mut rng), Duration::ZERO);
    }
}
