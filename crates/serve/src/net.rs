//! The network edge: a `std`-only TCP front end over [`SolveService`].
//!
//! One [`NetServer`] binds a `TcpListener` and speaks the wire protocol
//! of [`crate::wire`] — length-prefixed JSON frames for the job API
//! (submit/result/cancel/status/metrics/campaign) plus a minimal HTTP
//! `GET` answer on the same port so a stock Prometheus scraper can hit
//! `/metrics` and an operator can `curl /status`.
//!
//! # Admission control
//!
//! Nothing reaches a worker without passing explicit admission:
//!
//! * **Connection cap** — the accept loop refuses connections past
//!   [`NetConfig::max_connections`] with a `busy` error frame; the
//!   handler pool can never grow unboundedly.
//! * **Frame cap** — [`NetConfig::max_frame`] bounds every payload
//!   *before* allocation; an oversized length prefix costs the server
//!   nothing but a 4-byte read.
//! * **Bounded queue** — submissions ride the service's own bounded
//!   intake; a full queue answers a typed `rejected` error carrying
//!   `retry_after_ms` scaled by live queue depth, so honest clients
//!   back off harder exactly when the service is deepest under water.
//! * **Deadlines** — a request's `deadline_ms` propagates into the
//!   service's cancel-token watchdog, so a network client can never
//!   wedge a worker any more than a local caller can.
//!
//! Every admission decision is counted under `net.*` in the server's
//! own registry, which `/metrics` merges with the service's `serve.*`
//! counters — the flood test in `tests/net_admission.rs` reconciles
//! client-side tallies 1:1 against both.
//!
//! # Campaigns
//!
//! A `campaign` request runs an all-pairs sweep *server-side*, one
//! destination at a time through the same bounded queue (yielding to
//! interactive traffic at every destination), streaming a `progress`
//! frame per completed destination and finishing with the campaign's
//! checkpoint document — byte-identical to the in-process
//! [`ApspCheckpoint`](crate::ApspCheckpoint) for the same graph. A
//! failure mid-campaign carries the partial checkpoint so the client
//! can resume instead of restarting.

use crate::checkpoint::ApspCheckpoint;
use crate::job::{JobKind, JobOutcome, JobReport, JobSpec, ServeError};
use crate::service::{JobTicket, SolveService};
use crate::wire::{
    read_incoming, write_frame, write_http_response, CampaignRequest, Incoming, Request, Response,
    SubmitRequest, WireError, WireFailure,
};
use ppa_graph::io::parse_edge_list;
use ppa_obs::{Json, Metrics};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Network-edge tuning. `Default` binds an ephemeral loopback port with
/// limits sized for tests and the CLI.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (ephemeral) or `0.0.0.0:7117`.
    pub addr: String,
    /// Concurrent connections served; excess connections get a `busy`
    /// error frame and are closed (clamped to at least 1).
    pub max_connections: usize,
    /// Cap on a frame's payload length, enforced before allocation.
    pub max_frame: usize,
    /// Socket read timeout — the cadence at which idle handlers poll
    /// the shutdown flag; also bounds how long a half-open peer can
    /// hold a connection slot without sending bytes.
    pub read_timeout: Duration,
    /// Base of the `retry_after_ms` hint on admission rejections; the
    /// hint scales as `base * (1 + queue_depth)`.
    pub retry_after_base: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_connections: 32,
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(50),
            retry_after_base: Duration::from_millis(10),
        }
    }
}

/// See [`service`](crate::service): ignore poisoning, keep serving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by the accept loop and every connection handler.
struct NetShared {
    svc: Arc<SolveService>,
    config: NetConfig,
    /// Edge-level counters (`net.*`), merged with the service registry
    /// for `/metrics` and the `metrics` op.
    metrics: Mutex<Metrics>,
    /// Tickets of `wait: false` submissions awaiting a `result` fetch.
    tickets: Mutex<BTreeMap<u64, JobTicket>>,
    /// Connections currently being served (accept-loop-owned).
    active: AtomicUsize,
    stop: AtomicBool,
}

impl NetShared {
    fn inc(&self, name: &str) {
        lock(&self.metrics).inc(name, 1);
    }

    /// The merged view a scraper sees: service counters + edge counters.
    fn merged_metrics(&self) -> Metrics {
        let mut m = self.svc.metrics();
        m.merge(&lock(&self.metrics));
        m
    }

    fn retry_after_ms(&self) -> u64 {
        let base = self.config.retry_after_base.as_millis() as u64;
        base.max(1) * (1 + self.svc.queue_depth())
    }
}

/// A running network front end. Dropping the server (or calling
/// [`NetServer::shutdown`]) stops the accept loop and joins every
/// connection handler; the underlying [`SolveService`] stays up and is
/// returned to the caller's `Arc`.
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds [`NetConfig::addr`] and starts serving `svc` over it.
    ///
    /// # Errors
    /// The bind error.
    pub fn start(svc: Arc<SolveService>, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            svc,
            config,
            metrics: Mutex::new(Metrics::new()),
            tickets: Mutex::new(BTreeMap::new()),
            active: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(NetServer {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the edge-level (`net.*`) counters.
    pub fn metrics(&self) -> Metrics {
        lock(&self.shared.metrics).clone()
    }

    /// Stops accepting, wakes the accept loop, and joins it (which in
    /// turn joins every connection handler). Returns the final `net.*`
    /// registry — taken after the join, so no handler can still be
    /// incrementing. Idempotent via `Drop`.
    pub fn shutdown(mut self) -> Metrics {
        self.stop_and_join();
        lock(&self.shared.metrics).clone()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<NetShared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        handlers.retain(|h| !h.is_finished());
        let cap = shared.config.max_connections.max(1);
        // The accept loop is the only incrementer, so cap enforcement
        // cannot race with itself; handlers only ever decrement.
        if shared.active.load(Ordering::Acquire) >= cap {
            shared.inc("net.conn_rejected");
            let mut stream = stream;
            let failure = WireFailure {
                retry_after_ms: Some(shared.retry_after_ms()),
                ..WireFailure::new(
                    "busy",
                    format!("connection limit ({cap}) reached; retry later"),
                )
            };
            let _ = write_frame(&mut stream, &Response::Error(failure).to_json());
            continue;
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        shared.inc("net.conn_accepted");
        let conn_shared = Arc::clone(&shared);
        handlers.push(thread::spawn(move || {
            handle_connection(stream, &conn_shared);
            conn_shared.active.fetch_sub(1, Ordering::AcqRel);
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Serves one connection until EOF, shutdown, a transport error, or a
/// protocol violation that desynchronizes the stream.
fn handle_connection(mut stream: TcpStream, shared: &NetShared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let incoming = {
            let mut r = &stream;
            read_incoming(&mut r, shared.config.max_frame)
        };
        match incoming {
            Ok(Incoming::Eof) => return,
            Ok(Incoming::HttpGet { target }) => {
                shared.inc("net.http_gets");
                let _ = answer_http(&mut stream, shared, &target);
                return; // Connection: close
            }
            Ok(Incoming::Frame(doc)) => {
                shared.inc("net.requests");
                match Request::from_json(&doc) {
                    Ok(req) => {
                        if !dispatch(&mut stream, shared, req) {
                            return;
                        }
                    }
                    Err(reason) => {
                        // The frame itself decoded, so the stream is
                        // still in sync; answer and keep serving.
                        let kind = if reason.starts_with("unknown op") {
                            shared.inc("net.unknown_op");
                            "unknown_op"
                        } else {
                            shared.inc("net.malformed");
                            "malformed"
                        };
                        if !send(
                            &mut stream,
                            &Response::Error(WireFailure::new(kind, reason)),
                        ) {
                            return;
                        }
                    }
                }
            }
            Err(e) if e.is_timeout() => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e @ WireError::FrameTooLarge { .. }) => {
                // The payload was never read: the stream is desynced.
                // Name the violation, then close.
                shared.inc("net.oversized");
                let f = WireFailure::new("frame_too_large", e.to_string());
                let _ = send(&mut stream, &Response::Error(f));
                return;
            }
            Err(e @ (WireError::Malformed { .. } | WireError::Truncated)) => {
                shared.inc("net.malformed");
                let f = WireFailure::new("malformed", e.to_string());
                let _ = send(&mut stream, &Response::Error(f));
                return;
            }
            Err(WireError::Io { .. }) => return,
        }
    }
}

/// Writes one response frame; `false` means the peer is gone.
fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &resp.to_json()).is_ok()
}

fn answer_http(stream: &mut TcpStream, shared: &NetShared, target: &str) -> io::Result<()> {
    match target {
        "/metrics" => {
            let body = shared.merged_metrics().render_prometheus();
            write_http_response(stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/status" => {
            let body = shared.svc.introspect().to_json().to_string_compact();
            write_http_response(stream, "200 OK", "application/json", &body)
        }
        _ => write_http_response(
            stream,
            "404 Not Found",
            "text/plain",
            "try /metrics or /status\n",
        ),
    }
}

/// Handles one decoded request; `false` closes the connection.
fn dispatch(stream: &mut TcpStream, shared: &NetShared, req: Request) -> bool {
    match req {
        Request::Submit(s) => {
            let wait = s.wait;
            let spec = match job_spec_from_submit(&s) {
                Ok(spec) => spec,
                Err(f) => {
                    shared.inc("net.bad_graph");
                    return send(stream, &Response::Error(f));
                }
            };
            match shared.svc.submit(spec) {
                Ok(ticket) => {
                    shared.inc("net.submitted");
                    if wait {
                        let report = ticket.wait();
                        send(stream, &report_response(&report))
                    } else {
                        let id = ticket.id();
                        lock(&shared.tickets).insert(id, ticket);
                        send(stream, &Response::Accepted { id })
                    }
                }
                Err(e) => {
                    shared.inc("net.submit_rejected");
                    let mut f = WireFailure::from_serve_error(&e);
                    if matches!(e, ServeError::Rejected { .. }) {
                        f.retry_after_ms = Some(shared.retry_after_ms());
                    }
                    send(stream, &Response::Error(f))
                }
            }
        }
        Request::Result { id } => {
            let ticket = lock(&shared.tickets).remove(&id);
            match ticket {
                Some(ticket) => send(stream, &report_response(&ticket.wait())),
                None => send(
                    stream,
                    &Response::Error(WireFailure {
                        id: Some(id),
                        ..WireFailure::new(
                            "unknown_job",
                            format!("no pending result for job {id} on this server"),
                        )
                    }),
                ),
            }
        }
        Request::Cancel { id } => {
            let known = shared.svc.cancel(id);
            send(stream, &Response::CancelResult { id, known })
        }
        Request::Status => send(stream, &Response::Status(shared.svc.introspect().to_json())),
        Request::Metrics => send(
            stream,
            &Response::MetricsDoc(shared.merged_metrics().to_json()),
        ),
        Request::Campaign(c) => run_campaign(stream, shared, &c),
    }
}

/// Maps a wire submission onto a [`JobSpec`], validating the graph text
/// and destination before anything touches the queue.
fn job_spec_from_submit(s: &SubmitRequest) -> Result<JobSpec, WireFailure> {
    let graph = parse_edge_list(&s.graph)
        .map_err(|e| WireFailure::new("graph", format!("graph rejected: {e}")))?;
    let n = graph.n();
    let kind = match s.kind.as_str() {
        "shortest" | "widest" => {
            if s.dest >= n {
                return Err(WireFailure::new(
                    "graph",
                    format!("dest {} out of range for a {n}-vertex graph", s.dest),
                ));
            }
            if s.kind == "shortest" {
                JobKind::Shortest { dest: s.dest }
            } else {
                JobKind::Widest { dest: s.dest }
            }
        }
        "apsp" => JobKind::Apsp {
            resume_from: s.resume_from.clone(),
            checkpoint_every: s.checkpoint_every,
        },
        "chaos" => JobKind::Chaos,
        other => {
            // Unreachable through `Request::from_json`, which validates
            // the kind; kept typed for direct callers.
            return Err(WireFailure::new("malformed", format!("job kind {other:?}")));
        }
    };
    Ok(JobSpec {
        graph,
        kind,
        deadline: s.deadline_ms.map(Duration::from_millis),
        step_budget: s.step_budget,
        transient_faults: s.transient_faults,
    })
}

fn report_response(report: &JobReport) -> Response {
    match &report.outcome {
        Ok(outcome) => Response::Report {
            id: report.id,
            outcome: crate::wire::outcome_to_json(outcome),
            attempts: u64::from(report.attempts),
            backend: report.backend.map(|b| b.to_string()),
            latency_us: report.latency.as_micros() as u64,
        },
        Err(e) => Response::Error(WireFailure {
            id: Some(report.id),
            ..WireFailure::from_serve_error(e)
        }),
    }
}

/// Runs an all-pairs campaign server-side: one destination at a time
/// through the bounded queue, streaming `progress` per destination.
/// Failure frames carry the partial checkpoint for client-side resume.
/// `false` closes the connection (peer gone or fatal protocol state).
fn run_campaign(stream: &mut TcpStream, shared: &NetShared, c: &CampaignRequest) -> bool {
    shared.inc("net.campaigns");
    let graph = match parse_edge_list(&c.graph) {
        Ok(g) => g,
        Err(e) => {
            shared.inc("net.bad_graph");
            let f = WireFailure::new("graph", format!("graph rejected: {e}"));
            return send(stream, &Response::Error(f));
        }
    };
    let n = graph.n();
    let mut cp = match &c.resume_from {
        None => ApspCheckpoint::new(n),
        Some(doc) => match ApspCheckpoint::from_json(doc) {
            Ok(cp) if cp.n() == n => cp,
            Ok(cp) => {
                let f = WireFailure::new(
                    "invalid_resume",
                    format!("checkpoint is for a {}-vertex graph, not {n}", cp.n()),
                );
                return send(stream, &Response::Error(f));
            }
            Err(reason) => {
                return send(
                    stream,
                    &Response::Error(WireFailure::new("invalid_resume", reason)),
                );
            }
        },
    };
    while !cp.is_complete() {
        let dest = cp.next_dest();
        let spec = JobSpec {
            graph: graph.clone(),
            kind: JobKind::Shortest { dest },
            deadline: c.deadline_ms.map(Duration::from_millis),
            step_budget: c.step_budget,
            transient_faults: None,
        };
        let ticket = match shared.svc.submit(spec) {
            Ok(t) => t,
            Err(ServeError::Rejected { .. }) => {
                // Campaigns are batch work: yield to interactive
                // traffic and retry this destination after the hint.
                shared.inc("net.campaign_backoff");
                thread::sleep(Duration::from_millis(shared.retry_after_ms().min(250)));
                if shared.stop.load(Ordering::Acquire) {
                    return false;
                }
                continue;
            }
            Err(e) => {
                let mut f = WireFailure::from_serve_error(&e);
                f.checkpoint = Some(cp.to_json());
                return send(stream, &Response::Error(f));
            }
        };
        let report = ticket.wait();
        match report.outcome {
            Ok(JobOutcome::Shortest(out)) => {
                cp.record(&out);
                let progress = Response::Progress {
                    completed: cp.completed().len() as u64,
                    of: n as u64,
                };
                if !send(stream, &progress) {
                    return false; // peer gone; abandon the campaign
                }
            }
            Ok(_) => {
                let f = WireFailure::new(
                    "worker_panicked",
                    "campaign destination returned a non-shortest outcome",
                );
                return send(stream, &Response::Error(f));
            }
            Err(e) => {
                let mut f = WireFailure {
                    id: Some(report.id),
                    ..WireFailure::from_serve_error(&e)
                };
                f.checkpoint = Some(cp.to_json());
                return send(stream, &Response::Error(f));
            }
        }
    }
    shared.inc("net.campaigns_done");
    send(stream, &Response::Done(cp.to_json()))
}

/// Why a client call failed: at the transport, or as a typed error
/// frame from the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport or codec failed.
    Wire(WireError),
    /// The server answered with a typed failure.
    Server(WireFailure),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "server error [{}]: {}", e.kind, e.message),
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking client for the wire protocol: one TCP connection, one
/// outstanding request at a time.
pub struct NetClient {
    stream: TcpStream,
    max_frame: usize,
}

impl NetClient {
    /// Connects to a [`NetServer`].
    ///
    /// # Errors
    /// The connect error.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    /// [`WireError`] on transport failure.
    pub fn send(&mut self, req: &Request) -> Result<(), WireError> {
        write_frame(&mut self.stream, &req.to_json()).map_err(|e| WireError::Io {
            kind: e.kind(),
            msg: e.to_string(),
        })
    }

    /// Receives one response frame.
    ///
    /// # Errors
    /// [`WireError`] on transport failure, EOF, or a frame that is not
    /// a response document.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        let mut r = &self.stream;
        match read_incoming(&mut r, self.max_frame)? {
            Incoming::Frame(doc) => {
                Response::from_json(&doc).map_err(|reason| WireError::Malformed { reason })
            }
            Incoming::Eof => Err(WireError::Truncated),
            Incoming::HttpGet { .. } => Err(WireError::Malformed {
                reason: "server sent an HTTP request?".to_owned(),
            }),
        }
    }

    /// One request/response exchange.
    ///
    /// # Errors
    /// [`WireError`] on transport failure either way.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send(req)?;
        self.recv()
    }

    /// Runs a campaign, invoking `on_progress(completed, of)` per
    /// streamed progress frame, and returns the final checkpoint
    /// document.
    ///
    /// # Errors
    /// [`ClientError::Server`] with the partial checkpoint attached on
    /// an interrupted campaign; [`ClientError::Wire`] on transport
    /// failure.
    pub fn campaign(
        &mut self,
        req: CampaignRequest,
        mut on_progress: impl FnMut(u64, u64),
    ) -> Result<Json, ClientError> {
        self.send(&Request::Campaign(req))
            .map_err(ClientError::Wire)?;
        loop {
            match self.recv().map_err(ClientError::Wire)? {
                Response::Progress { completed, of } => on_progress(completed, of),
                Response::Done(doc) => return Ok(doc),
                Response::Error(f) => return Err(ClientError::Server(f)),
                other => {
                    return Err(ClientError::Wire(WireError::Malformed {
                        reason: format!("unexpected mid-campaign response: {other:?}"),
                    }))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use ppa_graph::io::to_edge_list;
    use ppa_graph::{gen, WeightMatrix};
    use ppa_mcp::McpSession;
    use std::io::{Read as _, Write as _};

    fn start_server(
        svc_config: ServeConfig,
        net_config: NetConfig,
    ) -> (NetServer, Arc<SolveService>) {
        let svc = Arc::new(SolveService::start(svc_config));
        let server = NetServer::start(Arc::clone(&svc), net_config).unwrap();
        (server, svc)
    }

    fn graph(n: usize, seed: u64) -> WeightMatrix {
        gen::random_connected(n, 0.4, 9, seed)
    }

    fn submit(graph: &WeightMatrix, kind: &str, dest: usize, wait: bool) -> Request {
        Request::Submit(SubmitRequest {
            graph: to_edge_list(graph),
            kind: kind.to_owned(),
            dest,
            checkpoint_every: 1,
            resume_from: None,
            deadline_ms: None,
            step_budget: None,
            transient_faults: None,
            wait,
        })
    }

    #[test]
    fn a_shortest_job_round_trips_the_network() {
        let (server, _svc) = start_server(ServeConfig::default(), NetConfig::default());
        let w = graph(12, 0xA11CE);
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let resp = client.call(&submit(&w, "shortest", 3, true)).unwrap();
        let Response::Report {
            outcome,
            attempts,
            backend,
            ..
        } = resp
        else {
            panic!("expected a report, got {resp:?}");
        };
        assert!(attempts >= 1);
        assert!(backend.is_some());
        let JobOutcome::Shortest(got) = crate::wire::outcome_from_json(&outcome).unwrap() else {
            panic!("expected a shortest outcome");
        };
        let want = McpSession::new(&w).unwrap().solve(3).unwrap();
        assert_eq!(got.sow, want.sow, "network answer must match in-process");
        assert_eq!(got.ptn, want.ptn);
        server.shutdown();
    }

    #[test]
    fn async_submit_result_and_unknown_job_fetches() {
        let (server, _svc) = start_server(ServeConfig::default(), NetConfig::default());
        let w = graph(10, 0xBEE);
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let Response::Accepted { id } = client.call(&submit(&w, "widest", 2, false)).unwrap()
        else {
            panic!("expected accepted");
        };
        let Response::Report { id: rid, .. } = client.call(&Request::Result { id }).unwrap() else {
            panic!("expected a report");
        };
        assert_eq!(rid, id);
        // A result is one-shot; a second fetch (or a bogus id) is a
        // typed unknown_job, not a hang.
        let Response::Error(f) = client.call(&Request::Result { id }).unwrap() else {
            panic!("expected an error for a consumed ticket");
        };
        assert_eq!(f.kind, "unknown_job");
        assert_eq!(f.id, Some(id));
        server.shutdown();
    }

    #[test]
    fn deadline_and_cancel_travel_the_wire() {
        let (server, _svc) = start_server(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            NetConfig::default(),
        );
        let w = graph(32, 0xDEAD);
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        // An impossible deadline comes back as a typed deadline error.
        let req = Request::Submit(SubmitRequest {
            deadline_ms: Some(0),
            ..match submit(&w, "shortest", 1, true) {
                Request::Submit(s) => s,
                _ => unreachable!(),
            }
        });
        let Response::Error(f) = client.call(&req).unwrap() else {
            panic!("expected a deadline error");
        };
        assert!(
            f.kind == "deadline" || f.kind == "deadline_in_queue",
            "unexpected kind {}",
            f.kind
        );
        // Cancel of a never-submitted id is known=false, not an error.
        let Response::CancelResult { known, .. } =
            client.call(&Request::Cancel { id: 999 }).unwrap()
        else {
            panic!("expected a cancel result");
        };
        assert!(!known);
        server.shutdown();
    }

    #[test]
    fn status_metrics_and_http_share_the_port() {
        let (server, svc) = start_server(ServeConfig::default(), NetConfig::default());
        let w = graph(8, 0x1234);
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let _ = client.call(&submit(&w, "shortest", 0, true)).unwrap();

        let Response::Status(doc) = client.call(&Request::Status).unwrap() else {
            panic!("expected status");
        };
        let snap = crate::introspect::Introspection::from_json(&doc).unwrap();
        assert_eq!(snap.queue_depth, 0);
        let Response::MetricsDoc(doc) = client.call(&Request::Metrics).unwrap() else {
            panic!("expected metrics");
        };
        let merged = Metrics::from_json(&doc).unwrap();
        assert_eq!(merged.counter("serve.completed"), 1);
        assert!(
            merged.counter("net.requests") >= 2,
            "edge counters merged in"
        );

        // Plain HTTP on the same port: Prometheus text for /metrics,
        // JSON for /status, 404 elsewhere.
        for (target, needle) in [
            ("/metrics", "serve_completed 1"),
            ("/metrics", "# TYPE serve_latency_us histogram"),
            ("/status", "\"queue_depth\""),
            ("/nope", "404 Not Found"),
        ] {
            let mut http = TcpStream::connect(server.local_addr()).unwrap();
            write!(http, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut text = String::new();
            http.read_to_string(&mut text).unwrap();
            assert!(
                text.contains(needle),
                "GET {target}: missing {needle:?} in {text}"
            );
        }
        drop(client);
        server.shutdown();
        assert_eq!(Arc::strong_count(&svc), 1, "server released the service");
    }

    #[test]
    fn protocol_violations_get_typed_errors_not_hangs() {
        let (server, _svc) = start_server(ServeConfig::default(), NetConfig::default());
        let addr = server.local_addr();

        // Oversized length prefix: named rejection, then close.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
        let mut client = NetClient {
            stream: raw,
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
        };
        let Response::Error(f) = client.recv().unwrap() else {
            panic!("expected a frame_too_large error");
        };
        assert_eq!(f.kind, "frame_too_large");

        // Malformed JSON payload: named rejection, then close.
        let mut raw = TcpStream::connect(addr).unwrap();
        let body = b"not json";
        raw.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
        raw.write_all(body).unwrap();
        let mut client = NetClient {
            stream: raw,
            max_frame: crate::wire::DEFAULT_MAX_FRAME,
        };
        let Response::Error(f) = client.recv().unwrap() else {
            panic!("expected a malformed error");
        };
        assert_eq!(f.kind, "malformed");

        // Unknown op and a bad graph: the stream stays usable, so one
        // connection can see both errors and then a real answer.
        let mut client = NetClient::connect(addr).unwrap();
        let doc = Json::obj(vec![("op", Json::Str("launch".to_owned()))]);
        write_frame(&mut client.stream, &doc).unwrap();
        let Response::Error(f) = client.recv().unwrap() else {
            panic!("expected unknown_op");
        };
        assert_eq!(f.kind, "unknown_op");
        let bad = Request::Submit(SubmitRequest {
            graph: "3\n0 1 -7\n".to_owned(),
            kind: "shortest".to_owned(),
            dest: 0,
            checkpoint_every: 1,
            resume_from: None,
            deadline_ms: None,
            step_budget: None,
            transient_faults: None,
            wait: true,
        });
        let Response::Error(f) = client.call(&bad).unwrap() else {
            panic!("expected a graph error");
        };
        assert_eq!(f.kind, "graph");
        let w = graph(6, 0x777);
        assert!(matches!(
            client.call(&submit(&w, "shortest", 0, true)).unwrap(),
            Response::Report { .. }
        ));
        server.shutdown();
    }

    #[test]
    fn the_connection_cap_answers_busy_with_a_retry_hint() {
        let (server, _svc) = start_server(
            ServeConfig::default(),
            NetConfig {
                max_connections: 1,
                ..NetConfig::default()
            },
        );
        let mut first = NetClient::connect(server.local_addr()).unwrap();
        // Prove the first connection's handler is live (and its slot
        // counted) before connecting the second.
        assert!(matches!(
            first.call(&Request::Status).unwrap(),
            Response::Status(_)
        ));
        let mut second = NetClient::connect(server.local_addr()).unwrap();
        let Response::Error(f) = second.recv().unwrap() else {
            panic!("expected busy");
        };
        assert_eq!(f.kind, "busy");
        assert!(f.retry_after_ms.is_some(), "busy must carry a retry hint");
        // Releasing the first slot re-admits new connections.
        drop(first);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut c = NetClient::connect(server.local_addr()).unwrap();
            match c.call(&Request::Status) {
                Ok(Response::Status(_)) => break,
                _ if std::time::Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(10))
                }
                other => panic!("slot never freed: {other:?}"),
            }
        }
        let m = server.metrics();
        assert!(m.counter("net.conn_rejected") >= 1);
        server.shutdown();
    }

    #[test]
    fn a_network_campaign_matches_the_in_process_checkpoint_byte_for_byte() {
        let (server, _svc) = start_server(ServeConfig::default(), NetConfig::default());
        let w = graph(10, 0xCA3);
        let mut expected = ApspCheckpoint::new(w.n());
        let mut session = McpSession::new(&w).unwrap();
        for d in 0..w.n() {
            expected.record(&session.solve(d).unwrap());
        }

        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let mut ticks = Vec::new();
        let done = client
            .campaign(
                CampaignRequest {
                    graph: to_edge_list(&w),
                    checkpoint_every: 1,
                    deadline_ms: None,
                    step_budget: None,
                    resume_from: None,
                },
                |completed, of| ticks.push((completed, of)),
            )
            .unwrap();
        assert_eq!(
            done.to_string_compact(),
            expected.to_json().to_string_compact(),
            "network campaign must be byte-identical to the in-process run"
        );
        assert_eq!(ticks.len(), w.n(), "one progress frame per destination");
        assert_eq!(*ticks.last().unwrap(), (w.n() as u64, w.n() as u64));
        server.shutdown();
    }

    #[test]
    fn an_interrupted_campaign_hands_back_a_resumable_checkpoint() {
        let (server, _svc) = start_server(ServeConfig::default(), NetConfig::default());
        let w = graph(10, 0x5CA1E);
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        // A starvation step budget interrupts the campaign on its first
        // destination — with a checkpoint attached.
        let err = client
            .campaign(
                CampaignRequest {
                    graph: to_edge_list(&w),
                    checkpoint_every: 1,
                    deadline_ms: None,
                    step_budget: Some(1),
                    resume_from: None,
                },
                |_, _| {},
            )
            .unwrap_err();
        let ClientError::Server(f) = err else {
            panic!("expected a server-side failure, got {err:?}");
        };
        assert_eq!(f.kind, "budget");
        let checkpoint = f.checkpoint.expect("failures must carry the checkpoint");
        // Resuming from that checkpoint with a sane budget completes,
        // and the merged result equals a clean run.
        let done = client
            .campaign(
                CampaignRequest {
                    graph: to_edge_list(&w),
                    checkpoint_every: 1,
                    deadline_ms: None,
                    step_budget: None,
                    resume_from: Some(checkpoint),
                },
                |_, _| {},
            )
            .unwrap();
        let mut clean = client
            .campaign(
                CampaignRequest {
                    graph: to_edge_list(&w),
                    checkpoint_every: 1,
                    deadline_ms: None,
                    step_budget: None,
                    resume_from: None,
                },
                |_, _| {},
            )
            .unwrap();
        assert_eq!(done.to_string_compact(), clean.to_string_compact());
        // And a checkpoint for the wrong graph is a typed rejection.
        clean = done;
        let err = client
            .campaign(
                CampaignRequest {
                    graph: to_edge_list(&graph(7, 0x0DD)),
                    checkpoint_every: 1,
                    deadline_ms: None,
                    step_budget: None,
                    resume_from: Some(clean),
                },
                |_, _| {},
            )
            .unwrap_err();
        let ClientError::Server(f) = err else {
            panic!("expected invalid_resume, got {err:?}");
        };
        assert_eq!(f.kind, "invalid_resume");
        server.shutdown();
    }
}
