//! Sharded all-pairs campaigns: split by destination range across N
//! independent service processes, each with its own crash-tolerant
//! checkpoint, merged back into one campaign document.
//!
//! # Why shard
//!
//! An all-pairs campaign is `n` independent per-destination solves —
//! embarrassingly partitionable. [`shard_ranges`] cuts `0..n` into
//! contiguous near-equal ranges; each range is owned by one *shard
//! worker* ([`run_shard_worker`], exposed as the `solve shard-worker`
//! CLI mode) running its own in-process [`SolveService`] and writing
//! its own [`ShardCheckpoint`] through the same atomic
//! temp-fsync-rename path as campaign checkpoints. A host-side merger
//! ([`merge_shard_files`], the `solve shard-merge` CLI mode) validates
//! that the shard documents form an **exact cover** of `0..n` and
//! emits the merged [`ApspCheckpoint`].
//!
//! # Crash tolerance
//!
//! A shard worker killed at any instruction — including kill -9 mid
//! checkpoint save — leaves either its previous complete checkpoint or
//! the new one on disk, never a torn file. Restarting the worker
//! resumes from the persisted prefix and re-solves at most
//! `checkpoint_every - 1` destinations. Because each destination's
//! verified solve is deterministic, the merged result after any number
//! of crashes and restarts is **byte-identical** to a single-process
//! uninterrupted campaign — the chaos drill in `ppa-bench`'s `net`
//! report kills live worker processes to prove exactly that.

use crate::checkpoint::{write_atomic, ApspCheckpoint, DestResult};
use crate::job::{JobKind, JobOutcome, JobSpec, ServeError};
use crate::service::{ServeConfig, SolveService};
use ppa_graph::WeightMatrix;
use ppa_obs::Json;
use std::fmt;
use std::fs;
use std::path::Path;
use std::time::Duration;

/// Cuts `0..n` into `shards` contiguous ranges whose sizes differ by at
/// most one (the first `n % shards` ranges take the extra destination).
/// `shards` is clamped to `1..=n.max(1)`, so no range is ever empty.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Why a shard-level operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// A persisted shard document was unusable (unreadable, torn,
    /// malformed, or inconsistent with the requested campaign) — the
    /// shard-level analogue of [`ServeError::InvalidResume`].
    Resume {
        /// What was wrong.
        reason: String,
    },
    /// Persisting a checkpoint failed (disk full, permissions, ...).
    Persist {
        /// The filesystem error.
        reason: String,
    },
    /// One destination's solve failed with a typed service error.
    Job(ServeError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Resume { reason } => write!(f, "invalid shard checkpoint: {reason}"),
            ShardError::Persist { reason } => {
                write!(f, "cannot persist shard checkpoint: {reason}")
            }
            ShardError::Job(e) => write!(f, "shard job failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Job(e) => Some(e),
            _ => None,
        }
    }
}

/// The resumable state of one shard of a campaign: results for the
/// destinations `range.0 .. range.0 + completed.len()`, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    n: usize,
    shard: usize,
    of: usize,
    completed: Vec<DestResult>,
}

impl ShardCheckpoint {
    /// An empty checkpoint for shard `shard` of `of` over an `n`-vertex
    /// graph.
    ///
    /// # Panics
    /// Panics if `shard >= of` — shard identity is driver-owned.
    pub fn new(n: usize, shard: usize, of: usize) -> Self {
        assert!(shard < of, "shard {shard} of {of} does not exist");
        ShardCheckpoint {
            n,
            shard,
            of,
            completed: Vec::new(),
        }
    }

    /// Vertices in the campaign's graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total shards in the campaign.
    pub fn of(&self) -> usize {
        self.of
    }

    /// The destination range `[start, end)` this shard owns.
    pub fn range(&self) -> (usize, usize) {
        shard_ranges(self.n, self.of)[self.shard]
    }

    /// The next destination to solve (absolute vertex index).
    pub fn next_dest(&self) -> usize {
        self.range().0 + self.completed.len()
    }

    /// Whether every destination in the shard's range is done.
    pub fn is_complete(&self) -> bool {
        let (start, end) = self.range();
        start + self.completed.len() == end
    }

    /// The completed results so far, in destination order.
    pub fn completed(&self) -> &[DestResult] {
        &self.completed
    }

    /// Records the next destination's output.
    ///
    /// # Panics
    /// Panics if `out.dest` is not the expected next destination — the
    /// shard driver owns the ordering invariant.
    pub fn record(&mut self, out: &ppa_mcp::McpOutput) {
        assert_eq!(
            out.dest,
            self.next_dest(),
            "shard must record destinations in order"
        );
        self.completed.push(DestResult::from_output(out));
    }

    /// Serializes the shard document. Deterministic: equal checkpoints
    /// produce byte-identical documents.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", 1u64.into()),
            ("kind", Json::Str("shard".to_owned())),
            ("n", (self.n as u64).into()),
            ("shard", (self.shard as u64).into()),
            ("of", (self.of as u64).into()),
            (
                "completed",
                Json::Array(self.completed.iter().map(DestResult::to_json).collect()),
            ),
        ])
    }

    /// Reconstructs a shard document from [`ShardCheckpoint::to_json`]
    /// output, checking version, shard identity, range membership, and
    /// per-destination shape.
    ///
    /// # Errors
    /// A description of the first malformed or inconsistent field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("shard checkpoint: `{k}` missing or not a u64"))
        };
        let version = num("version")?;
        if version != 1 {
            return Err(format!("shard checkpoint: unsupported version {version}"));
        }
        match v.get("kind") {
            Some(Json::Str(k)) if k == "shard" => {}
            other => return Err(format!("shard checkpoint: kind {other:?} is not \"shard\"")),
        }
        let n = num("n")? as usize;
        let shard = num("shard")? as usize;
        let of = num("of")? as usize;
        if of == 0 || shard >= of {
            return Err(format!(
                "shard checkpoint: shard {shard} of {of} does not exist"
            ));
        }
        let completed = v
            .get("completed")
            .and_then(Json::as_array)
            .ok_or("shard checkpoint: missing `completed`")?
            .iter()
            .map(DestResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let (start, end) = shard_ranges(n, of)
            .get(shard)
            .copied()
            .ok_or_else(|| format!("shard checkpoint: no range for shard {shard} of {of}"))?;
        if completed.len() > end - start {
            return Err(format!(
                "shard checkpoint: {} completed destinations for a range of {}",
                completed.len(),
                end - start
            ));
        }
        for (i, r) in completed.iter().enumerate() {
            if r.dest != start + i {
                return Err(format!(
                    "shard checkpoint: completed[{i}] is destination {}, expected {}",
                    r.dest,
                    start + i
                ));
            }
            if r.sow.len() != n || r.ptn.len() != n {
                return Err(format!(
                    "shard checkpoint: destination {} has {} costs / {} successors for n={n}",
                    r.dest,
                    r.sow.len(),
                    r.ptn.len()
                ));
            }
        }
        Ok(ShardCheckpoint {
            n,
            shard,
            of,
            completed,
        })
    }

    /// Atomically persists the shard document (same crash guarantees as
    /// [`ApspCheckpoint::save`]).
    ///
    /// # Errors
    /// [`ShardError::Persist`] with the filesystem error.
    pub fn save(&self, path: &Path) -> Result<(), ShardError> {
        write_atomic(path, self.to_json().to_string_compact().as_bytes()).map_err(|e| {
            ShardError::Persist {
                reason: format!("{}: {e}", path.display()),
            }
        })
    }

    /// Loads a shard document persisted by [`ShardCheckpoint::save`].
    ///
    /// # Errors
    /// Every failure — unreadable file, torn bytes, malformed JSON,
    /// inconsistent document — is a typed [`ShardError::Resume`]; this
    /// function never panics on untrusted file contents.
    pub fn load(path: &Path) -> Result<Self, ShardError> {
        let text = fs::read_to_string(path).map_err(|e| ShardError::Resume {
            reason: format!("cannot read {}: {e}", path.display()),
        })?;
        let doc = Json::parse(&text).map_err(|e| ShardError::Resume {
            reason: format!("{} is not valid JSON: {e}", path.display()),
        })?;
        ShardCheckpoint::from_json(&doc).map_err(|reason| ShardError::Resume { reason })
    }
}

/// Runs one shard of a campaign to completion: an in-process
/// [`SolveService`], one verified per-destination solve at a time, the
/// checkpoint at `path` flushed atomically every `checkpoint_every`
/// destinations (clamped to at least 1) and at completion.
///
/// If `path` already holds a checkpoint for this exact shard (same `n`,
/// `shard`, `of`), the run resumes after its last persisted
/// destination — the restart-after-kill path. A checkpoint for a
/// *different* campaign is a typed error, never silently overwritten.
///
/// `stall` inserts a pause after every persisted destination; chaos
/// drills use it to widen the kill window without changing results.
///
/// # Errors
/// [`ShardError::Resume`] for an unusable persisted checkpoint,
/// [`ShardError::Persist`] for save failures, [`ShardError::Job`] when
/// a destination's solve fails.
pub fn run_shard_worker(
    graph: &WeightMatrix,
    shard: usize,
    of: usize,
    path: &Path,
    checkpoint_every: usize,
    config: ServeConfig,
    stall: Option<Duration>,
) -> Result<ShardCheckpoint, ShardError> {
    let n = graph.n();
    if of == 0 || shard >= of {
        return Err(ShardError::Resume {
            reason: format!("shard {shard} of {of} does not exist"),
        });
    }
    let mut cp = if path.exists() {
        let cp = ShardCheckpoint::load(path)?;
        if cp.n() != n || cp.shard() != shard || cp.of() != of {
            return Err(ShardError::Resume {
                reason: format!(
                    "checkpoint at {} is shard {}/{} of an n={} campaign, not shard {shard}/{of} of n={n}",
                    path.display(),
                    cp.shard(),
                    cp.of(),
                    cp.n()
                ),
            });
        }
        cp
    } else {
        ShardCheckpoint::new(n, shard, of)
    };
    let every = checkpoint_every.max(1);
    let svc = SolveService::start(config);
    let mut since_flush = 0usize;
    while !cp.is_complete() {
        let dest = cp.next_dest();
        let spec = JobSpec::new(graph.clone(), JobKind::Shortest { dest });
        let ticket = match svc.submit(spec) {
            Ok(t) => t,
            Err(ServeError::Rejected { .. }) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(ShardError::Job(e)),
        };
        match ticket.wait().outcome {
            Ok(JobOutcome::Shortest(out)) => cp.record(&out),
            Ok(_) => {
                return Err(ShardError::Job(ServeError::WorkerPanicked {
                    message: "shard destination returned a non-shortest outcome".to_owned(),
                }))
            }
            Err(e) => return Err(ShardError::Job(e)),
        }
        since_flush += 1;
        if since_flush >= every || cp.is_complete() {
            cp.save(path)?;
            since_flush = 0;
            if let Some(pause) = stall {
                std::thread::sleep(pause);
            }
        }
    }
    Ok(cp)
}

/// Merges complete shard documents into one campaign checkpoint,
/// validating an **exact cover**: same `n` and shard count everywhere,
/// exactly one document per shard index, every shard complete. The
/// merged document is byte-identical to the [`ApspCheckpoint`] a
/// single-process campaign over the same graph produces.
///
/// # Errors
/// [`ShardError::Resume`] naming the first violation.
pub fn merge_shards(mut shards: Vec<ShardCheckpoint>) -> Result<ApspCheckpoint, ShardError> {
    let bad = |reason: String| ShardError::Resume { reason };
    let first = shards
        .first()
        .ok_or_else(|| bad("no shard checkpoints to merge".to_owned()))?;
    let (n, of) = (first.n(), first.of());
    if shards.len() != of {
        return Err(bad(format!(
            "campaign declares {of} shards but {} documents were given",
            shards.len()
        )));
    }
    shards.sort_by_key(ShardCheckpoint::shard);
    let mut parts: Vec<DestResult> = Vec::with_capacity(n);
    for (index, shard) in shards.iter().enumerate() {
        if shard.n() != n || shard.of() != of {
            return Err(bad(format!(
                "shard {} belongs to a different campaign (n={} of={}, expected n={n} of={of})",
                shard.shard(),
                shard.n(),
                shard.of()
            )));
        }
        if shard.shard() != index {
            return Err(bad(format!(
                "shard index {index} is covered {} times",
                if shard.shard() < index { 2 } else { 0 }
            )));
        }
        if !shard.is_complete() {
            let (start, end) = shard.range();
            return Err(bad(format!(
                "shard {index} is incomplete: {} of {} destinations ({start}..{end})",
                shard.completed().len(),
                end - start
            )));
        }
        parts.extend_from_slice(shard.completed());
    }
    ApspCheckpoint::from_parts(n, parts).map_err(bad)
}

/// Loads every path as a [`ShardCheckpoint`] and merges (see
/// [`merge_shards`]).
///
/// # Errors
/// [`ShardError::Resume`] from loading or from cover validation.
pub fn merge_shard_files(paths: &[impl AsRef<Path>]) -> Result<ApspCheckpoint, ShardError> {
    let shards = paths
        .iter()
        .map(|p| ShardCheckpoint::load(p.as_ref()))
        .collect::<Result<Vec<_>, _>>()?;
    merge_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_mcp::McpSession;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppa-shard-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn single_process_checkpoint(w: &WeightMatrix) -> ApspCheckpoint {
        let mut session = McpSession::new(w).unwrap();
        let mut cp = ApspCheckpoint::new(w.n());
        for d in 0..w.n() {
            cp.record(&session.solve(d).unwrap());
        }
        cp
    }

    #[test]
    fn ranges_cover_exactly_with_near_equal_sizes() {
        for n in 1..40 {
            for shards in 1..9 {
                let ranges = shard_ranges(n, shards);
                assert_eq!(ranges.len(), shards.min(n));
                let mut expected_start = 0;
                let (mut min_len, mut max_len) = (usize::MAX, 0);
                for &(start, end) in &ranges {
                    assert_eq!(start, expected_start, "contiguous cover of 0..{n}");
                    assert!(end > start, "no empty ranges");
                    min_len = min_len.min(end - start);
                    max_len = max_len.max(end - start);
                    expected_start = end;
                }
                assert_eq!(expected_start, n, "ranges end at n");
                assert!(
                    max_len - min_len <= 1,
                    "near-equal split of {n} into {shards}"
                );
            }
        }
        assert_eq!(shard_ranges(0, 3), vec![(0, 0)], "degenerate empty graph");
    }

    #[test]
    fn shard_documents_round_trip_and_reject_foreign_or_mangled_ones() {
        let w = gen::random_connected(10, 0.4, 9, 0x5A4D);
        let mut session = McpSession::new(&w).unwrap();
        let mut cp = ShardCheckpoint::new(10, 1, 3);
        let (start, end) = cp.range();
        assert_eq!((start, end), (4, 7), "middle shard of 10 into 3+3+... ");
        for d in start..end - 1 {
            cp.record(&session.solve(d).unwrap());
        }
        assert!(!cp.is_complete());
        assert_eq!(cp.next_dest(), end - 1);
        let text = cp.to_json().to_string_compact();
        let back = ShardCheckpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_json().to_string_compact(), text, "byte-identical");

        // A campaign checkpoint is not a shard checkpoint.
        let apsp = ApspCheckpoint::new(10).to_json();
        assert!(ShardCheckpoint::from_json(&apsp)
            .unwrap_err()
            .contains("kind"));
        // Wrong shard identity and out-of-range destinations are named.
        let doc = Json::parse(&text.replace("\"shard\":1", "\"shard\":7")).unwrap();
        assert!(ShardCheckpoint::from_json(&doc)
            .unwrap_err()
            .contains("does not exist"));
        let doc = Json::parse(&text.replace("\"dest\":4", "\"dest\":5")).unwrap();
        assert!(ShardCheckpoint::from_json(&doc)
            .unwrap_err()
            .contains("expected 4"));
    }

    #[test]
    fn sharded_run_merges_byte_identical_to_single_process() {
        let dir = scratch_dir("merge");
        let w = gen::random_connected(11, 0.4, 9, 0xC0FE);
        let expected = single_process_checkpoint(&w);
        let paths: Vec<PathBuf> = (0..3)
            .map(|s| dir.join(format!("shard-{s}.json")))
            .collect();
        for (s, path) in paths.iter().enumerate() {
            let cp = run_shard_worker(
                &w,
                s,
                3,
                path,
                2,
                ServeConfig {
                    workers: 1,
                    ..ServeConfig::default()
                },
                None,
            )
            .unwrap();
            assert!(cp.is_complete());
            // The worker's return value and the persisted file agree.
            assert_eq!(ShardCheckpoint::load(path).unwrap(), cp);
        }
        let merged = merge_shard_files(&paths).unwrap();
        assert_eq!(
            merged.to_json().to_string_compact(),
            expected.to_json().to_string_compact(),
            "sharded campaign must merge byte-identical to the single-process run"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_restarted_worker_resumes_from_the_persisted_prefix() {
        let dir = scratch_dir("resume");
        let w = gen::random_connected(10, 0.4, 9, 0xFA57);
        let path = dir.join("shard-0.json");
        // Simulate a worker killed after persisting two destinations.
        let mut partial = ShardCheckpoint::new(10, 0, 2);
        let mut session = McpSession::new(&w).unwrap();
        for d in 0..2 {
            partial.record(&session.solve(d).unwrap());
        }
        partial.save(&path).unwrap();

        let cp = run_shard_worker(&w, 0, 2, &path, 1, ServeConfig::default(), None).unwrap();
        assert!(cp.is_complete());
        // The resumed shard equals a from-scratch shard, byte for byte.
        let clean_path = dir.join("clean-0.json");
        let clean =
            run_shard_worker(&w, 0, 2, &clean_path, 1, ServeConfig::default(), None).unwrap();
        assert_eq!(
            cp.to_json().to_string_compact(),
            clean.to_json().to_string_compact()
        );
        // A checkpoint for a different campaign is refused, not clobbered.
        let err = run_shard_worker(&w, 1, 2, &path, 1, ServeConfig::default(), None).unwrap_err();
        assert!(matches!(err, ShardError::Resume { .. }), "{err}");
        assert_eq!(
            ShardCheckpoint::load(&path).unwrap().shard(),
            0,
            "the mismatched file must be left untouched"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_names_cover_violations() {
        let w = gen::random_connected(9, 0.5, 9, 0xABCD);
        let dir = scratch_dir("cover");
        let paths: Vec<PathBuf> = (0..3).map(|s| dir.join(format!("s{s}.json"))).collect();
        for (s, path) in paths.iter().enumerate() {
            run_shard_worker(&w, s, 3, path, 1, ServeConfig::default(), None).unwrap();
        }
        // Missing shard.
        let err = merge_shard_files(&paths[..2]).unwrap_err();
        assert!(err.to_string().contains("3 shards but 2"), "{err}");
        // Duplicate shard.
        let dup = vec![paths[0].clone(), paths[1].clone(), paths[1].clone()];
        let err = merge_shard_files(&dup).unwrap_err();
        assert!(err.to_string().contains("covered"), "{err}");
        // Incomplete shard.
        let mut partial = ShardCheckpoint::new(9, 2, 3);
        let mut session = McpSession::new(&w).unwrap();
        let (start, _) = partial.range();
        let mut s2 = McpSession::new(&w).unwrap();
        for d in 0..start {
            let _ = s2.solve(d);
        }
        partial.record(&session.solve(start).unwrap());
        partial.save(&paths[2]).unwrap();
        let err = merge_shard_files(&paths).unwrap_err();
        assert!(err.to_string().contains("incomplete"), "{err}");
        // Mismatched campaign.
        let other = gen::random_connected(12, 0.5, 9, 0xEF01);
        fs::remove_file(&paths[2]).unwrap();
        run_shard_worker(&other, 2, 3, &paths[2], 1, ServeConfig::default(), None).unwrap();
        let err = merge_shard_files(&paths).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        // Garbage on disk is typed, not a panic.
        fs::write(&paths[2], b"\xFF\xFEnot a checkpoint").unwrap();
        assert!(matches!(
            merge_shard_files(&paths).unwrap_err(),
            ShardError::Resume { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_widens_the_window_without_changing_results() {
        let dir = scratch_dir("stall");
        let w = gen::random_connected(6, 0.5, 9, 0x57A1);
        let stalled = run_shard_worker(
            &w,
            0,
            1,
            &dir.join("stalled.json"),
            1,
            ServeConfig::default(),
            Some(Duration::from_millis(1)),
        )
        .unwrap();
        let plain = run_shard_worker(
            &w,
            0,
            1,
            &dir.join("plain.json"),
            3,
            ServeConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(
            stalled.to_json().to_string_compact(),
            plain.to_json().to_string_compact()
        );
        // A single shard merges to the whole campaign.
        let merged = merge_shards(vec![plain]).unwrap();
        assert_eq!(
            merged.to_json().to_string_compact(),
            single_process_checkpoint(&w).to_json().to_string_compact()
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
