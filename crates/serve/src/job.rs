//! Job specifications, outcomes, and the service error taxonomy.

use ppa_graph::WeightMatrix;
use ppa_mcp::widest::WidestOutput;
use ppa_mcp::{McpError, McpOutput};
use ppa_obs::Json;
use std::fmt;
use std::time::Duration;

/// What a job asks the service to solve.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Minimum-cost paths from every vertex to `dest` (the paper's MCP
    /// problem), verified against the host-side invariants.
    Shortest {
        /// Destination vertex.
        dest: usize,
    },
    /// Widest (maximum-bottleneck) paths to `dest`.
    Widest {
        /// Destination vertex.
        dest: usize,
    },
    /// An all-pairs campaign: every destination in order, with completed
    /// destinations checkpointed so an interrupted campaign resumes
    /// instead of restarting.
    Apsp {
        /// Resume document from a previous interrupted campaign (the
        /// `checkpoint` carried by [`ServeError::Interrupted`]); `None`
        /// starts from destination 0.
        resume_from: Option<Json>,
        /// Flush a checkpoint every this-many completed destinations
        /// (clamped to at least 1). Progress past the last flush is lost
        /// on interruption — exactly like a real durability boundary.
        checkpoint_every: usize,
    },
    /// A chaos probe: the worker deliberately panics while "solving".
    /// Used by drills and the stress campaign to prove panic isolation
    /// and automatic worker replacement; never retried.
    Chaos,
}

impl JobKind {
    /// Short label used by introspection snapshots and status dumps.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Shortest { .. } => "shortest",
            JobKind::Widest { .. } => "widest",
            JobKind::Apsp { .. } => "apsp",
            JobKind::Chaos => "chaos",
        }
    }
}

/// A job submitted to the service: the graph, what to solve, and the
/// per-job resource limits.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The input graph.
    pub graph: WeightMatrix,
    /// What to solve.
    pub kind: JobKind,
    /// Wall-clock deadline measured from submission. Expiring in the
    /// queue rejects the job unrun; expiring mid-solve cancels the
    /// machine cooperatively. `None` falls back to the service default.
    pub deadline: Option<Duration>,
    /// Controller step budget per solve attempt (the cooperative brake
    /// of `ppa_machine::Machine::limit_steps`). `None` falls back to the
    /// service default.
    pub step_budget: Option<u64>,
    /// Transient-fault injection for this job's machine: probability per
    /// bus transfer and RNG seed (see
    /// `ppa_machine::TransientFaults::new`). Used by stress campaigns.
    pub transient_faults: Option<(f64, u64)>,
}

impl JobSpec {
    /// A job with no per-job overrides (service defaults apply).
    pub fn new(graph: WeightMatrix, kind: JobKind) -> Self {
        JobSpec {
            graph,
            kind,
            deadline: None,
            step_budget: None,
            transient_faults: None,
        }
    }
}

/// Which backend a job attempt ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// The packed bit-plane backend (fast path).
    Packed,
    /// The threaded bit-plane backend (fast path sharded over a worker
    /// pool); subject to the same circuit breaker as the packed backend.
    Threaded,
    /// The scalar reference backend (fallback path).
    Scalar,
}

impl BackendChoice {
    /// Whether this is an accelerated (non-reference) backend, i.e. one
    /// the circuit breaker guards and may downgrade to scalar.
    pub fn is_fast(self) -> bool {
        !matches!(self, BackendChoice::Scalar)
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendChoice::Packed => write!(f, "packed"),
            BackendChoice::Threaded => write!(f, "threaded"),
            BackendChoice::Scalar => write!(f, "scalar"),
        }
    }
}

/// A successful job result.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// MCP output for a [`JobKind::Shortest`] job.
    Shortest(McpOutput),
    /// Widest-path output for a [`JobKind::Widest`] job.
    Widest(WidestOutput),
    /// The final checkpoint document of a completed [`JobKind::Apsp`]
    /// campaign (see `checkpoint::ApspCheckpoint::to_json`).
    Apsp(Json),
}

/// Why a job did not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded intake queue was full — backpressure, not failure.
    /// Resubmit later; nothing was enqueued.
    Rejected {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service is draining; no new jobs are accepted.
    ShuttingDown,
    /// The deadline expired while the job waited in the queue; it was
    /// never started.
    DeadlineExpiredInQueue {
        /// How long the job had waited.
        waited: Duration,
    },
    /// The deadline expired mid-solve; the machine was cancelled
    /// cooperatively between instructions.
    DeadlineExceeded,
    /// The client cancelled the job (`SolveService::cancel`). A queued
    /// job is dropped unrun; a running job's machine is cancelled
    /// cooperatively between instructions.
    Cancelled,
    /// The per-attempt controller step budget ran out — the input drove
    /// the solve loop past its allowance (the runaway-job brake).
    StepBudgetExhausted {
        /// The budget that was granted.
        budget: u64,
    },
    /// The worker panicked while executing this job. The panic was
    /// isolated; the worker was replaced; the job was not retried.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An APSP campaign was interrupted (deadline, budget, fault) after
    /// completing some destinations. Resume by resubmitting with
    /// [`JobKind::Apsp`] `resume_from: Some(checkpoint)`.
    Interrupted {
        /// The last *flushed* checkpoint document.
        checkpoint: Json,
        /// Why the campaign stopped.
        cause: Box<ServeError>,
    },
    /// An APSP resume document was malformed or does not match the
    /// submitted graph; the job was not run.
    InvalidResume {
        /// What was wrong with the document.
        reason: String,
    },
    /// The solver rejected the job or failed after exhausting the retry
    /// policy.
    Solver(McpError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { capacity } => {
                write!(f, "rejected: intake queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "rejected: service is shutting down"),
            ServeError::DeadlineExpiredInQueue { waited } => {
                write!(f, "deadline expired after {waited:?} in the queue")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded mid-solve"),
            ServeError::Cancelled => write!(f, "cancelled by the client"),
            ServeError::StepBudgetExhausted { budget } => {
                write!(f, "step budget exhausted ({budget} steps granted)")
            }
            ServeError::WorkerPanicked { message } => {
                write!(f, "worker panicked: {message}")
            }
            ServeError::Interrupted { cause, .. } => {
                write!(f, "campaign interrupted ({cause}); checkpoint available")
            }
            ServeError::InvalidResume { reason } => {
                write!(f, "invalid resume checkpoint: {reason}")
            }
            ServeError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Solver(e) => Some(e),
            ServeError::Interrupted { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

/// The terminal report for one job: outcome plus execution footprint.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The id assigned at submission (also on the ticket).
    pub id: u64,
    /// Result or typed failure.
    pub outcome: Result<JobOutcome, ServeError>,
    /// Solve attempts executed (0 when the job never started; retries
    /// make this exceed 1).
    pub attempts: u32,
    /// Backend of the final attempt (`None` when the job never started).
    pub backend: Option<BackendChoice>,
    /// Submission-to-completion wall time.
    pub latency: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ServeError::Rejected { capacity: 8 };
        assert!(e.to_string().contains("capacity 8"), "{e}");
        let e = ServeError::StepBudgetExhausted { budget: 500 };
        assert!(e.to_string().contains("500"), "{e}");
        let e = ServeError::Interrupted {
            checkpoint: Json::Null,
            cause: Box::new(ServeError::DeadlineExceeded),
        };
        assert!(e.to_string().contains("deadline"), "{e}");
    }
}
