//! Per-machine health ledger and the quarantine state machine.
//!
//! Machine identity is the worker index: every machine a worker builds
//! (job attempts, scrub sweeps, probation probes) stands for the same
//! physical array, so evidence about one worker's machines accumulates
//! in one [`HealthRecord`]. The ledger is pure bookkeeping — it decides
//! *state*, while the service decides what each state means for
//! dispatch (benched workers stop pulling jobs) and mirrors every
//! transition into `serve.health.*` metrics.
//!
//! ```text
//!            sighting (corruption / vote disagreement)
//!   Healthy ──────────────────────────────▶ Suspect
//!      ▲                                      │
//!      │ clean streak ≥ policy                │ scrub BIST localizes faults
//!      └──────────────────────────────────────┤ (from any serving state)
//!                                             ▼
//!   Probation ◀──────────────────────── Quarantined
//!      │            clean scrub sweep         ▲
//!      │ N clean probe solves ──▶ Healthy     │
//!      └── failed probe ──────────────────────┘
//! ```
//!
//! A *sighting* is soft evidence (a corruption-class failure or a
//! redundant-vote disagreement observed while serving); a faulty BIST
//! sweep is definitive physical evidence and benches the machine from
//! any serving state. Re-admission is earned, never assumed: a
//! quarantined machine must first pass a clean sweep (→ Probation) and
//! then [`HealthPolicy::probation_probes`] consecutive clean probe
//! solves before it serves again.

use std::collections::BTreeMap;

/// Where a machine stands in the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineHealth {
    /// Serving normally; no open evidence against it.
    #[default]
    Healthy,
    /// Serving, but corruption-class failures or vote disagreements
    /// were sighted; a clean streak clears it, a faulty sweep benches
    /// it.
    Suspect,
    /// Benched: BIST localized stuck switches (or a probation probe
    /// failed). The worker stops pulling jobs and scrubs itself until a
    /// sweep comes back clean.
    Quarantined,
    /// Benched but recovering: the last sweep was clean; the machine
    /// must pass N consecutive probe solves to be re-admitted.
    Probation,
}

impl MachineHealth {
    /// Stable lowercase label (introspection JSON).
    pub fn label(self) -> &'static str {
        match self {
            MachineHealth::Healthy => "healthy",
            MachineHealth::Suspect => "suspect",
            MachineHealth::Quarantined => "quarantined",
            MachineHealth::Probation => "probation",
        }
    }

    /// Parses [`MachineHealth::label`] output.
    pub fn from_label(s: &str) -> Option<MachineHealth> {
        match s {
            "healthy" => Some(MachineHealth::Healthy),
            "suspect" => Some(MachineHealth::Suspect),
            "quarantined" => Some(MachineHealth::Quarantined),
            "probation" => Some(MachineHealth::Probation),
            _ => None,
        }
    }

    /// Whether this state keeps the worker out of job dispatch.
    pub fn is_benched(self) -> bool {
        matches!(self, MachineHealth::Quarantined | MachineHealth::Probation)
    }
}

/// Thresholds of the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Sightings (corruption-class failures or vote disagreements)
    /// before a Healthy machine turns Suspect (clamped to at least 1).
    pub suspect_after: u64,
    /// Consecutive clean observations (scrub sweeps) that clear a
    /// Suspect machine back to Healthy (clamped to at least 1).
    pub clear_streak: u64,
    /// Consecutive clean probe solves a Probation machine must pass to
    /// be re-admitted (clamped to at least 1).
    pub probation_probes: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_after: 1,
            clear_streak: 2,
            probation_probes: 3,
        }
    }
}

/// Everything the ledger knows about one machine (one worker index).
/// Counters are cumulative for the machine's lifetime; only
/// `clean_streak` resets on state changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthRecord {
    /// Current quarantine state.
    pub state: MachineHealth,
    /// Corruption-class failures observed while serving (includes vote
    /// disagreements).
    pub fault_sightings: u64,
    /// Redundant-vote disagreements among the sightings.
    pub vote_disagreements: u64,
    /// BIST sweeps run against this machine (scrubs, all states).
    pub scrubs: u64,
    /// Sweeps that localized at least one stuck switch.
    pub bist_faults: u64,
    /// Probe solves run while on probation.
    pub probes: u64,
    /// Consecutive clean observations in the current state.
    pub clean_streak: u64,
    /// Machines built on behalf of this worker (drill fault plans use
    /// this to model faults that clear after a repair).
    pub builds: u64,
}

/// The persistent per-machine health ledger (see module docs). Records
/// outlive their workers: a replaced or exited worker keeps its fault
/// history, so introspection can always answer "what happened to
/// machine 3?".
#[derive(Debug, Clone)]
pub struct HealthLedger {
    policy: HealthPolicy,
    records: BTreeMap<u64, HealthRecord>,
}

impl HealthLedger {
    /// An empty ledger under `policy`.
    pub fn new(policy: HealthPolicy) -> HealthLedger {
        HealthLedger {
            policy,
            records: BTreeMap::new(),
        }
    }

    /// Ensures `worker` has a (Healthy) record.
    pub fn register(&mut self, worker: u64) {
        self.records.entry(worker).or_default();
    }

    /// The worker's current state (Healthy when never registered).
    pub fn state(&self, worker: u64) -> MachineHealth {
        self.records
            .get(&worker)
            .map(|r| r.state)
            .unwrap_or_default()
    }

    /// Whether the worker is benched (quarantined or on probation).
    pub fn is_benched(&self, worker: u64) -> bool {
        self.state(worker).is_benched()
    }

    /// Counts a machine build for `worker` and returns the new total.
    pub fn count_build(&mut self, worker: u64) -> u64 {
        let rec = self.records.entry(worker).or_default();
        rec.builds += 1;
        rec.builds
    }

    /// Records a corruption-class failure sighted while serving.
    /// `vote` marks it as a redundant-vote disagreement. Returns the
    /// new state when the sighting caused a transition.
    pub fn sighting(&mut self, worker: u64, vote: bool) -> Option<MachineHealth> {
        let suspect_after = self.policy.suspect_after.max(1);
        let rec = self.records.entry(worker).or_default();
        rec.fault_sightings += 1;
        if vote {
            rec.vote_disagreements += 1;
        }
        rec.clean_streak = 0;
        if rec.state == MachineHealth::Healthy && rec.fault_sightings >= suspect_after {
            rec.state = MachineHealth::Suspect;
            return Some(MachineHealth::Suspect);
        }
        None
    }

    /// Records a BIST sweep verdict. A faulty sweep benches the machine
    /// from any serving state; a clean sweep builds the streak that
    /// clears Suspect, and moves Quarantined to Probation. Returns the
    /// new state on a transition.
    pub fn scrub(&mut self, worker: u64, healthy: bool) -> Option<MachineHealth> {
        let clear_streak = self.policy.clear_streak.max(1);
        let rec = self.records.entry(worker).or_default();
        rec.scrubs += 1;
        if !healthy {
            rec.bist_faults += 1;
            rec.clean_streak = 0;
            if rec.state != MachineHealth::Quarantined {
                rec.state = MachineHealth::Quarantined;
                return Some(MachineHealth::Quarantined);
            }
            return None;
        }
        match rec.state {
            MachineHealth::Suspect => {
                rec.clean_streak += 1;
                if rec.clean_streak >= clear_streak {
                    rec.state = MachineHealth::Healthy;
                    rec.clean_streak = 0;
                    // A cleared machine starts from a blank sighting
                    // slate; its cumulative history stays on record.
                    rec.fault_sightings = 0;
                    return Some(MachineHealth::Healthy);
                }
                None
            }
            MachineHealth::Quarantined => {
                rec.state = MachineHealth::Probation;
                rec.clean_streak = 0;
                Some(MachineHealth::Probation)
            }
            _ => {
                rec.clean_streak += 1;
                None
            }
        }
    }

    /// Records a probation probe solve. `clean` probes build toward
    /// re-admission; a failed probe re-quarantines. Returns the new
    /// state on a transition (probes outside Probation only count).
    pub fn probe(&mut self, worker: u64, clean: bool) -> Option<MachineHealth> {
        let needed = self.policy.probation_probes.max(1);
        let rec = self.records.entry(worker).or_default();
        rec.probes += 1;
        if rec.state != MachineHealth::Probation {
            return None;
        }
        if !clean {
            rec.state = MachineHealth::Quarantined;
            rec.clean_streak = 0;
            return Some(MachineHealth::Quarantined);
        }
        rec.clean_streak += 1;
        if rec.clean_streak >= needed {
            rec.state = MachineHealth::Healthy;
            rec.clean_streak = 0;
            rec.fault_sightings = 0;
            return Some(MachineHealth::Healthy);
        }
        None
    }

    /// A snapshot of every record, ordered by worker index.
    pub fn snapshot(&self) -> Vec<(u64, HealthRecord)> {
        self.records.iter().map(|(&w, r)| (w, r.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> HealthLedger {
        HealthLedger::new(HealthPolicy {
            suspect_after: 2,
            clear_streak: 2,
            probation_probes: 2,
        })
    }

    #[test]
    fn sightings_escalate_to_suspect_at_the_threshold() {
        let mut l = ledger();
        l.register(0);
        assert_eq!(l.sighting(0, false), None, "first sighting: still healthy");
        assert_eq!(l.state(0), MachineHealth::Healthy);
        assert_eq!(l.sighting(0, true), Some(MachineHealth::Suspect));
        assert!(!l.is_benched(0), "suspects keep serving");
        let rec = &l.snapshot()[0].1;
        assert_eq!(rec.fault_sightings, 2);
        assert_eq!(rec.vote_disagreements, 1);
    }

    #[test]
    fn clean_scrubs_clear_a_suspect() {
        let mut l = ledger();
        l.sighting(3, false);
        l.sighting(3, false);
        assert_eq!(l.state(3), MachineHealth::Suspect);
        assert_eq!(l.scrub(3, true), None, "one clean sweep is not a streak");
        assert_eq!(l.scrub(3, true), Some(MachineHealth::Healthy));
        assert_eq!(
            l.snapshot()[0].1.fault_sightings,
            0,
            "a cleared machine starts from a blank sighting slate"
        );
    }

    #[test]
    fn a_faulty_sweep_benches_from_any_serving_state() {
        let mut l = ledger();
        l.register(1);
        assert_eq!(l.scrub(1, false), Some(MachineHealth::Quarantined));
        assert!(l.is_benched(1));
        // Repeat faulty sweeps keep it benched without re-transitioning.
        assert_eq!(l.scrub(1, false), None);
        assert_eq!(l.state(1), MachineHealth::Quarantined);
    }

    #[test]
    fn readmission_takes_a_clean_sweep_then_n_clean_probes() {
        let mut l = ledger();
        l.scrub(2, false);
        assert_eq!(l.state(2), MachineHealth::Quarantined);
        assert_eq!(l.scrub(2, true), Some(MachineHealth::Probation));
        assert!(l.is_benched(2), "probation is still benched");
        assert_eq!(l.probe(2, true), None);
        assert_eq!(l.probe(2, true), Some(MachineHealth::Healthy));
        assert!(!l.is_benched(2));
        assert_eq!(l.snapshot()[0].1.probes, 2);
    }

    #[test]
    fn a_failed_probe_requarantines_and_resets_the_streak() {
        let mut l = ledger();
        l.scrub(4, false);
        l.scrub(4, true); // Probation
        assert_eq!(l.probe(4, true), None);
        assert_eq!(l.probe(4, false), Some(MachineHealth::Quarantined));
        // Back through the full drill: clean sweep, then both probes.
        assert_eq!(l.scrub(4, true), Some(MachineHealth::Probation));
        assert_eq!(l.probe(4, true), None, "the old streak must not count");
        assert_eq!(l.probe(4, true), Some(MachineHealth::Healthy));
    }

    #[test]
    fn records_persist_and_labels_round_trip() {
        let mut l = HealthLedger::new(HealthPolicy::default());
        l.register(7);
        assert_eq!(l.count_build(7), 1);
        assert_eq!(l.count_build(7), 2);
        assert_eq!(l.snapshot().len(), 1);
        for s in [
            MachineHealth::Healthy,
            MachineHealth::Suspect,
            MachineHealth::Quarantined,
            MachineHealth::Probation,
        ] {
            assert_eq!(MachineHealth::from_label(s.label()), Some(s));
        }
        assert_eq!(MachineHealth::from_label("benched"), None);
    }
}
