//! APSP campaign checkpoints: completed destinations as a JSON document.
//!
//! An all-pairs campaign on an `n`-vertex graph is `n` independent
//! per-destination solves executed in destination order. The checkpoint
//! is simply the prefix of completed results, serialized through
//! [`ppa_obs::Json`] — deterministic field order, so two campaigns that
//! completed the same prefix produce byte-identical documents and a
//! resumed campaign's final document is byte-identical to an
//! uninterrupted one.

use ppa_graph::Weight;
use ppa_mcp::McpOutput;
use ppa_obs::Json;

/// The result of one completed destination, distilled to the fields that
/// define the answer (step accounting stays in the service metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestResult {
    /// Destination vertex.
    pub dest: usize,
    /// `sow[i]` — minimum cost from `i` to `dest`.
    pub sow: Vec<Weight>,
    /// `ptn[i]` — successor of `i` on one optimal path.
    pub ptn: Vec<usize>,
    /// Do-while iterations the solve took.
    pub iterations: usize,
}

impl DestResult {
    fn from_output(out: &McpOutput) -> Self {
        DestResult {
            dest: out.dest,
            sow: out.sow.clone(),
            ptn: out.ptn.clone(),
            iterations: out.iterations,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dest", (self.dest as u64).into()),
            (
                "sow",
                Json::Array(self.sow.iter().map(|&v| v.into()).collect()),
            ),
            (
                "ptn",
                Json::Array(self.ptn.iter().map(|&v| (v as u64).into()).collect()),
            ),
            ("iterations", (self.iterations as u64).into()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("destination result: `{k}` missing or not a u64"))
        };
        let arr = |k: &str| {
            v.get(k)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("destination result: `{k}` missing or not an array"))
        };
        let sow = arr("sow")?
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as Weight)
                    .ok_or_else(|| "sow entry not a u64".to_owned())
            })
            .collect::<Result<_, _>>()?;
        let ptn = arr("ptn")?
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| "ptn entry not a u64".to_owned())
            })
            .collect::<Result<_, _>>()?;
        Ok(DestResult {
            dest: num("dest")? as usize,
            sow,
            ptn,
            iterations: num("iterations")? as usize,
        })
    }
}

/// The resumable state of an APSP campaign: results for destinations
/// `0..completed.len()`, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApspCheckpoint {
    n: usize,
    completed: Vec<DestResult>,
}

impl ApspCheckpoint {
    /// An empty campaign over an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        ApspCheckpoint {
            n,
            completed: Vec::new(),
        }
    }

    /// Vertices in the campaign's graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The next destination to solve (== completed count).
    pub fn next_dest(&self) -> usize {
        self.completed.len()
    }

    /// Whether every destination is done.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.n
    }

    /// The completed results so far, in destination order.
    pub fn completed(&self) -> &[DestResult] {
        &self.completed
    }

    /// Records the next destination's output.
    ///
    /// # Panics
    /// Panics if `out.dest` is not the expected next destination — the
    /// campaign driver owns the ordering invariant.
    pub fn record(&mut self, out: &McpOutput) {
        assert_eq!(
            out.dest,
            self.next_dest(),
            "APSP campaign must record destinations in order"
        );
        self.completed.push(DestResult::from_output(out));
    }

    /// Serializes the checkpoint. Deterministic: equal checkpoints
    /// produce byte-identical documents.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", 1u64.into()),
            ("n", (self.n as u64).into()),
            (
                "completed",
                Json::Array(self.completed.iter().map(DestResult::to_json).collect()),
            ),
        ])
    }

    /// Reconstructs a checkpoint from [`ApspCheckpoint::to_json`] output.
    ///
    /// # Errors
    /// A description of the first malformed or inconsistent field
    /// (including out-of-order destinations and completed count > n).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("checkpoint: missing `version`")?;
        if version != 1 {
            return Err(format!("checkpoint: unsupported version {version}"));
        }
        let n = v
            .get("n")
            .and_then(Json::as_u64)
            .ok_or("checkpoint: missing `n`")? as usize;
        let completed = v
            .get("completed")
            .and_then(Json::as_array)
            .ok_or("checkpoint: missing `completed`")?
            .iter()
            .map(DestResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if completed.len() > n {
            return Err(format!(
                "checkpoint: {} completed destinations for an {n}-vertex graph",
                completed.len()
            ));
        }
        for (i, r) in completed.iter().enumerate() {
            if r.dest != i {
                return Err(format!(
                    "checkpoint: completed[{i}] is destination {}, expected {i}",
                    r.dest
                ));
            }
            if r.sow.len() != n || r.ptn.len() != n {
                return Err(format!(
                    "checkpoint: destination {i} has {} costs / {} successors for n={n}",
                    r.sow.len(),
                    r.ptn.len()
                ));
            }
        }
        Ok(ApspCheckpoint { n, completed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_mcp::McpSession;

    #[test]
    fn round_trips_byte_identically() {
        let w = gen::ring(5);
        let mut session = McpSession::new(&w).unwrap();
        let mut cp = ApspCheckpoint::new(5);
        for d in 0..3 {
            cp.record(&session.solve(d).unwrap());
        }
        let doc = cp.to_json().to_string_compact();
        let back = ApspCheckpoint::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_json().to_string_compact(), doc, "byte-identical");
        assert_eq!(back.next_dest(), 3);
        assert!(!back.is_complete());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(ApspCheckpoint::from_json(&Json::Null).is_err());
        let doc = Json::obj(vec![
            ("version", 1u64.into()),
            ("n", 2u64.into()),
            (
                "completed",
                Json::Array(vec![Json::obj(vec![
                    ("dest", 1u64.into()), // out of order: expected 0
                    ("sow", Json::Array(vec![0u64.into(), 0u64.into()])),
                    ("ptn", Json::Array(vec![0u64.into(), 1u64.into()])),
                    ("iterations", 1u64.into()),
                ])]),
            ),
        ]);
        let err = ApspCheckpoint::from_json(&doc).unwrap_err();
        assert!(err.contains("expected 0"), "{err}");
        let doc = Json::obj(vec![("version", 2u64.into())]);
        assert!(ApspCheckpoint::from_json(&doc)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_record_is_a_driver_bug() {
        let w = gen::ring(4);
        let mut session = McpSession::new(&w).unwrap();
        let mut cp = ApspCheckpoint::new(4);
        cp.record(&session.solve(2).unwrap());
    }
}
