//! APSP campaign checkpoints: completed destinations as a JSON document.
//!
//! An all-pairs campaign on an `n`-vertex graph is `n` independent
//! per-destination solves executed in destination order. The checkpoint
//! is simply the prefix of completed results, serialized through
//! [`ppa_obs::Json`] — deterministic field order, so two campaigns that
//! completed the same prefix produce byte-identical documents and a
//! resumed campaign's final document is byte-identical to an
//! uninterrupted one.

use crate::job::ServeError;
use ppa_graph::Weight;
use ppa_mcp::McpOutput;
use ppa_obs::Json;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The result of one completed destination, distilled to the fields that
/// define the answer (step accounting stays in the service metrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestResult {
    /// Destination vertex.
    pub dest: usize,
    /// `sow[i]` — minimum cost from `i` to `dest`.
    pub sow: Vec<Weight>,
    /// `ptn[i]` — successor of `i` on one optimal path.
    pub ptn: Vec<usize>,
    /// Do-while iterations the solve took.
    pub iterations: usize,
}

impl DestResult {
    /// Distills a verified solver output (the shard worker's entry
    /// point; the in-process campaign driver uses [`ApspCheckpoint::record`]).
    pub fn from_output(out: &McpOutput) -> Self {
        DestResult {
            dest: out.dest,
            sow: out.sow.clone(),
            ptn: out.ptn.clone(),
            iterations: out.iterations,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dest", (self.dest as u64).into()),
            (
                "sow",
                Json::Array(self.sow.iter().map(|&v| v.into()).collect()),
            ),
            (
                "ptn",
                Json::Array(self.ptn.iter().map(|&v| (v as u64).into()).collect()),
            ),
            ("iterations", (self.iterations as u64).into()),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("destination result: `{k}` missing or not a u64"))
        };
        let arr = |k: &str| {
            v.get(k)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("destination result: `{k}` missing or not an array"))
        };
        let sow = arr("sow")?
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as Weight)
                    .ok_or_else(|| "sow entry not a u64".to_owned())
            })
            .collect::<Result<_, _>>()?;
        let ptn = arr("ptn")?
            .iter()
            .map(|x| {
                x.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| "ptn entry not a u64".to_owned())
            })
            .collect::<Result<_, _>>()?;
        Ok(DestResult {
            dest: num("dest")? as usize,
            sow,
            ptn,
            iterations: num("iterations")? as usize,
        })
    }
}

/// The resumable state of an APSP campaign: results for destinations
/// `0..completed.len()`, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApspCheckpoint {
    n: usize,
    completed: Vec<DestResult>,
}

impl ApspCheckpoint {
    /// An empty campaign over an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        ApspCheckpoint {
            n,
            completed: Vec::new(),
        }
    }

    /// Vertices in the campaign's graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The next destination to solve (== completed count).
    pub fn next_dest(&self) -> usize {
        self.completed.len()
    }

    /// Whether every destination is done.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.n
    }

    /// The completed results so far, in destination order.
    pub fn completed(&self) -> &[DestResult] {
        &self.completed
    }

    /// Records the next destination's output.
    ///
    /// # Panics
    /// Panics if `out.dest` is not the expected next destination — the
    /// campaign driver owns the ordering invariant.
    pub fn record(&mut self, out: &McpOutput) {
        assert_eq!(
            out.dest,
            self.next_dest(),
            "APSP campaign must record destinations in order"
        );
        self.completed.push(DestResult::from_output(out));
    }

    /// Serializes the checkpoint. Deterministic: equal checkpoints
    /// produce byte-identical documents.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", 1u64.into()),
            ("n", (self.n as u64).into()),
            (
                "completed",
                Json::Array(self.completed.iter().map(DestResult::to_json).collect()),
            ),
        ])
    }

    /// Reconstructs a checkpoint from [`ApspCheckpoint::to_json`] output.
    ///
    /// # Errors
    /// A description of the first malformed or inconsistent field
    /// (including out-of-order destinations and completed count > n).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("checkpoint: missing `version`")?;
        if version != 1 {
            return Err(format!("checkpoint: unsupported version {version}"));
        }
        let n = v
            .get("n")
            .and_then(Json::as_u64)
            .ok_or("checkpoint: missing `n`")? as usize;
        let completed = v
            .get("completed")
            .and_then(Json::as_array)
            .ok_or("checkpoint: missing `completed`")?
            .iter()
            .map(DestResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if completed.len() > n {
            return Err(format!(
                "checkpoint: {} completed destinations for an {n}-vertex graph",
                completed.len()
            ));
        }
        for (i, r) in completed.iter().enumerate() {
            if r.dest != i {
                return Err(format!(
                    "checkpoint: completed[{i}] is destination {}, expected {i}",
                    r.dest
                ));
            }
            if r.sow.len() != n || r.ptn.len() != n {
                return Err(format!(
                    "checkpoint: destination {i} has {} costs / {} successors for n={n}",
                    r.sow.len(),
                    r.ptn.len()
                ));
            }
        }
        Ok(ApspCheckpoint { n, completed })
    }

    /// Builds a checkpoint from already-distilled parts (the shard
    /// merger's entry point), applying the same consistency checks as
    /// [`ApspCheckpoint::from_json`]: destinations in order from 0 and
    /// every vector sized `n`.
    ///
    /// # Errors
    /// A description of the first inconsistent entry.
    pub fn from_parts(n: usize, completed: Vec<DestResult>) -> Result<Self, String> {
        if completed.len() > n {
            return Err(format!(
                "checkpoint: {} completed destinations for an {n}-vertex graph",
                completed.len()
            ));
        }
        for (i, r) in completed.iter().enumerate() {
            if r.dest != i {
                return Err(format!(
                    "checkpoint: completed[{i}] is destination {}, expected {i}",
                    r.dest
                ));
            }
            if r.sow.len() != n || r.ptn.len() != n {
                return Err(format!(
                    "checkpoint: destination {i} has {} costs / {} successors for n={n}",
                    r.sow.len(),
                    r.ptn.len()
                ));
            }
        }
        Ok(ApspCheckpoint { n, completed })
    }

    /// Atomically persists the checkpoint as compact JSON (see
    /// [`write_atomic`]): a crash — even a kill -9 — mid-save can never
    /// leave a truncated document at `path`; readers see either the
    /// previous complete checkpoint or the new one.
    ///
    /// # Errors
    /// The underlying filesystem error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.to_json().to_string_compact().as_bytes())
    }

    /// Loads a checkpoint persisted by [`ApspCheckpoint::save`].
    ///
    /// # Errors
    /// Every failure — unreadable file, non-UTF-8 or torn bytes,
    /// malformed JSON, inconsistent document — is a typed
    /// [`ServeError::InvalidResume`]; this function never panics on
    /// untrusted file contents.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let text = fs::read_to_string(path).map_err(|e| ServeError::InvalidResume {
            reason: format!("cannot read checkpoint {}: {e}", path.display()),
        })?;
        let doc = Json::parse(&text).map_err(|e| ServeError::InvalidResume {
            reason: format!("checkpoint {} is not valid JSON: {e}", path.display()),
        })?;
        ApspCheckpoint::from_json(&doc).map_err(|reason| ServeError::InvalidResume { reason })
    }
}

/// Distinguishes concurrent writers' temp files (process id alone is not
/// enough: shard tests run several savers inside one process).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: a uniquely-named temp file in
/// the same directory, flushed and fsynced, then renamed over `path`
/// (and the directory fsynced best-effort so the rename itself is
/// durable). A crash at any instruction leaves either the old file or
/// the new one — never a torn hybrid.
///
/// # Errors
/// The underlying filesystem error; the temp file is cleaned up.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp: PathBuf = match parent {
        Some(d) => d.join(&name),
        None => PathBuf::from(&name),
    };
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        if let Some(d) = parent {
            if let Ok(dir) = fs::File::open(d) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;
    use ppa_mcp::McpSession;

    #[test]
    fn round_trips_byte_identically() {
        let w = gen::ring(5);
        let mut session = McpSession::new(&w).unwrap();
        let mut cp = ApspCheckpoint::new(5);
        for d in 0..3 {
            cp.record(&session.solve(d).unwrap());
        }
        let doc = cp.to_json().to_string_compact();
        let back = ApspCheckpoint::from_json(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_json().to_string_compact(), doc, "byte-identical");
        assert_eq!(back.next_dest(), 3);
        assert!(!back.is_complete());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(ApspCheckpoint::from_json(&Json::Null).is_err());
        let doc = Json::obj(vec![
            ("version", 1u64.into()),
            ("n", 2u64.into()),
            (
                "completed",
                Json::Array(vec![Json::obj(vec![
                    ("dest", 1u64.into()), // out of order: expected 0
                    ("sow", Json::Array(vec![0u64.into(), 0u64.into()])),
                    ("ptn", Json::Array(vec![0u64.into(), 1u64.into()])),
                    ("iterations", 1u64.into()),
                ])]),
            ),
        ]);
        let err = ApspCheckpoint::from_json(&doc).unwrap_err();
        assert!(err.contains("expected 0"), "{err}");
        let doc = Json::obj(vec![("version", 2u64.into())]);
        assert!(ApspCheckpoint::from_json(&doc)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn save_load_round_trips_and_failures_are_typed() {
        let w = gen::ring(4);
        let mut session = McpSession::new(&w).unwrap();
        let mut cp = ApspCheckpoint::new(4);
        for d in 0..4 {
            cp.record(&session.solve(d).unwrap());
        }
        let dir = std::env::temp_dir().join(format!("ppa-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        cp.save(&path).unwrap();
        let back = ApspCheckpoint::load(&path).unwrap();
        assert_eq!(back, cp);
        assert_eq!(
            back.to_json().to_string_compact(),
            cp.to_json().to_string_compact()
        );
        // Overwrite via the same atomic path: still the new content.
        let cp2 = ApspCheckpoint::new(4);
        cp2.save(&path).unwrap();
        assert_eq!(ApspCheckpoint::load(&path).unwrap(), cp2);
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive a save");
        // Missing file and garbage bytes are typed, not panics.
        assert!(matches!(
            ApspCheckpoint::load(&dir.join("absent.json")),
            Err(ServeError::InvalidResume { .. })
        ));
        fs::write(&path, b"not json at all").unwrap();
        assert!(matches!(
            ApspCheckpoint::load(&path),
            Err(ServeError::InvalidResume { .. })
        ));
        fs::write(&path, [0xFF, 0xFE, 0x00]).unwrap();
        assert!(matches!(
            ApspCheckpoint::load(&path),
            Err(ServeError::InvalidResume { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_parts_validates_like_from_json() {
        let w = gen::ring(3);
        let mut session = McpSession::new(&w).unwrap();
        let parts: Vec<DestResult> = (0..3)
            .map(|d| DestResult::from_output(&session.solve(d).unwrap()))
            .collect();
        let cp = ApspCheckpoint::from_parts(3, parts.clone()).unwrap();
        assert!(cp.is_complete());
        let mut driver = ApspCheckpoint::new(3);
        let mut session2 = McpSession::new(&w).unwrap();
        for d in 0..3 {
            driver.record(&session2.solve(d).unwrap());
        }
        assert_eq!(
            cp.to_json().to_string_compact(),
            driver.to_json().to_string_compact(),
            "from_parts and record produce identical documents"
        );
        // Out of order, oversized, and mis-shaped parts are rejected.
        let mut shuffled = parts.clone();
        shuffled.swap(0, 2);
        assert!(ApspCheckpoint::from_parts(3, shuffled)
            .unwrap_err()
            .contains("expected 0"));
        assert!(ApspCheckpoint::from_parts(2, parts.clone())
            .unwrap_err()
            .contains("completed destinations"));
        let mut short = parts;
        short[1].sow.pop();
        assert!(ApspCheckpoint::from_parts(3, short)
            .unwrap_err()
            .contains("costs"));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_record_is_a_driver_bug() {
        let w = gen::ring(4);
        let mut session = McpSession::new(&w).unwrap();
        let mut cp = ApspCheckpoint::new(4);
        cp.record(&session.solve(2).unwrap());
    }
}
