//! Per-backend circuit breaker: fast path with scalar fallback.
//!
//! The fast backend — packed by default, threaded when the service is
//! configured with `prefer_threaded` — shares one plan cache and arena
//! across every job a worker runs; if it ever misbehaves (a corruption
//! burst that survives retries, or a divergence from the scalar
//! reference), the service must stop routing traffic to it *without*
//! stopping service. The breaker is the standard three-state machine:
//!
//! ```text
//!            failures >= threshold
//!   Closed ──────────────────────────▶ Open (cooldown_jobs countdown)
//!     ▲                                   │ countdown reaches 0
//!     │ divergence probe passes           ▼
//!     └────────────────────────────── HalfOpen (probe before trusting)
//!                 probe fails: back to Open
//! ```
//!
//! While Open (and HalfOpen, until the probe passes) every job runs on
//! the scalar backend. The probe is *differential*: solve a fixed
//! reference graph on the fast and scalar backends and compare results
//! bit-for-bit —
//! the same equivalence PR 3's differential suites assert statically,
//! run here as a live health check. Every transition is recorded by the
//! service under `serve.breaker.*` counters.

/// Breaker states (see module docs for the transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Fast backend trusted: consecutive failures are counted.
    Closed,
    /// Fast backend banned; `cooldown_left` more jobs run scalar
    /// before the breaker half-opens.
    Open {
        /// Jobs left before probing is allowed.
        cooldown_left: u32,
    },
    /// Cooldown over: the next routing decision asks for a divergence
    /// probe before fast traffic resumes.
    HalfOpen,
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive fast-attempt failures that trip Closed -> Open.
    pub failure_threshold: u32,
    /// Jobs routed scalar before Open -> HalfOpen.
    pub cooldown_jobs: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_jobs: 8,
        }
    }
}

/// The circuit breaker guarding the configured fast backend.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
}

/// What the breaker wants for the next job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Run the job on the configured fast backend (packed or threaded).
    Packed,
    /// Run the job on the scalar backend.
    Scalar,
    /// Run a divergence probe first; then route by its verdict
    /// (report it back via [`CircuitBreaker::probe_result`]).
    ProbeFirst,
}

impl CircuitBreaker {
    /// A closed (trusting) breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Routing decision for the next job. Advances the Open-state
    /// cooldown countdown as a side effect (each routed job is one tick).
    pub fn route(&mut self) -> Route {
        match self.state {
            BreakerState::Closed => Route::Packed,
            BreakerState::Open { cooldown_left } => {
                self.state = match cooldown_left.saturating_sub(1) {
                    0 => BreakerState::HalfOpen,
                    left => BreakerState::Open {
                        cooldown_left: left,
                    },
                };
                Route::Scalar
            }
            BreakerState::HalfOpen => Route::ProbeFirst,
        }
    }

    /// Records a packed-attempt failure of a kind that implicates the
    /// backend (corruption-class, per
    /// [`McpError::indicates_corruption`](ppa_mcp::McpError::indicates_corruption)).
    /// Returns `true` when this failure trips the breaker open.
    pub fn record_failure(&mut self) -> bool {
        if self.state != BreakerState::Closed {
            return false;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.config.failure_threshold {
            self.trip();
            true
        } else {
            false
        }
    }

    /// Records a successful packed attempt (resets the failure streak).
    pub fn record_success(&mut self) {
        if self.state == BreakerState::Closed {
            self.consecutive_failures = 0;
        }
    }

    /// Reports a divergence-probe verdict from the HalfOpen state:
    /// a passing probe closes the breaker, a failing one re-opens it
    /// for a fresh cooldown.
    pub fn probe_result(&mut self, passed: bool) {
        if self.state != BreakerState::HalfOpen {
            return;
        }
        if passed {
            self.state = BreakerState::Closed;
            self.consecutive_failures = 0;
        } else {
            self.trip();
        }
    }

    /// Forces the breaker open (used when a divergence is observed
    /// directly, outside the consecutive-failure path).
    pub fn trip(&mut self) {
        self.state = BreakerState::Open {
            cooldown_left: self.config.cooldown_jobs.max(1),
        };
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_jobs: cooldown,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3, 4);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert!(matches!(b.state(), BreakerState::Open { cooldown_left: 4 }));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = breaker(2, 4);
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure(), "streak was reset");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_counts_scalar_jobs_then_half_opens() {
        let mut b = breaker(1, 3);
        assert!(b.record_failure());
        assert_eq!(b.route(), Route::Scalar);
        assert_eq!(b.route(), Route::Scalar);
        assert_eq!(b.route(), Route::Scalar);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.route(), Route::ProbeFirst);
    }

    #[test]
    fn probe_verdict_closes_or_reopens() {
        let mut b = breaker(1, 1);
        b.trip();
        assert_eq!(b.route(), Route::Scalar); // burns the 1-job cooldown
        b.probe_result(false);
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert_eq!(b.route(), Route::Scalar);
        b.probe_result(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.route(), Route::Packed);
    }

    #[test]
    fn failures_while_open_do_not_stack() {
        let mut b = breaker(1, 5);
        b.trip();
        assert!(!b.record_failure(), "already open");
        assert!(matches!(b.state(), BreakerState::Open { cooldown_left: 5 }));
    }
}
