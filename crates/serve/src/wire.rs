//! The network wire protocol: length-prefixed JSON frames, typed
//! request/response documents, and a minimal HTTP `GET` escape hatch
//! for `/metrics` scrapers.
//!
//! # Framing
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON. [`read_incoming`] additionally sniffs the first four
//! bytes for `b"GET "` so a plain HTTP client (`curl
//! http://host/metrics`) gets a sensible answer from the same port —
//! an HTTP-sized length prefix (`0x47455420` ≈ 1.19 GiB) would exceed
//! any sane frame cap anyway, so the two protocols cannot be confused.
//!
//! # Trust boundary
//!
//! Everything read here is attacker-controlled. Every decode failure —
//! oversized length prefix, truncated stream, invalid UTF-8, malformed
//! JSON, unknown or mis-typed fields — is a typed [`WireError`] or a
//! `Result::Err` string; there are no `panic!`/`expect` paths on
//! received bytes (property-tested in `tests/wire_props.rs`).
//!
//! # Documents
//!
//! Requests and responses are tagged JSON objects ([`Request`],
//! [`Response`]) that round-trip exactly through their
//! `to_json`/`from_json` pairs. Job outcomes travel as the
//! answer-defining fields only (costs, successors, iterations — the
//! same distillation checkpoints use); step accounting stays in the
//! server's metrics registry.

use crate::job::{JobOutcome, ServeError};
use ppa_graph::{Weight, INF};
use ppa_mcp::widest::WidestOutput;
use ppa_mcp::{McpOutput, McpStats};
use ppa_obs::Json;
use std::fmt;
use std::io::{self, Read, Write};

/// Default cap on a frame's payload length. Large enough for a
/// several-thousand-edge graph or a full campaign checkpoint, small
/// enough that a hostile length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// Cap on an HTTP request head (request line + headers).
const MAX_HTTP_HEAD: usize = 8 << 10;

/// Why a read or decode failed at the wire boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The transport failed (or timed out; see [`WireError::is_timeout`]).
    Io {
        /// The underlying [`io::ErrorKind`].
        kind: io::ErrorKind,
        /// The error's message.
        msg: String,
    },
    /// The peer closed the stream mid-frame.
    Truncated,
    /// The length prefix exceeds the configured cap; nothing was read.
    FrameTooLarge {
        /// The advertised payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The payload was not the UTF-8 JSON document the protocol requires.
    Malformed {
        /// What was wrong.
        reason: String,
    },
}

impl WireError {
    fn from_io(e: io::Error) -> WireError {
        WireError::Io {
            kind: e.kind(),
            msg: e.to_string(),
        }
    }

    /// Whether this is a read-timeout (the server's idle-poll tick, not
    /// a protocol violation).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io {
                kind: io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut,
                ..
            }
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io { kind, msg } => write!(f, "wire i/o error ({kind:?}): {msg}"),
            WireError::Truncated => write!(f, "stream closed mid-frame"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// What [`read_incoming`] found on the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// Clean end of stream (the peer closed between frames).
    Eof,
    /// An HTTP `GET` request; `target` is the request path.
    HttpGet {
        /// The request target, e.g. `/metrics`.
        target: String,
    },
    /// One length-prefixed JSON frame.
    Frame(Json),
}

/// Reads the next frame (or HTTP GET, or clean EOF) from `r`, enforcing
/// `max_frame` on the advertised payload length *before* any payload
/// allocation.
///
/// # Errors
/// [`WireError`] on transport failure, truncation, an oversized length
/// prefix, or a payload that is not UTF-8 JSON.
pub fn read_incoming(r: &mut impl Read, max_frame: usize) -> Result<Incoming, WireError> {
    let mut head = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut head[filled..]) {
            Ok(0) if filled == 0 => return Ok(Incoming::Eof),
            Ok(0) => return Err(WireError::Truncated),
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::from_io(e)),
        }
    }
    if &head == b"GET " {
        return read_http_get(r);
    }
    let len = u32::from_be_bytes(head) as usize;
    if len > max_frame {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::from_io(e)),
        }
    }
    let text = std::str::from_utf8(&payload).map_err(|e| WireError::Malformed {
        reason: format!("payload is not UTF-8: {e}"),
    })?;
    let doc = Json::parse(text).map_err(|e| WireError::Malformed {
        reason: format!("payload is not JSON: {e}"),
    })?;
    Ok(Incoming::Frame(doc))
}

/// Finishes reading an HTTP request whose first four bytes (`GET `)
/// were already consumed, up to the blank line; bounded by
/// [`MAX_HTTP_HEAD`].
fn read_http_get(r: &mut impl Read) -> Result<Incoming, WireError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        if head.len() >= MAX_HTTP_HEAD {
            return Err(WireError::Malformed {
                reason: format!("HTTP request head exceeds {MAX_HTTP_HEAD} bytes"),
            });
        }
        match r.read(&mut byte) {
            Ok(0) => break, // a bare "GET /x HTTP/1.0" with no trailing blank line
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::from_io(e)),
        }
    }
    let text = String::from_utf8_lossy(&head);
    let line = text.lines().next().unwrap_or("");
    let target = line.split_whitespace().next().unwrap_or("/").to_owned();
    if target.is_empty() || !target.starts_with('/') {
        return Err(WireError::Malformed {
            reason: format!("HTTP request target {target:?} is not a path"),
        });
    }
    Ok(Incoming::HttpGet { target })
}

/// Writes one length-prefixed frame.
///
/// # Errors
/// The transport error, or `InvalidInput` if the document serializes
/// past `u32::MAX` bytes (unrepresentable in the length prefix).
pub fn write_frame(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let text = doc.to_string_compact();
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32::MAX bytes"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Writes a minimal HTTP/1.1 response and closes the exchange
/// (`Connection: close` keeps the server loop simple).
///
/// # Errors
/// The transport error.
pub fn write_http_response(
    w: &mut impl Write,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    w.flush()
}

/// A client request, decoded from one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(SubmitRequest),
    /// Wait for (and consume) the report of a previously submitted job.
    Result {
        /// The id from the `accepted` response.
        id: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The id from the `accepted` response.
        id: u64,
    },
    /// Fetch a live introspection snapshot.
    Status,
    /// Fetch the metrics registry.
    Metrics,
    /// Run an all-pairs campaign with streamed progress.
    Campaign(CampaignRequest),
}

/// The `submit` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The graph, as edge-list text (`ppa_graph::io::parse_edge_list`).
    pub graph: String,
    /// `shortest`, `widest`, `apsp`, or `chaos`.
    pub kind: String,
    /// Destination vertex (`shortest`/`widest`).
    pub dest: usize,
    /// Checkpoint cadence (`apsp`).
    pub checkpoint_every: usize,
    /// Resume document (`apsp`).
    pub resume_from: Option<Json>,
    /// Per-job deadline in milliseconds, propagated into the service's
    /// cancel-token watchdog.
    pub deadline_ms: Option<u64>,
    /// Per-attempt controller step budget.
    pub step_budget: Option<u64>,
    /// Transient-fault injection `(probability, seed)` — chaos drills.
    pub transient_faults: Option<(f64, u64)>,
    /// `true`: hold the connection and reply with the report directly.
    /// `false`: reply `accepted` immediately; fetch via [`Request::Result`].
    pub wait: bool,
}

/// The `campaign` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// The graph, as edge-list text.
    pub graph: String,
    /// Stream a `progress` frame every completed destination and flush
    /// the checkpoint state at this cadence (clamped to at least 1).
    pub checkpoint_every: usize,
    /// Per-destination deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-attempt step budget for each destination.
    pub step_budget: Option<u64>,
    /// Resume document from an interrupted campaign.
    pub resume_from: Option<Json>,
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` is not a non-negative integer")),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("`{key}` missing or not a non-negative integer"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("`{key}` missing or not a string")),
    }
}

impl Request {
    /// Serializes the request (the client side of the protocol).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit(s) => {
                let mut fields = vec![
                    ("op", Json::Str("submit".to_owned())),
                    ("graph", Json::Str(s.graph.clone())),
                    ("kind", Json::Str(s.kind.clone())),
                    ("dest", (s.dest as u64).into()),
                    ("checkpoint_every", (s.checkpoint_every as u64).into()),
                    ("resume_from", s.resume_from.clone().unwrap_or(Json::Null)),
                    ("deadline_ms", opt_num(s.deadline_ms)),
                    ("step_budget", opt_num(s.step_budget)),
                    ("wait", Json::Bool(s.wait)),
                ];
                if let Some((p, seed)) = s.transient_faults {
                    fields.push((
                        "transient_faults",
                        Json::obj(vec![("p", Json::Num(p)), ("seed", seed.into())]),
                    ));
                }
                Json::obj(fields)
            }
            Request::Result { id } => Json::obj(vec![
                ("op", Json::Str("result".to_owned())),
                ("id", (*id).into()),
            ]),
            Request::Cancel { id } => Json::obj(vec![
                ("op", Json::Str("cancel".to_owned())),
                ("id", (*id).into()),
            ]),
            Request::Status => Json::obj(vec![("op", Json::Str("status".to_owned()))]),
            Request::Metrics => Json::obj(vec![("op", Json::Str("metrics".to_owned()))]),
            Request::Campaign(c) => Json::obj(vec![
                ("op", Json::Str("campaign".to_owned())),
                ("graph", Json::Str(c.graph.clone())),
                ("checkpoint_every", (c.checkpoint_every as u64).into()),
                ("deadline_ms", opt_num(c.deadline_ms)),
                ("step_budget", opt_num(c.step_budget)),
                ("resume_from", c.resume_from.clone().unwrap_or(Json::Null)),
            ]),
        }
    }

    /// Decodes a request frame (the server side of the trust boundary).
    ///
    /// # Errors
    /// A message naming the first malformed field; unknown `op` values
    /// are reported verbatim so the caller can answer `unknown_op`.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let op = req_str(v, "op")?;
        match op.as_str() {
            "submit" => {
                let kind = req_str(v, "kind")?;
                match kind.as_str() {
                    "shortest" | "widest" | "apsp" | "chaos" => {}
                    other => return Err(format!("unknown job kind {other:?}")),
                }
                let transient_faults = match v.get("transient_faults") {
                    None | Some(Json::Null) => None,
                    Some(tf) => {
                        let p = tf
                            .get("p")
                            .and_then(Json::as_f64)
                            .ok_or("`transient_faults.p` missing or not a number")?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("`transient_faults.p` = {p} is not a probability"));
                        }
                        Some((
                            p,
                            req_u64(tf, "seed").map_err(|e| format!("transient_faults: {e}"))?,
                        ))
                    }
                };
                Ok(Request::Submit(SubmitRequest {
                    graph: req_str(v, "graph")?,
                    kind,
                    dest: req_u64(v, "dest").unwrap_or(0) as usize,
                    checkpoint_every: req_u64(v, "checkpoint_every").unwrap_or(1) as usize,
                    resume_from: match v.get("resume_from") {
                        None | Some(Json::Null) => None,
                        Some(doc) => Some(doc.clone()),
                    },
                    deadline_ms: opt_u64(v, "deadline_ms")?,
                    step_budget: opt_u64(v, "step_budget")?,
                    transient_faults,
                    wait: matches!(v.get("wait"), Some(Json::Bool(true))),
                }))
            }
            "result" => Ok(Request::Result {
                id: req_u64(v, "id")?,
            }),
            "cancel" => Ok(Request::Cancel {
                id: req_u64(v, "id")?,
            }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "campaign" => Ok(Request::Campaign(CampaignRequest {
                graph: req_str(v, "graph")?,
                checkpoint_every: req_u64(v, "checkpoint_every").unwrap_or(1) as usize,
                deadline_ms: opt_u64(v, "deadline_ms")?,
                step_budget: opt_u64(v, "step_budget")?,
                resume_from: match v.get("resume_from") {
                    None | Some(Json::Null) => None,
                    Some(doc) => Some(doc.clone()),
                },
            })),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

fn opt_num(v: Option<u64>) -> Json {
    match v {
        Some(n) => n.into(),
        None => Json::Null,
    }
}

/// A typed failure travelling over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFailure {
    /// Stable machine-readable class (see [`serve_error_kind`] plus the
    /// net-level kinds `malformed`, `frame_too_large`, `busy`,
    /// `unknown_op`, `unknown_job`, `graph`).
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
    /// The job the failure belongs to, when one was assigned.
    pub id: Option<u64>,
    /// For admission rejections: how long the client should wait before
    /// resubmitting (scaled by queue pressure).
    pub retry_after_ms: Option<u64>,
    /// For interrupted campaigns: the last flushed checkpoint, so the
    /// client can resume instead of restarting.
    pub checkpoint: Option<Json>,
}

impl WireFailure {
    /// A failure with just a kind and message.
    pub fn new(kind: &str, message: impl Into<String>) -> WireFailure {
        WireFailure {
            kind: kind.to_owned(),
            message: message.into(),
            id: None,
            retry_after_ms: None,
            checkpoint: None,
        }
    }

    /// Maps a [`ServeError`] (carrying its checkpoint when interrupted).
    pub fn from_serve_error(e: &ServeError) -> WireFailure {
        let mut f = WireFailure::new(serve_error_kind(e), e.to_string());
        if let ServeError::Interrupted { checkpoint, .. } = e {
            f.checkpoint = Some(checkpoint.clone());
        }
        f
    }
}

/// The stable wire kind for each [`ServeError`] class. For
/// [`ServeError::Interrupted`] the *cause*'s kind is prefixed with
/// `interrupted:` so clients can branch on the root cause without
/// parsing prose.
pub fn serve_error_kind(e: &ServeError) -> &'static str {
    match e {
        ServeError::Rejected { .. } => "rejected",
        ServeError::ShuttingDown => "shutting_down",
        ServeError::DeadlineExpiredInQueue { .. } => "deadline_in_queue",
        ServeError::DeadlineExceeded => "deadline",
        ServeError::Cancelled => "cancelled",
        ServeError::StepBudgetExhausted { .. } => "budget",
        ServeError::WorkerPanicked { .. } => "worker_panicked",
        ServeError::Interrupted { cause, .. } => match cause.as_ref() {
            ServeError::DeadlineExceeded => "interrupted:deadline",
            ServeError::Cancelled => "interrupted:cancelled",
            ServeError::StepBudgetExhausted { .. } => "interrupted:budget",
            _ => "interrupted",
        },
        ServeError::InvalidResume { .. } => "invalid_resume",
        ServeError::Solver(_) => "solver",
    }
}

/// A server response, encoded as one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted; fetch its report with [`Request::Result`].
    Accepted {
        /// The assigned job id.
        id: u64,
    },
    /// A finished job's report.
    Report {
        /// The job id.
        id: u64,
        /// The outcome document (see [`outcome_to_json`]).
        outcome: Json,
        /// Solve attempts executed.
        attempts: u64,
        /// Backend of the final attempt.
        backend: Option<String>,
        /// Submission-to-completion wall time in microseconds.
        latency_us: u64,
    },
    /// Answer to a [`Request::Cancel`].
    CancelResult {
        /// The id that was cancelled.
        id: u64,
        /// Whether the job was still known (queued or running).
        known: bool,
    },
    /// A live introspection snapshot document.
    Status(Json),
    /// The metrics registry document.
    MetricsDoc(Json),
    /// Campaign progress: `completed` of `of` destinations done.
    Progress {
        /// Destinations completed so far.
        completed: u64,
        /// Total destinations in the campaign.
        of: u64,
    },
    /// A campaign's final checkpoint document.
    Done(Json),
    /// A typed failure.
    Error(WireFailure),
}

impl Response {
    /// Serializes the response (the server side).
    pub fn to_json(&self) -> Json {
        match self {
            Response::Accepted { id } => Json::obj(vec![
                ("type", Json::Str("accepted".to_owned())),
                ("id", (*id).into()),
            ]),
            Response::Report {
                id,
                outcome,
                attempts,
                backend,
                latency_us,
            } => Json::obj(vec![
                ("type", Json::Str("report".to_owned())),
                ("id", (*id).into()),
                ("outcome", outcome.clone()),
                ("attempts", (*attempts).into()),
                (
                    "backend",
                    match backend {
                        Some(b) => Json::Str(b.clone()),
                        None => Json::Null,
                    },
                ),
                ("latency_us", (*latency_us).into()),
            ]),
            Response::CancelResult { id, known } => Json::obj(vec![
                ("type", Json::Str("cancelled".to_owned())),
                ("id", (*id).into()),
                ("known", Json::Bool(*known)),
            ]),
            Response::Status(doc) => Json::obj(vec![
                ("type", Json::Str("status".to_owned())),
                ("status", doc.clone()),
            ]),
            Response::MetricsDoc(doc) => Json::obj(vec![
                ("type", Json::Str("metrics".to_owned())),
                ("metrics", doc.clone()),
            ]),
            Response::Progress { completed, of } => Json::obj(vec![
                ("type", Json::Str("progress".to_owned())),
                ("completed", (*completed).into()),
                ("of", (*of).into()),
            ]),
            Response::Done(doc) => Json::obj(vec![
                ("type", Json::Str("done".to_owned())),
                ("checkpoint", doc.clone()),
            ]),
            Response::Error(e) => Json::obj(vec![
                ("type", Json::Str("error".to_owned())),
                ("kind", Json::Str(e.kind.clone())),
                ("message", Json::Str(e.message.clone())),
                ("id", opt_num(e.id)),
                ("retry_after_ms", opt_num(e.retry_after_ms)),
                ("checkpoint", e.checkpoint.clone().unwrap_or(Json::Null)),
            ]),
        }
    }

    /// Decodes a response frame (the client side of the trust boundary).
    ///
    /// # Errors
    /// A message naming the first malformed field.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        match req_str(v, "type")?.as_str() {
            "accepted" => Ok(Response::Accepted {
                id: req_u64(v, "id")?,
            }),
            "report" => Ok(Response::Report {
                id: req_u64(v, "id")?,
                outcome: v
                    .get("outcome")
                    .cloned()
                    .ok_or("`outcome` missing from report")?,
                attempts: req_u64(v, "attempts")?,
                backend: match v.get("backend") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(s.clone()),
                    _ => return Err("`backend` is not a string".to_owned()),
                },
                latency_us: req_u64(v, "latency_us")?,
            }),
            "cancelled" => Ok(Response::CancelResult {
                id: req_u64(v, "id")?,
                known: matches!(v.get("known"), Some(Json::Bool(true))),
            }),
            "status" => Ok(Response::Status(
                v.get("status").cloned().ok_or("`status` missing")?,
            )),
            "metrics" => Ok(Response::MetricsDoc(
                v.get("metrics").cloned().ok_or("`metrics` missing")?,
            )),
            "progress" => Ok(Response::Progress {
                completed: req_u64(v, "completed")?,
                of: req_u64(v, "of")?,
            }),
            "done" => Ok(Response::Done(
                v.get("checkpoint").cloned().ok_or("`checkpoint` missing")?,
            )),
            "error" => Ok(Response::Error(WireFailure {
                kind: req_str(v, "kind")?,
                message: req_str(v, "message")?,
                id: opt_u64(v, "id")?,
                retry_after_ms: opt_u64(v, "retry_after_ms")?,
                checkpoint: match v.get("checkpoint") {
                    None | Some(Json::Null) => None,
                    Some(doc) => Some(doc.clone()),
                },
            })),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

fn weight_to_json(w: Weight) -> Json {
    if w == INF {
        Json::Null
    } else {
        (w as u64).into()
    }
}

fn weight_from_json(v: &Json) -> Result<Weight, String> {
    match v {
        Json::Null => Ok(INF),
        other => other
            .as_u64()
            .map(|u| u as Weight)
            .ok_or_else(|| "weight entry is neither null nor a non-negative integer".to_owned()),
    }
}

fn usize_vec(v: &Json, key: &str) -> Result<Vec<usize>, String> {
    v.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("`{key}` missing or not an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| format!("`{key}` entry is not a non-negative integer"))
        })
        .collect()
}

fn weight_vec(v: &Json, key: &str) -> Result<Vec<Weight>, String> {
    v.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("`{key}` missing or not an array"))?
        .iter()
        .map(weight_from_json)
        .collect()
}

/// Encodes a job outcome's answer-defining fields (unreachable costs
/// become `null`); step accounting stays server-side.
pub fn outcome_to_json(outcome: &JobOutcome) -> Json {
    match outcome {
        JobOutcome::Shortest(out) => Json::obj(vec![
            ("kind", Json::Str("shortest".to_owned())),
            ("dest", (out.dest as u64).into()),
            (
                "sow",
                Json::Array(out.sow.iter().map(|&w| weight_to_json(w)).collect()),
            ),
            (
                "ptn",
                Json::Array(out.ptn.iter().map(|&p| (p as u64).into()).collect()),
            ),
            ("iterations", (out.iterations as u64).into()),
        ]),
        JobOutcome::Widest(out) => Json::obj(vec![
            ("kind", Json::Str("widest".to_owned())),
            ("dest", (out.dest as u64).into()),
            (
                "cap",
                Json::Array(out.cap.iter().map(|&w| weight_to_json(w)).collect()),
            ),
            (
                "ptn",
                Json::Array(out.ptn.iter().map(|&p| (p as u64).into()).collect()),
            ),
            ("iterations", (out.iterations as u64).into()),
        ]),
        JobOutcome::Apsp(doc) => Json::obj(vec![
            ("kind", Json::Str("apsp".to_owned())),
            ("checkpoint", doc.clone()),
        ]),
    }
}

/// Decodes [`outcome_to_json`]'s document back into a [`JobOutcome`]
/// (step accounting comes back defaulted — the wire does not carry it).
///
/// # Errors
/// A message naming the first malformed field.
pub fn outcome_from_json(v: &Json) -> Result<JobOutcome, String> {
    match req_str(v, "kind")?.as_str() {
        "shortest" => Ok(JobOutcome::Shortest(McpOutput {
            dest: req_u64(v, "dest")? as usize,
            sow: weight_vec(v, "sow")?,
            ptn: usize_vec(v, "ptn")?,
            iterations: req_u64(v, "iterations")? as usize,
            stats: McpStats::default(),
        })),
        "widest" => Ok(JobOutcome::Widest(WidestOutput {
            dest: req_u64(v, "dest")? as usize,
            cap: weight_vec(v, "cap")?,
            ptn: usize_vec(v, "ptn")?,
            iterations: req_u64(v, "iterations")? as usize,
            stats: McpStats::default(),
        })),
        "apsp" => Ok(JobOutcome::Apsp(
            v.get("checkpoint").cloned().ok_or("`checkpoint` missing")?,
        )),
        other => Err(format!("unknown outcome kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(doc: &Json) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, doc).unwrap();
        buf
    }

    #[test]
    fn frames_round_trip() {
        let doc = Json::obj(vec![
            ("op", Json::Str("status".to_owned())),
            ("x", Json::Array(vec![1u64.into(), Json::Null])),
        ]);
        let bytes = frame_bytes(&doc);
        let mut r = Cursor::new(bytes);
        match read_incoming(&mut r, DEFAULT_MAX_FRAME).unwrap() {
            Incoming::Frame(back) => {
                assert_eq!(back.to_string_compact(), doc.to_string_compact())
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        assert_eq!(
            read_incoming(&mut r, DEFAULT_MAX_FRAME).unwrap(),
            Incoming::Eof
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = (u32::MAX).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"irrelevant");
        let mut r = Cursor::new(bytes);
        assert_eq!(
            read_incoming(&mut r, 1024),
            Err(WireError::FrameTooLarge {
                len: u32::MAX as usize,
                max: 1024
            })
        );
    }

    #[test]
    fn truncated_streams_and_garbage_are_typed() {
        // Torn header.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert_eq!(read_incoming(&mut r, 1024), Err(WireError::Truncated));
        // Torn payload.
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let mut r = Cursor::new(bytes);
        assert_eq!(read_incoming(&mut r, 1024), Err(WireError::Truncated));
        // Valid length, invalid UTF-8.
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Cursor::new(bytes);
        assert!(matches!(
            read_incoming(&mut r, 1024),
            Err(WireError::Malformed { .. })
        ));
        // Valid UTF-8, invalid JSON.
        let mut bytes = 3u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"{{{");
        let mut r = Cursor::new(bytes);
        assert!(matches!(
            read_incoming(&mut r, 1024),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn http_get_is_sniffed_from_the_same_port() {
        let mut r = Cursor::new(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".to_vec());
        assert_eq!(
            read_incoming(&mut r, 1024).unwrap(),
            Incoming::HttpGet {
                target: "/metrics".to_owned()
            }
        );
        let mut out = Vec::new();
        write_http_response(&mut out, "200 OK", "text/plain", "hello").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
        assert!(text.contains("Content-Length: 5\r\n"));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Submit(SubmitRequest {
                graph: "3\n0 1 4\n".to_owned(),
                kind: "shortest".to_owned(),
                dest: 1,
                checkpoint_every: 1,
                resume_from: None,
                deadline_ms: Some(250),
                step_budget: None,
                transient_faults: Some((0.25, 42)),
                wait: true,
            }),
            Request::Result { id: 9 },
            Request::Cancel { id: 3 },
            Request::Status,
            Request::Metrics,
            Request::Campaign(CampaignRequest {
                graph: "2\n0 1 1\n1 0 1\n".to_owned(),
                checkpoint_every: 2,
                deadline_ms: None,
                step_budget: Some(10_000),
                resume_from: Some(Json::obj(vec![("version", 1u64.into())])),
            }),
        ];
        for req in reqs {
            let doc = req.to_json();
            let text = doc.to_string_compact();
            let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, req, "request must survive the wire: {text}");
        }
    }

    #[test]
    fn malformed_requests_are_named_errors() {
        assert!(Request::from_json(&Json::Null).is_err());
        let doc = Json::obj(vec![("op", Json::Str("fly".to_owned()))]);
        assert!(Request::from_json(&doc).unwrap_err().contains("fly"));
        let doc = Json::obj(vec![
            ("op", Json::Str("submit".to_owned())),
            ("kind", Json::Str("chess".to_owned())),
        ]);
        assert!(Request::from_json(&doc).unwrap_err().contains("chess"));
        let doc = Json::obj(vec![
            ("op", Json::Str("submit".to_owned())),
            ("kind", Json::Str("shortest".to_owned())),
            ("graph", Json::Str("1\n".to_owned())),
            (
                "transient_faults",
                Json::obj(vec![("p", Json::Num(7.0)), ("seed", 1u64.into())]),
            ),
        ]);
        assert!(Request::from_json(&doc)
            .unwrap_err()
            .contains("probability"));
        let doc = Json::obj(vec![("op", Json::Str("cancel".to_owned()))]);
        assert!(Request::from_json(&doc).unwrap_err().contains("id"));
    }

    #[test]
    fn responses_round_trip_through_json() {
        let resps = vec![
            Response::Accepted { id: 4 },
            Response::Report {
                id: 4,
                outcome: Json::obj(vec![("kind", Json::Str("apsp".to_owned()))]),
                attempts: 2,
                backend: Some("packed".to_owned()),
                latency_us: 1234,
            },
            Response::CancelResult { id: 4, known: true },
            Response::Status(Json::obj(vec![("queue_depth", 0u64.into())])),
            Response::MetricsDoc(Json::obj(vec![])),
            Response::Progress {
                completed: 3,
                of: 12,
            },
            Response::Done(Json::obj(vec![("version", 1u64.into())])),
            Response::Error(WireFailure {
                kind: "rejected".to_owned(),
                message: "queue full".to_owned(),
                id: None,
                retry_after_ms: Some(40),
                checkpoint: None,
            }),
        ];
        for resp in resps {
            let text = resp.to_json().to_string_compact();
            let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, resp, "response must survive the wire: {text}");
        }
    }

    #[test]
    fn outcomes_round_trip_with_inf_as_null() {
        let shortest = JobOutcome::Shortest(McpOutput {
            dest: 2,
            sow: vec![3, INF, 0],
            ptn: vec![2, 1, 2],
            iterations: 2,
            stats: McpStats::default(),
        });
        let doc = outcome_to_json(&shortest);
        let text = doc.to_string_compact();
        assert!(text.contains("null"), "INF must encode as null: {text}");
        let back = outcome_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, shortest);

        let widest = JobOutcome::Widest(WidestOutput {
            dest: 0,
            cap: vec![511, 4, 0],
            ptn: vec![0, 0, 2],
            iterations: 1,
            stats: McpStats::default(),
        });
        let back = outcome_from_json(&outcome_to_json(&widest)).unwrap();
        assert_eq!(back, widest);

        assert!(outcome_from_json(&Json::Null).is_err());
        let doc = Json::obj(vec![("kind", Json::Str("sideways".to_owned()))]);
        assert!(outcome_from_json(&doc).unwrap_err().contains("sideways"));
    }

    #[test]
    fn serve_error_kinds_are_stable() {
        assert_eq!(
            serve_error_kind(&ServeError::Rejected { capacity: 4 }),
            "rejected"
        );
        assert_eq!(serve_error_kind(&ServeError::Cancelled), "cancelled");
        assert_eq!(
            serve_error_kind(&ServeError::Interrupted {
                checkpoint: Json::Null,
                cause: Box::new(ServeError::StepBudgetExhausted { budget: 9 }),
            }),
            "interrupted:budget"
        );
        let f = WireFailure::from_serve_error(&ServeError::Interrupted {
            checkpoint: Json::obj(vec![("version", 1u64.into())]),
            cause: Box::new(ServeError::DeadlineExceeded),
        });
        assert_eq!(f.kind, "interrupted:deadline");
        assert!(f.checkpoint.is_some(), "interruptions carry the checkpoint");
    }
}
