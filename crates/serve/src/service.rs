//! The solve service: worker pool, bounded intake, deadlines, retries,
//! circuit breaking, panic isolation, and graceful drain.
//!
//! # Lifecycle of a job
//!
//! ```text
//! submit ──▶ bounded queue ──▶ worker ──▶ attempt loop ──▶ report
//!    │            │               │            │
//!    │ full:      │ deadline      │ panic:     │ corruption: retry with
//!    │ Rejected   │ expired:      │ isolate +  │ backoff; packed failures
//!    │            │ never run     │ replace    │ feed the circuit breaker
//! ```
//!
//! Every attempt runs on a **fresh machine** (transient faults do not
//! outlive an attempt), under a cooperative [`CancelToken`] armed by the
//! deadline watchdog and a controller step budget
//! ([`Ppa::limit_steps`](ppa_ppc::Ppa::limit_steps)) — so no input, fault
//! pattern, or deadline can wedge a worker. Workers that panic are
//! allowed to die: the panic is caught, the client still gets a typed
//! [`ServeError::WorkerPanicked`] report, and a supervisor thread spawns
//! a replacement. All of it is counted under `serve.*` metrics, which the
//! stress campaign reconciles 1:1 against client-side observations.

use crate::breaker::{BreakerState, CircuitBreaker, Route};
use crate::checkpoint::ApspCheckpoint;
use crate::health::{HealthLedger, HealthPolicy, MachineHealth};
use crate::introspect::{BreakerView, HealthView, InflightJob, Introspection, WorkerView};
use crate::job::{BackendChoice, JobKind, JobOutcome, JobReport, JobSpec, ServeError};
use crate::policy::RetryPolicy;
use crate::BreakerConfig;
use ppa_graph::{Weight, WeightMatrix, INF};
use ppa_machine::{
    CancelToken, Dim, Executor, FaultMap, Machine, PackedBackend, ThreadedBackend, TransientFaults,
    WordWidth, W256,
};
use ppa_mcp::batch::replicate;
use ppa_mcp::widest::{widest_path, WidestOutput};
use ppa_mcp::{mcp, BatchSession, LaneLimit, McpError, McpOutput, McpSession, Redundancy};
use ppa_obs::{Json, Metrics};
use ppa_ppc::Ppa;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Service tuning. `Default` is sized for tests and the CLI: a small
/// pool with modest backpressure and the stock retry/breaker policies.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
    /// Bounded intake queue capacity; a full queue rejects submissions
    /// with [`ServeError::Rejected`] (clamped to at least 1).
    pub queue_capacity: usize,
    /// Deadline applied when a job does not carry its own.
    pub default_deadline: Option<Duration>,
    /// Per-attempt step budget applied when a job does not carry its own.
    pub default_step_budget: Option<u64>,
    /// Retry pacing for corruption-class failures.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning for the packed backend.
    pub breaker: BreakerConfig,
    /// Route jobs to the packed backend when the breaker allows it;
    /// `false` pins everything to the scalar reference backend.
    pub prefer_packed: bool,
    /// Route jobs to the threaded backend (takes precedence over
    /// `prefer_packed`); guarded by the same circuit breaker, so a
    /// divergence-probe failure downgrades threaded jobs to scalar too.
    pub prefer_threaded: bool,
    /// Pool width for threaded-backend attempts (clamped to at least 1).
    pub threads: usize,
    /// Machine-word width for the fast (packed/threaded) backends: 64
    /// PEs per word (`u64`, the default) or 256 (SWAR `W256`). Scalar
    /// attempts ignore this — the reference backend has no word.
    pub word: WordWidth,
    /// Seed for worker-local RNGs (retry jitter). Worker `k` derives its
    /// stream from `seed` and `k`, so runs are reproducible.
    pub seed: u64,
    /// Lane-batched solving: coalesce compatible shortest-path jobs into
    /// one [`BatchSession`] wave and run APSP campaigns in destination
    /// wavefronts. Off by default — batching changes latency shape, not
    /// results (every lane is bit-identical to its solo run).
    pub batching: BatchingConfig,
    /// Lane-replicated redundant execution for shortest-path jobs:
    /// `Dmr` detects a corrupted replica by vote alone, `Tmr` can also
    /// out-vote it — no sequential reference runs on the hot path.
    /// Redundant waves count every replica lane against
    /// [`BatchingConfig::max_lanes`].
    pub redundancy: Redundancy,
    /// Background BIST scrubbing of idle workers (and the bench/probe
    /// loop of quarantined machines).
    pub scrubbing: ScrubConfig,
    /// Deterministic per-worker fault injection for drills; empty in
    /// production.
    pub fault_plan: MachineFaultPlan,
    /// Quarantine state-machine thresholds.
    pub health: HealthPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 3,
            queue_capacity: 16,
            default_deadline: None,
            default_step_budget: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            prefer_packed: true,
            prefer_threaded: false,
            threads: 2,
            word: WordWidth::W64,
            seed: 0x5eed,
            batching: BatchingConfig::default(),
            redundancy: Redundancy::Off,
            scrubbing: ScrubConfig::default(),
            fault_plan: MachineFaultPlan::default(),
            health: HealthPolicy::default(),
        }
    }
}

/// Tuning for the coalescing stage between intake and the worker pool.
#[derive(Debug, Clone)]
pub struct BatchingConfig {
    /// Enable the coalescer. When `false` (the default) every job flows
    /// straight to a worker exactly as before batching existed.
    pub enabled: bool,
    /// Most jobs coalesced into one wave (clamped to `1..=64`, the
    /// simulator's lane ceiling). A full wave flushes immediately.
    pub max_lanes: usize,
    /// How long a partial wave may wait for batchmates before flushing.
    /// The hold is deadline-aware: it is shortened so no held job can
    /// expire while waiting.
    pub hold_window: Duration,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            enabled: false,
            max_lanes: 16,
            hold_window: Duration::from_millis(2),
        }
    }
}

/// Background scrubber tuning: idle workers run the machine's
/// six-pattern BIST between jobs, under a duty-cycle budget so
/// scrubbing can never crowd out serving. The same knobs pace the
/// maintenance loop of benched (quarantined/probation) workers.
#[derive(Debug, Clone)]
pub struct ScrubConfig {
    /// Enable background scrubbing. Off by default — the quarantine
    /// ledger still records sightings either way, but nothing sweeps.
    pub enabled: bool,
    /// How long a worker must sit idle before it starts a sweep.
    pub idle_after: Duration,
    /// Minimum spacing between two idle sweeps on one worker.
    pub min_interval: Duration,
    /// Greatest fraction of a worker's wall-clock lifetime that may go
    /// to scrubbing (clamped to `0.0..=1.0`); over-budget sweeps are
    /// skipped and counted under `serve.scrub.skipped_budget`.
    pub duty_cycle: f64,
    /// Mesh size of scrub/probe machines (clamped to at least 2).
    pub probe_n: usize,
    /// Pause between maintenance rounds on a benched worker.
    pub benched_pause: Duration,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            enabled: false,
            idle_after: Duration::from_millis(1),
            min_interval: Duration::from_millis(2),
            duty_cycle: 0.25,
            probe_n: 6,
            benched_pause: Duration::from_micros(500),
        }
    }
}

/// A deterministic per-worker fault plan for drills: every machine
/// worker `k` builds (job attempts, scrub sweeps, probation probes)
/// carries `FaultMap::random(dim, count, seed)` until — if set —
/// `heal_after_builds` machines have been built, modeling a field
/// repair so quarantine re-admission can be exercised end to end.
#[derive(Debug, Clone, Default)]
pub struct MachineFaultPlan {
    /// Worker index -> its planted fault spec.
    pub faulty: BTreeMap<u64, FaultSpec>,
}

impl MachineFaultPlan {
    /// Plants `spec` on every machine worker `worker` builds.
    pub fn with(mut self, worker: u64, spec: FaultSpec) -> Self {
        self.faulty.insert(worker, spec);
        self
    }
}

/// One worker's planted fault (see [`MachineFaultPlan`]).
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Stuck switches per machine (clamped to at least 1).
    pub count: usize,
    /// Seed of the deterministic fault placement.
    pub seed: u64,
    /// Machines built before the fault clears (`None` = permanent).
    pub heal_after_builds: Option<u64>,
}

/// Locks a mutex, ignoring poisoning: a worker that panicked never holds
/// these locks across the panic point, and the service must keep serving
/// even after isolated panics.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A submitted job waiting in the intake queue.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    submitted: Instant,
    reply: Sender<JobReport>,
    /// The job's cancel token, created at submission so
    /// [`SolveService::cancel`] can fire it while the job is still
    /// queued (the deadline watchdog arms the same token later).
    token: CancelToken,
}

/// What a worker picks up: one job, or a coalesced wave of compatible
/// shortest-path jobs to solve as lanes of one [`BatchSession`].
enum Work {
    Single(QueuedJob),
    Batch(Vec<QueuedJob>),
}

/// The submission side of the intake: straight to the workers'
/// [`Work`] channel when batching is off, or through the coalescer's
/// own bounded queue when it is on. Both are bounded by
/// `queue_capacity`, so backpressure semantics survive the extra stage.
enum IntakeTx {
    Direct(SyncSender<Work>),
    Coalesced(SyncSender<QueuedJob>),
}

impl IntakeTx {
    fn try_send(&self, job: QueuedJob) -> Result<(), TrySendError<()>> {
        match self {
            IntakeTx::Direct(tx) => tx.try_send(Work::Single(job)).map_err(strip),
            IntakeTx::Coalesced(tx) => tx.try_send(job).map_err(strip),
        }
    }
}

fn strip<T>(e: TrySendError<T>) -> TrySendError<()> {
    match e {
        TrySendError::Full(_) => TrySendError::Full(()),
        TrySendError::Disconnected(_) => TrySendError::Disconnected(()),
    }
}

/// Supervisor mailbox messages.
enum Supervise {
    /// A worker died after an isolated panic; spawn a replacement.
    Died,
    /// A worker's machine was quarantined; spawn a replacement so
    /// serving capacity survives the bench. The benched worker lives
    /// on, scrubbing toward re-admission.
    Benched,
    /// Drain complete; the supervisor should exit.
    Stop,
}

/// What a worker thread is doing right now (introspection state).
#[derive(Clone, Copy)]
enum WorkerState {
    Idle,
    /// Running the job with this id (a batch shows its first lane's id).
    Running(u64),
    /// Sweeping or probing its machine (idle scrub, quarantine sweep,
    /// probation probe) — deliberately distinct from `Idle` so client
    /// tallies reconcile 1:1 against snapshots.
    Scrubbing,
}

/// What the pool knows about one executing job (introspection state;
/// keyed by job id in [`Shared::inflight`]).
struct InflightEntry {
    kind: &'static str,
    submitted: Instant,
    deadline: Option<Duration>,
    worker: u64,
}

/// State shared by the service handle, every worker, and the supervisor.
struct Shared {
    config: ServeConfig,
    metrics: Mutex<Metrics>,
    breaker: Mutex<CircuitBreaker>,
    accepting: AtomicBool,
    /// Jobs accepted into the intake queue and not yet picked up by a
    /// worker. Incremented *before* `try_send` (and rolled back on
    /// rejection) so a racing worker can never observe an underflow.
    queue_depth: AtomicU64,
    /// Jobs currently executing, keyed by job id.
    inflight: Mutex<BTreeMap<u64, InflightEntry>>,
    /// Live workers: index -> what the worker is doing right now.
    /// Entries are removed when a worker exits or panics.
    workers: Mutex<BTreeMap<u64, WorkerState>>,
    /// The persistent per-machine health ledger (records outlive their
    /// workers).
    health: Mutex<HealthLedger>,
    /// Cancel tokens for every job between submission and report, keyed
    /// by job id, so [`SolveService::cancel`] can reach queued *and*
    /// running jobs. Entries are removed when the job reports.
    cancels: Mutex<BTreeMap<u64, CancelToken>>,
    /// Ids whose token was fired by a *client* cancel (as opposed to the
    /// deadline watchdog), so the worker maps the cooperative stop to
    /// [`ServeError::Cancelled`] instead of `DeadlineExceeded`.
    client_cancelled: Mutex<BTreeSet<u64>>,
    /// Jobs the coalescer is holding for batchmates right now (also
    /// counted in `queue_depth`; introspection shows both).
    batch_pending: AtomicU64,
    /// Lanes of coalesced batches currently executing on workers.
    batch_lanes_inflight: AtomicU64,
}

impl Shared {
    /// The drill fault plan's faults for the next machine worker
    /// `index` builds, if any. Every call with a planted spec counts a
    /// build, so `heal_after_builds` models a repair that lands after a
    /// fixed number of faulty builds.
    fn plan_faults(&self, index: u64, dim: Dim) -> Option<FaultMap> {
        let spec = *self.config.fault_plan.faulty.get(&index)?;
        let builds = lock(&self.health).count_build(index);
        if spec.heal_after_builds.is_some_and(|h| builds > h) {
            return None;
        }
        Some(FaultMap::random(dim, spec.count.max(1), spec.seed))
    }
}

/// Everything a worker thread needs; cloneable so the supervisor can
/// spawn replacements.
#[derive(Clone)]
struct WorkerCtx {
    shared: Arc<Shared>,
    jobs: Arc<Mutex<Receiver<Work>>>,
    watchdog_tx: Sender<(Instant, CancelToken)>,
    death_tx: Sender<Supervise>,
    worker_seq: Arc<AtomicU64>,
}

/// A handle to one submitted job's eventual report.
#[derive(Debug)]
pub struct JobTicket {
    id: u64,
    rx: Receiver<JobReport>,
}

impl JobTicket {
    /// The id the service assigned at submission.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job's report arrives.
    ///
    /// Never loses a job: if the worker side vanished without reporting
    /// (which the panic-isolation path prevents, but the client must not
    /// have to trust that), a synthetic [`ServeError::WorkerPanicked`]
    /// report is returned instead of hanging or dropping the job.
    pub fn wait(self) -> JobReport {
        match self.rx.recv() {
            Ok(report) => report,
            Err(_) => JobReport {
                id: self.id,
                outcome: Err(ServeError::WorkerPanicked {
                    message: "worker lost before reporting".to_owned(),
                }),
                attempts: 0,
                backend: None,
                latency: Duration::ZERO,
            },
        }
    }
}

/// The concurrent solve service (see module docs).
pub struct SolveService {
    shared: Arc<Shared>,
    job_tx: Option<IntakeTx>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    coalescer: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    death_tx: Sender<Supervise>,
    next_id: AtomicU64,
}

impl SolveService {
    /// Starts the worker pool, supervisor, and deadline watchdog.
    pub fn start(config: ServeConfig) -> SolveService {
        let workers = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let breaker = CircuitBreaker::new(config.breaker);
        let (work_tx, work_rx) = mpsc::sync_channel::<Work>(capacity);
        let (watchdog_tx, watchdog_rx) = mpsc::channel();
        let (death_tx, death_rx) = mpsc::channel();
        let batching = config.batching.enabled;
        let ledger = HealthLedger::new(config.health);
        let shared = Arc::new(Shared {
            config,
            metrics: Mutex::new(Metrics::new()),
            breaker: Mutex::new(breaker),
            accepting: AtomicBool::new(true),
            queue_depth: AtomicU64::new(0),
            inflight: Mutex::new(BTreeMap::new()),
            workers: Mutex::new(BTreeMap::new()),
            health: Mutex::new(ledger),
            cancels: Mutex::new(BTreeMap::new()),
            client_cancelled: Mutex::new(BTreeSet::new()),
            batch_pending: AtomicU64::new(0),
            batch_lanes_inflight: AtomicU64::new(0),
        });
        // With batching on, submissions pass through the coalescer's own
        // bounded queue first; otherwise they go straight to the workers.
        let (job_tx, coalescer) = if batching {
            let (in_tx, in_rx) = mpsc::sync_channel::<QueuedJob>(capacity);
            let co_shared = Arc::clone(&shared);
            let handle = thread::spawn(move || coalescer_loop(&co_shared, &in_rx, &work_tx));
            (IntakeTx::Coalesced(in_tx), Some(handle))
        } else {
            (IntakeTx::Direct(work_tx), None)
        };
        let ctx = WorkerCtx {
            shared: Arc::clone(&shared),
            jobs: Arc::new(Mutex::new(work_rx)),
            watchdog_tx,
            death_tx: death_tx.clone(),
            worker_seq: Arc::new(AtomicU64::new(0)),
        };
        let handles = Arc::new(Mutex::new(Vec::new()));
        {
            let mut hs = lock(&handles);
            for _ in 0..workers {
                hs.push(spawn_worker(ctx.clone()));
            }
        }
        let sup_handles = Arc::clone(&handles);
        let supervisor = thread::spawn(move || supervisor_loop(death_rx, ctx, sup_handles));
        let watchdog = thread::spawn(move || watchdog_loop(watchdog_rx));
        SolveService {
            shared,
            job_tx: Some(job_tx),
            handles,
            coalescer,
            supervisor: Some(supervisor),
            watchdog: Some(watchdog),
            death_tx,
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits a job. Never blocks: a full queue is backpressure
    /// ([`ServeError::Rejected`]) and a draining service refuses new work
    /// ([`ServeError::ShuttingDown`]); in both cases nothing was
    /// enqueued and the caller may resubmit later.
    ///
    /// # Errors
    /// [`ServeError::Rejected`] or [`ServeError::ShuttingDown`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, ServeError> {
        lock(&self.shared.metrics).inc("serve.submitted", 1);
        if !self.shared.accepting.load(Ordering::Acquire) {
            lock(&self.shared.metrics).inc("serve.rejected_shutdown", 1);
            return Err(ServeError::ShuttingDown);
        }
        let Some(tx) = self.job_tx.as_ref() else {
            lock(&self.shared.metrics).inc("serve.rejected_shutdown", 1);
            return Err(ServeError::ShuttingDown);
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = mpsc::channel();
        let token = CancelToken::new();
        let job = QueuedJob {
            id,
            spec,
            submitted: Instant::now(),
            reply: reply_tx,
            token: token.clone(),
        };
        // Register the token before enqueueing so a cancel can never
        // race past a job that a worker already picked up.
        lock(&self.shared.cancels).insert(id, token);
        self.shared.queue_depth.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(job) {
            Ok(()) => {
                lock(&self.shared.metrics).inc("serve.accepted", 1);
                Ok(JobTicket { id, rx: reply_rx })
            }
            Err(TrySendError::Full(())) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                lock(&self.shared.cancels).remove(&id);
                lock(&self.shared.metrics).inc("serve.rejected_queue_full", 1);
                Err(ServeError::Rejected {
                    capacity: self.shared.config.queue_capacity.max(1),
                })
            }
            Err(TrySendError::Disconnected(())) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                lock(&self.shared.cancels).remove(&id);
                lock(&self.shared.metrics).inc("serve.rejected_shutdown", 1);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Cancels a job by id. Returns `true` when the job was still known
    /// to the service (queued or executing) and the cancel was
    /// delivered; `false` when the id already reported (or never
    /// existed), in which case nothing changes.
    ///
    /// A queued job is dropped unrun; a running job's machine stops
    /// cooperatively between instructions. Either way the ticket still
    /// receives a report — with [`ServeError::Cancelled`] (wrapped in
    /// [`ServeError::Interrupted`] for an APSP campaign that already
    /// flushed a checkpoint).
    pub fn cancel(&self, id: u64) -> bool {
        lock(&self.shared.metrics).inc("serve.cancel_requests", 1);
        let token = lock(&self.shared.cancels).get(&id).cloned();
        match token {
            Some(token) => {
                lock(&self.shared.client_cancelled).insert(id);
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// A snapshot of the service metrics so far.
    pub fn metrics(&self) -> Metrics {
        lock(&self.shared.metrics).clone()
    }

    /// How many accepted jobs are waiting in the queue right now. The
    /// network edge scales its rejection `retry_after_ms` hint by this.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue_depth.load(Ordering::Acquire)
    }

    /// The breaker's current state (drills and reports inspect this).
    pub fn breaker_state(&self) -> BreakerState {
        lock(&self.shared.breaker).state()
    }

    /// A point-in-time snapshot of the whole service: queue depth,
    /// in-flight jobs with their age and effective deadline, per-worker
    /// state, breaker state, retry/replacement counters, and the full
    /// metrics registry. The snapshot is consistent enough to reconcile:
    /// on an idle service (`queue_depth == 0`, no in-flight jobs) every
    /// counter is final. Serializes exactly via
    /// [`Introspection::to_json`]/[`Introspection::from_json`].
    pub fn introspect(&self) -> Introspection {
        let now = Instant::now();
        let inflight: Vec<InflightJob> = lock(&self.shared.inflight)
            .iter()
            .map(|(&id, e)| InflightJob {
                id,
                kind: e.kind.to_owned(),
                age_us: now.saturating_duration_since(e.submitted).as_micros() as u64,
                deadline_us: e.deadline.map(|d| d.as_micros() as u64),
                worker: e.worker,
            })
            .collect();
        let workers: Vec<WorkerView> = lock(&self.shared.workers)
            .iter()
            .map(|(&index, &state)| {
                let (job, scrubbing) = match state {
                    WorkerState::Running(id) => (Some(id), false),
                    WorkerState::Scrubbing => (None, true),
                    WorkerState::Idle => (None, false),
                };
                WorkerView {
                    index,
                    job,
                    scrubbing,
                }
            })
            .collect();
        let health: Vec<HealthView> = lock(&self.shared.health)
            .snapshot()
            .into_iter()
            .map(|(worker, rec)| HealthView {
                worker,
                state: rec.state.label().to_owned(),
                fault_sightings: rec.fault_sightings,
                vote_disagreements: rec.vote_disagreements,
                scrubs: rec.scrubs,
                bist_faults: rec.bist_faults,
                probes: rec.probes,
                clean_streak: rec.clean_streak,
            })
            .collect();
        let metrics = lock(&self.shared.metrics).clone();
        Introspection {
            queue_depth: self.shared.queue_depth.load(Ordering::Acquire),
            accepting: self.shared.accepting.load(Ordering::Acquire),
            batch_pending: self.shared.batch_pending.load(Ordering::Acquire),
            batch_lanes_inflight: self.shared.batch_lanes_inflight.load(Ordering::Acquire),
            inflight,
            workers,
            health,
            breaker: BreakerView::from_state(lock(&self.shared.breaker).state()),
            retries: metrics.counter("serve.retries"),
            workers_replaced: metrics.counter("serve.workers_replaced"),
            quarantine_leaks: metrics.counter("serve.health.quarantine_leaks"),
            metrics,
        }
    }

    /// Graceful drain: stop accepting, let the workers finish every
    /// accepted job, join all threads, and return the final metrics.
    /// Every ticket issued before the drain still receives its report.
    pub fn shutdown(mut self) -> Metrics {
        self.drain();
        lock(&self.shared.metrics).clone()
    }

    fn drain(&mut self) {
        self.shared.accepting.store(false, Ordering::Release);
        // Closing the queue lets workers drain it and exit on recv error.
        drop(self.job_tx.take());
        // The coalescer flushes its held wave and exits once the intake
        // closes; its exit drops the Work sender, which releases the
        // workers in turn.
        if let Some(c) = self.coalescer.take() {
            let _ = c.join();
        }
        self.join_workers();
        let _ = self.death_tx.send(Supervise::Stop);
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        // The supervisor may have spawned a replacement between our last
        // sweep and its Stop; it exits immediately, but must be joined.
        self.join_workers();
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }

    fn join_workers(&self) {
        loop {
            let batch: Vec<JoinHandle<()>> = lock(&self.handles).drain(..).collect();
            if batch.is_empty() {
                return;
            }
            for h in batch {
                let _ = h.join();
            }
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.drain();
    }
}

fn spawn_worker(ctx: WorkerCtx) -> JoinHandle<()> {
    thread::spawn(move || worker_loop(ctx))
}

fn worker_loop(ctx: WorkerCtx) {
    let index = ctx.worker_seq.fetch_add(1, Ordering::Relaxed);
    lock(&ctx.shared.workers).insert(index, WorkerState::Idle);
    lock(&ctx.shared.health).register(index);
    let scrub = ctx.shared.config.scrubbing.clone();
    let mut clock = ScrubClock::new();
    // Golden-ratio stride keeps worker streams disjoint for nearby seeds.
    let mut rng = SmallRng::seed_from_u64(
        ctx.shared
            .config
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index + 1)),
    );
    loop {
        // Benched machines never pull jobs: a quarantined worker scrubs
        // itself toward a clean sweep, a probation worker earns
        // re-admission with probe solves. Health transitions for worker
        // `index` only ever happen on this thread, so the gate cannot
        // race with a later state change.
        // Bind the state first: a `match` on the locked expression
        // would hold the health mutex across the arms and deadlock the
        // scrub/probe calls below.
        let health_state = lock(&ctx.shared.health).state(index);
        match health_state {
            MachineHealth::Quarantined => {
                if !ctx.shared.accepting.load(Ordering::Acquire) {
                    lock(&ctx.shared.workers).remove(&index);
                    return;
                }
                run_scrub(&ctx, index);
                thread::sleep(scrub.benched_pause);
                continue;
            }
            MachineHealth::Probation => {
                if !ctx.shared.accepting.load(Ordering::Acquire) {
                    lock(&ctx.shared.workers).remove(&index);
                    return;
                }
                run_probe(&ctx, index);
                thread::sleep(scrub.benched_pause);
                continue;
            }
            _ => {}
        }
        let next = if scrub.enabled {
            // Idle scrubbing: when no work arrives within the idle
            // window, release the receiver and sweep under the
            // duty-cycle budget.
            // Ditto: drop the receiver lock before scrubbing, so an
            // idle sweep never stalls job pickup on other workers.
            let received = lock(&ctx.jobs).recv_timeout(scrub.idle_after);
            match received {
                Ok(work) => Ok(work),
                Err(RecvTimeoutError::Timeout) => {
                    maybe_idle_scrub(&ctx, index, &mut clock);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => Err(()),
            }
        } else {
            lock(&ctx.jobs).recv().map_err(|_| ())
        };
        let Ok(work) = next else {
            // Queue closed and drained: graceful exit.
            lock(&ctx.shared.workers).remove(&index);
            return;
        };
        // Audit: a benched machine must never receive work. The health
        // gate above makes that impossible by construction; this
        // counter exists so the chaos drill can prove it stayed zero.
        if lock(&ctx.shared.health).is_benched(index) {
            lock(&ctx.shared.metrics).inc("serve.health.quarantine_leaks", 1);
        }
        let job = match work {
            Work::Single(job) => job,
            Work::Batch(jobs) => {
                if run_batch_on_worker(&ctx, index, jobs, &mut rng) {
                    continue;
                }
                // The batch panicked; this worker is done (the
                // supervisor was already asked for a replacement).
                return;
            }
        };
        ctx.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
        let (id, submitted, reply) = (job.id, job.submitted, job.reply.clone());
        lock(&ctx.shared.inflight).insert(
            id,
            InflightEntry {
                kind: job.spec.kind.label(),
                submitted,
                deadline: job.spec.deadline.or(ctx.shared.config.default_deadline),
                worker: index,
            },
        );
        lock(&ctx.shared.workers).insert(index, WorkerState::Running(id));
        let verdict = catch_unwind(AssertUnwindSafe(|| run_job(&ctx, index, job, &mut rng)));
        lock(&ctx.shared.inflight).remove(&id);
        lock(&ctx.shared.cancels).remove(&id);
        lock(&ctx.shared.client_cancelled).remove(&id);
        match verdict {
            Ok(report) => {
                lock(&ctx.shared.workers).insert(index, WorkerState::Idle);
                let _ = reply.send(report);
            }
            Err(payload) => {
                // The dying worker disappears from introspection; its
                // replacement registers itself under a fresh index.
                lock(&ctx.shared.workers).remove(&index);
                let latency = submitted.elapsed();
                let mut m = lock(&ctx.shared.metrics);
                m.inc("serve.worker_panics", 1);
                m.inc("serve.failed", 1);
                m.observe("serve.latency_us", latency.as_micros() as u64);
                drop(m);
                let _ = reply.send(JobReport {
                    id,
                    outcome: Err(ServeError::WorkerPanicked {
                        message: panic_message(payload),
                    }),
                    attempts: 1,
                    backend: None,
                    latency,
                });
                // A worker that panicked may hold corrupted thread state;
                // report the death and let the supervisor replace it.
                let _ = ctx.death_tx.send(Supervise::Died);
                return;
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Worker-local duty-cycle accounting for idle scrubbing.
struct ScrubClock {
    started: Instant,
    spent: Duration,
    last: Option<Instant>,
}

impl ScrubClock {
    fn new() -> ScrubClock {
        ScrubClock {
            started: Instant::now(),
            spent: Duration::ZERO,
            last: None,
        }
    }
}

/// Runs an idle BIST sweep if pacing and the duty-cycle budget allow
/// it; over-budget sweeps are skipped (and counted) rather than queued.
fn maybe_idle_scrub(ctx: &WorkerCtx, index: u64, clock: &mut ScrubClock) {
    let cfg = &ctx.shared.config.scrubbing;
    if clock.last.is_some_and(|at| at.elapsed() < cfg.min_interval) {
        return;
    }
    let alive = clock.started.elapsed().max(Duration::from_micros(1));
    if clock.spent.as_secs_f64() > cfg.duty_cycle.clamp(0.0, 1.0) * alive.as_secs_f64() {
        lock(&ctx.shared.metrics).inc("serve.scrub.skipped_budget", 1);
        return;
    }
    let began = Instant::now();
    run_scrub(ctx, index);
    clock.spent += began.elapsed();
    clock.last = Some(Instant::now());
}

/// One BIST sweep of this worker's machine: builds a scrub machine the
/// way the worker builds job machines (drill fault plans included),
/// runs the six-pattern self test, and feeds the verdict to the health
/// ledger. A fault-localizing sweep quarantines the machine from any
/// serving state and asks the supervisor for a replacement; a clean
/// sweep builds the streak that clears a suspect, or moves a
/// quarantined machine to probation.
fn run_scrub(ctx: &WorkerCtx, index: u64) -> bool {
    let shared = &ctx.shared;
    lock(&shared.workers).insert(index, WorkerState::Scrubbing);
    let n = shared.config.scrubbing.probe_n.max(2);
    let mut machine = Machine::square(n);
    if let Some(fm) = shared.plan_faults(index, machine.dim()) {
        machine.attach_faults(fm);
    }
    let report = machine.self_test();
    let healthy = report.is_healthy();
    {
        let mut m = lock(&shared.metrics);
        m.inc("serve.scrub.sweeps", 1);
        m.inc("serve.scrub.steps", report.steps.total());
        m.inc(
            if healthy {
                "serve.scrub.clean"
            } else {
                "serve.scrub.faulty"
            },
            1,
        );
    }
    let transition = lock(&shared.health).scrub(index, healthy);
    match transition {
        Some(MachineHealth::Quarantined) => {
            lock(&shared.metrics).inc("serve.health.quarantined", 1);
            let _ = ctx.death_tx.send(Supervise::Benched);
        }
        Some(MachineHealth::Probation) => {
            lock(&shared.metrics).inc("serve.health.probation", 1);
        }
        Some(MachineHealth::Healthy) => {
            lock(&shared.metrics).inc("serve.health.cleared", 1);
        }
        _ => {}
    }
    lock(&shared.workers).insert(index, WorkerState::Idle);
    healthy
}

/// One probation probe: a verified solve of a fixed reference graph on
/// a machine built exactly as this worker builds job machines. Clean
/// probes build toward re-admission; a failed probe re-quarantines.
/// Off the serving hot path, so host verification is fine here.
fn run_probe(ctx: &WorkerCtx, index: u64) {
    let shared = &ctx.shared;
    lock(&shared.workers).insert(index, WorkerState::Scrubbing);
    let n = shared.config.scrubbing.probe_n.max(4);
    let w = ppa_graph::gen::random_connected(n, 0.5, 9, 0x09ED);
    let word_bits = mcp::fit_word_bits(&w).clamp(2, 62);
    let mut ppa = Ppa::square(n).with_word_bits(word_bits);
    if let Some(fm) = shared.plan_faults(index, ppa.machine().dim()) {
        ppa.machine_mut().attach_faults(fm);
    }
    let clean = McpSession::from_ppa(ppa, &w)
        .and_then(|mut s| s.solve_verified(0))
        .is_ok();
    {
        let mut m = lock(&shared.metrics);
        m.inc("serve.health.probes", 1);
        if !clean {
            m.inc("serve.health.probe_failures", 1);
        }
    }
    let transition = lock(&shared.health).probe(index, clean);
    match transition {
        Some(MachineHealth::Healthy) => {
            lock(&shared.metrics).inc("serve.health.readmitted", 1);
        }
        Some(MachineHealth::Quarantined) => {
            lock(&shared.metrics).inc("serve.health.quarantined", 1);
        }
        _ => {}
    }
    lock(&shared.workers).insert(index, WorkerState::Idle);
}

/// Records a corruption-class failure against this worker's machine.
/// `vote` marks a redundant-vote disagreement (already known to be a
/// replica-level divergence, the strongest soft evidence we have).
fn note_sighting(ctx: &WorkerCtx, index: u64, vote: bool) {
    let transition = lock(&ctx.shared.health).sighting(index, vote);
    let mut m = lock(&ctx.shared.metrics);
    m.inc("serve.health.sightings", 1);
    if vote {
        m.inc("serve.health.vote_disagreements", 1);
    }
    if transition == Some(MachineHealth::Suspect) {
        m.inc("serve.health.suspect", 1);
    }
}

/// Runs a coalesced wave on this worker with the same bookkeeping and
/// panic isolation as a single job: every lane gets its own inflight
/// entry and its own report, and a panic anywhere in the wave reports
/// [`ServeError::WorkerPanicked`] to *every* lane's ticket. Returns
/// `false` when the worker must die (panic path).
fn run_batch_on_worker(
    ctx: &WorkerCtx,
    index: u64,
    jobs: Vec<QueuedJob>,
    rng: &mut SmallRng,
) -> bool {
    let lanes = jobs.len() as u64;
    ctx.shared.queue_depth.fetch_sub(lanes, Ordering::AcqRel);
    let meta: Vec<(u64, Instant, Sender<JobReport>)> = jobs
        .iter()
        .map(|j| (j.id, j.submitted, j.reply.clone()))
        .collect();
    {
        let mut inflight = lock(&ctx.shared.inflight);
        for job in &jobs {
            inflight.insert(
                job.id,
                InflightEntry {
                    kind: job.spec.kind.label(),
                    submitted: job.submitted,
                    deadline: job.spec.deadline.or(ctx.shared.config.default_deadline),
                    worker: index,
                },
            );
        }
    }
    lock(&ctx.shared.workers).insert(index, WorkerState::Running(meta[0].0));
    ctx.shared
        .batch_lanes_inflight
        .fetch_add(lanes, Ordering::AcqRel);
    let verdict = catch_unwind(AssertUnwindSafe(|| run_batch(ctx, index, jobs, rng)));
    ctx.shared
        .batch_lanes_inflight
        .fetch_sub(lanes, Ordering::AcqRel);
    for (id, _, _) in &meta {
        lock(&ctx.shared.inflight).remove(id);
        lock(&ctx.shared.cancels).remove(id);
        lock(&ctx.shared.client_cancelled).remove(id);
    }
    match verdict {
        Ok(reports) => {
            lock(&ctx.shared.workers).insert(index, WorkerState::Idle);
            for ((_, _, reply), report) in meta.into_iter().zip(reports) {
                let _ = reply.send(report);
            }
            true
        }
        Err(payload) => {
            lock(&ctx.shared.workers).remove(&index);
            let message = panic_message(payload);
            {
                let mut m = lock(&ctx.shared.metrics);
                m.inc("serve.worker_panics", 1);
                m.inc("serve.failed", lanes);
                for (_, submitted, _) in &meta {
                    m.observe("serve.latency_us", submitted.elapsed().as_micros() as u64);
                }
            }
            for (id, submitted, reply) in meta {
                let _ = reply.send(JobReport {
                    id,
                    outcome: Err(ServeError::WorkerPanicked {
                        message: message.clone(),
                    }),
                    attempts: 1,
                    backend: None,
                    latency: submitted.elapsed(),
                });
            }
            let _ = ctx.death_tx.send(Supervise::Died);
            false
        }
    }
}

/// Whether the coalescer may hold this job for batchmates. Only
/// shortest-path jobs without per-job fault injection batch; everything
/// else flows straight through as a single.
fn batch_eligible(job: &QueuedJob) -> bool {
    matches!(job.spec.kind, JobKind::Shortest { .. }) && job.spec.transient_faults.is_none()
}

/// Jobs coalesce only when their lanes would be indistinguishable from
/// solo runs: same machine size and the same fitted word width (the
/// batch runs at the max lane width, so mixing widths would change a
/// narrower job's step counts).
fn batch_key(spec: &JobSpec) -> (usize, u32) {
    (spec.graph.n(), mcp::fit_word_bits(&spec.graph).clamp(2, 62))
}

/// The coalescing stage: holds eligible shortest-path jobs for up to
/// the (deadline-aware) hold window, flushing a wave when it fills, the
/// window expires, the key changes, or the intake closes. Ineligible
/// jobs overtake the held wave — ordering across job kinds was never
/// guaranteed.
fn coalescer_loop(shared: &Arc<Shared>, intake: &Receiver<QueuedJob>, work_tx: &SyncSender<Work>) {
    // Redundant waves replicate every job into `replicas` lanes, so the
    // wave size shrinks to keep the physical lane count within bounds.
    let replicas = shared.config.redundancy.replicas().max(1);
    let max_lanes = (shared.config.batching.max_lanes.clamp(1, 64) / replicas).max(1);
    let hold = shared.config.batching.hold_window;
    let mut held: Vec<QueuedJob> = Vec::new();
    let mut key: Option<(usize, u32)> = None;
    let mut flush_at: Option<Instant> = None;
    loop {
        let next = match flush_at {
            Some(at) => match intake.recv_timeout(at.saturating_duration_since(Instant::now())) {
                Ok(job) => Some(job),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    flush_held(shared, &mut held, &mut key, &mut flush_at, work_tx, "hold");
                    return;
                }
            },
            None => match intake.recv() {
                Ok(job) => Some(job),
                Err(_) => return, // nothing held, intake closed
            },
        };
        let Some(job) = next else {
            // Hold window expired with no new arrivals.
            flush_held(shared, &mut held, &mut key, &mut flush_at, work_tx, "hold");
            continue;
        };
        if !batch_eligible(&job) {
            if work_tx.send(Work::Single(job)).is_err() {
                return;
            }
            continue;
        }
        let k = batch_key(&job.spec);
        if key.is_some_and(|have| have != k) {
            flush_held(shared, &mut held, &mut key, &mut flush_at, work_tx, "key");
        }
        key = Some(k);
        // Deadline-aware hold: never let the window push a held job past
        // its own deadline.
        let flush_by = job
            .spec
            .deadline
            .or(shared.config.default_deadline)
            .map(|d| job.submitted + d);
        held.push(job);
        shared
            .batch_pending
            .store(held.len() as u64, Ordering::Release);
        let target = flush_at.unwrap_or_else(|| Instant::now() + hold);
        flush_at = Some(match flush_by {
            Some(by) => target.min(by),
            None => target,
        });
        if held.len() >= max_lanes {
            flush_held(shared, &mut held, &mut key, &mut flush_at, work_tx, "full");
        }
    }
}

/// Dispatches the held wave (if any) to the workers, recording why it
/// flushed and how full it was. A wave of one is dispatched as a plain
/// single job — the batch machinery only engages for two lanes or more.
fn flush_held(
    shared: &Arc<Shared>,
    held: &mut Vec<QueuedJob>,
    key: &mut Option<(usize, u32)>,
    flush_at: &mut Option<Instant>,
    work_tx: &SyncSender<Work>,
    cause: &str,
) {
    *key = None;
    *flush_at = None;
    if held.is_empty() {
        return;
    }
    let mut wave = std::mem::take(held);
    shared.batch_pending.store(0, Ordering::Release);
    {
        let mut m = lock(&shared.metrics);
        m.inc("serve.batch.flushed", 1);
        m.inc(&format!("serve.batch.{cause}_flush"), 1);
        m.observe("serve.batch.occupancy", wave.len() as u64);
        if wave.len() >= 2 {
            m.inc("serve.batch.jobs", wave.len() as u64);
        }
    }
    let work = if wave.len() == 1 {
        match wave.pop() {
            Some(job) => Work::Single(job),
            None => return,
        }
    } else {
        Work::Batch(wave)
    };
    let _ = work_tx.send(work);
}

/// Executes a coalesced wave: per-lane queued gates, one
/// [`BatchSession`] solve on the routed backend with each job's budget
/// and cancel token as its lane limit, then per-lane error mapping
/// identical to the solo path. A corrupted lane (or a whole-wave
/// machine failure) falls back to [`run_job`] so the retry/breaker
/// machinery treats it exactly like a solo corruption.
fn run_batch(
    ctx: &WorkerCtx,
    index: u64,
    jobs: Vec<QueuedJob>,
    rng: &mut SmallRng,
) -> Vec<JobReport> {
    let shared = &ctx.shared;
    let config = &shared.config;
    let total = jobs.len();
    let mut slots: Vec<Option<QueuedJob>> = jobs.into_iter().map(Some).collect();
    let mut reports: Vec<Option<JobReport>> = (0..total).map(|_| None).collect();

    // Queued gates, per lane: client cancels and queue expiry resolve a
    // lane before any machine is built — identically to the solo path.
    let mut live: Vec<usize> = Vec::new();
    for i in 0..total {
        let job = slots[i].as_ref().expect("unresolved slot");
        let deadline = job.spec.deadline.or(config.default_deadline);
        if job.token.is_cancelled() && lock(&shared.client_cancelled).contains(&job.id) {
            let job = slots[i].take().expect("unresolved slot");
            reports[i] = Some(finish(
                ctx,
                &job,
                Err(ServeError::Cancelled),
                0,
                None,
                false,
                None,
            ));
            continue;
        }
        let waited = job.submitted.elapsed();
        if let Some(d) = deadline {
            if waited >= d {
                let job = slots[i].take().expect("unresolved slot");
                let mut m = lock(&shared.metrics);
                m.inc("serve.failed", 1);
                m.inc("serve.deadline_exceeded", 1);
                m.inc("serve.expired_in_queue", 1);
                m.observe("serve.latency_us", waited.as_micros() as u64);
                drop(m);
                reports[i] = Some(JobReport {
                    id: job.id,
                    outcome: Err(ServeError::DeadlineExpiredInQueue { waited }),
                    attempts: 0,
                    backend: None,
                    latency: waited,
                });
                continue;
            }
            let _ = ctx.watchdog_tx.send((job.submitted + d, job.token.clone()));
        }
        live.push(i);
    }

    if !live.is_empty() {
        let backend = route_backend(ctx);
        let graphs: Vec<WeightMatrix> = live
            .iter()
            .map(|&i| slots[i].as_ref().expect("live slot").spec.graph.clone())
            .collect();
        let dests: Vec<usize> = live
            .iter()
            .map(|&i| match slots[i].as_ref().expect("live slot").spec.kind {
                JobKind::Shortest { dest } => dest,
                _ => unreachable!("the coalescer only batches shortest jobs"),
            })
            .collect();
        let limits: Vec<LaneLimit> = live
            .iter()
            .map(|&i| {
                let job = slots[i].as_ref().expect("live slot");
                LaneLimit {
                    step_budget: job.spec.step_budget.or(config.default_step_budget),
                    cancel: Some(job.token.clone()),
                }
            })
            .collect();
        let wave = if config.redundancy.replicas() > 1 {
            run_redundant_batch(
                ctx,
                index,
                backend,
                &graphs,
                &dests,
                &limits,
                config.redundancy,
            )
        } else {
            match (backend, config.word) {
                (BackendChoice::Packed, WordWidth::W64) => BatchSession::new_packed(&graphs)
                    .and_then(|mut b| b.solve_verified_with(&dests, &limits)),
                (BackendChoice::Packed, WordWidth::W256) => {
                    BatchSession::<PackedBackend<W256>>::new_packed_wide(&graphs)
                        .and_then(|mut b| b.solve_verified_with(&dests, &limits))
                }
                (BackendChoice::Threaded, WordWidth::W64) => {
                    BatchSession::new_threaded(&graphs, config.threads.max(1))
                        .and_then(|mut b| b.solve_verified_with(&dests, &limits))
                }
                (BackendChoice::Threaded, WordWidth::W256) => {
                    BatchSession::<ThreadedBackend<W256>>::new_threaded_wide(
                        &graphs,
                        config.threads.max(1),
                    )
                    .and_then(|mut b| b.solve_verified_with(&dests, &limits))
                }
                (BackendChoice::Scalar, _) => BatchSession::new(&graphs)
                    .and_then(|mut b| b.solve_verified_with(&dests, &limits)),
            }
        };
        match wave {
            Err(_whole_wave) => {
                // A machine-global failure takes down every lane at once;
                // rather than inventing per-lane results, each job re-runs
                // on the solo path with its full retry/breaker treatment.
                if backend.is_fast() && lock(&shared.breaker).record_failure() {
                    lock(&shared.metrics).inc("serve.breaker.trips", 1);
                }
                lock(&shared.metrics).inc("serve.batch.fallback_single", live.len() as u64);
                for &i in &live {
                    let job = slots[i].take().expect("live slot");
                    reports[i] = Some(run_job(ctx, index, job, rng));
                }
            }
            Ok(wave) => {
                let mut fast_success = false;
                for (&i, lane) in live.iter().zip(wave) {
                    let job = slots[i].take().expect("live slot");
                    let report = match lane {
                        Ok(out) => {
                            fast_success = true;
                            finish(
                                ctx,
                                &job,
                                Ok(JobOutcome::Shortest(out)),
                                1,
                                Some(backend),
                                false,
                                None,
                            )
                        }
                        Err(e) if e.is_cancelled() => {
                            let cause = if lock(&shared.client_cancelled).contains(&job.id) {
                                ServeError::Cancelled
                            } else {
                                ServeError::DeadlineExceeded
                            };
                            finish(ctx, &job, Err(cause), 1, Some(backend), false, None)
                        }
                        Err(e) if e.is_step_budget_exhausted() => {
                            let budget = job.spec.step_budget.or(config.default_step_budget);
                            finish(
                                ctx,
                                &job,
                                Err(ServeError::StepBudgetExhausted {
                                    budget: budget.unwrap_or_default(),
                                }),
                                1,
                                Some(backend),
                                false,
                                None,
                            )
                        }
                        Err(e) if e.indicates_corruption() => {
                            if backend.is_fast() && lock(&shared.breaker).record_failure() {
                                lock(&shared.metrics).inc("serve.breaker.trips", 1);
                            }
                            lock(&shared.metrics).inc("serve.batch.fallback_single", 1);
                            run_job(ctx, index, job, rng)
                        }
                        Err(e) => finish(
                            ctx,
                            &job,
                            Err(ServeError::Solver(e)),
                            1,
                            Some(backend),
                            false,
                            None,
                        ),
                    };
                    reports[i] = Some(report);
                }
                if fast_success && backend.is_fast() {
                    lock(&shared.breaker).record_success();
                }
            }
        }
    }
    reports
        .into_iter()
        .map(|r| r.expect("every lane resolves to a report"))
        .collect()
}

/// Solves a coalesced wave redundantly: every job's graph is replicated
/// into `mode.replicas()` adjacent lanes of one wide session, voted per
/// destination, and mapped back to one outcome per job — vote-only, no
/// sequential reference on the hot path. Vote disagreements are
/// recorded against this worker's health record.
fn run_redundant_batch(
    ctx: &WorkerCtx,
    index: u64,
    backend: BackendChoice,
    graphs: &[WeightMatrix],
    dests: &[usize],
    limits: &[LaneLimit],
    mode: Redundancy,
) -> Result<Vec<Result<McpOutput, McpError>>, McpError> {
    let rep = mode.expand(graphs);
    let threads = ctx.shared.config.threads.max(1);
    match (backend, ctx.shared.config.word) {
        (BackendChoice::Packed, WordWidth::W64) => drive_redundant_wave(
            ctx,
            index,
            BatchSession::new_packed(&rep)?,
            dests,
            limits,
            mode,
        ),
        (BackendChoice::Packed, WordWidth::W256) => drive_redundant_wave(
            ctx,
            index,
            BatchSession::<PackedBackend<W256>>::new_packed_wide(&rep)?,
            dests,
            limits,
            mode,
        ),
        (BackendChoice::Threaded, WordWidth::W64) => drive_redundant_wave(
            ctx,
            index,
            BatchSession::new_threaded(&rep, threads)?,
            dests,
            limits,
            mode,
        ),
        (BackendChoice::Threaded, WordWidth::W256) => drive_redundant_wave(
            ctx,
            index,
            BatchSession::<ThreadedBackend<W256>>::new_threaded_wide(&rep, threads)?,
            dests,
            limits,
            mode,
        ),
        (BackendChoice::Scalar, _) => {
            drive_redundant_wave(ctx, index, BatchSession::new(&rep)?, dests, limits, mode)
        }
    }
}

fn drive_redundant_wave<E: Executor>(
    ctx: &WorkerCtx,
    index: u64,
    mut sess: BatchSession<E>,
    dests: &[usize],
    limits: &[LaneLimit],
    mode: Redundancy,
) -> Result<Vec<Result<McpOutput, McpError>>, McpError> {
    if let Some(fm) = ctx
        .shared
        .plan_faults(index, sess.ppa_mut().machine().dim())
    {
        sess.ppa_mut().machine_mut().attach_faults(fm);
    }
    let wave = sess.solve_redundant_with(dests, limits, mode)?;
    let mut outcomes = Vec::with_capacity(wave.lanes.len());
    for voted in wave.lanes {
        if voted.vote.disagreed {
            note_sighting(ctx, index, true);
            if voted.vote.corrected {
                lock(&ctx.shared.metrics).inc("serve.health.vote_corrected", 1);
            }
        }
        outcomes.push(voted.outcome);
    }
    Ok(outcomes)
}

fn supervisor_loop(
    death_rx: Receiver<Supervise>,
    ctx: WorkerCtx,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while let Ok(msg) = death_rx.recv() {
        match msg {
            Supervise::Died => {
                lock(&ctx.shared.metrics).inc("serve.workers_replaced", 1);
                lock(&handles).push(spawn_worker(ctx.clone()));
            }
            Supervise::Benched => {
                lock(&ctx.shared.metrics).inc("serve.health.replacements", 1);
                lock(&handles).push(spawn_worker(ctx.clone()));
            }
            Supervise::Stop => return,
        }
    }
}

/// Fires cancel tokens when their deadlines pass. Exits when every
/// sender (worker contexts) is gone.
fn watchdog_loop(rx: Receiver<(Instant, CancelToken)>) {
    let mut pending: Vec<(Instant, CancelToken)> = Vec::new();
    loop {
        let now = Instant::now();
        pending.retain(|(at, token)| {
            if *at <= now {
                token.cancel();
                false
            } else {
                true
            }
        });
        let wait = pending
            .iter()
            .map(|(at, _)| at.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(entry) => pending.push(entry),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Executes one job to a report: deadline gate, backend routing, the
/// attempt/retry loop, APSP checkpointing, and outcome metrics.
fn run_job(ctx: &WorkerCtx, index: u64, job: QueuedJob, rng: &mut SmallRng) -> JobReport {
    let shared = &ctx.shared;
    let config = &shared.config;
    let deadline = job.spec.deadline.or(config.default_deadline);

    // Cancelled while queued: drop unrun (no machine was built).
    if job.token.is_cancelled() && lock(&shared.client_cancelled).contains(&job.id) {
        return finish(ctx, &job, Err(ServeError::Cancelled), 0, None, false, None);
    }

    // Expired while queued: reject unrun (no machine was built).
    let waited = job.submitted.elapsed();
    if let Some(d) = deadline {
        if waited >= d {
            let mut m = lock(&shared.metrics);
            m.inc("serve.failed", 1);
            m.inc("serve.deadline_exceeded", 1);
            m.inc("serve.expired_in_queue", 1);
            m.observe("serve.latency_us", waited.as_micros() as u64);
            drop(m);
            return JobReport {
                id: job.id,
                outcome: Err(ServeError::DeadlineExpiredInQueue { waited }),
                attempts: 0,
                backend: None,
                latency: waited,
            };
        }
    }

    // Chaos probes panic on purpose — before any lock is held, so the
    // catch_unwind in the worker loop is the only thing that sees it.
    if matches!(job.spec.kind, JobKind::Chaos) {
        panic!("chaos job {}: deliberate worker panic", job.id);
    }

    // Validate a resume document before spending any solve time on it.
    let mut last_flush: Option<Json> = None;
    if let JobKind::Apsp {
        resume_from: Some(doc),
        ..
    } = &job.spec.kind
    {
        match ApspCheckpoint::from_json(doc) {
            Ok(cp) if cp.n() == job.spec.graph.n() => {
                lock(&shared.metrics).inc("serve.resumes", 1);
                last_flush = Some(cp.to_json());
            }
            Ok(cp) => {
                return finish(
                    ctx,
                    &job,
                    Err(ServeError::InvalidResume {
                        reason: format!(
                            "checkpoint is for an {}-vertex graph, job graph has {}",
                            cp.n(),
                            job.spec.graph.n()
                        ),
                    }),
                    0,
                    None,
                    false,
                    None,
                );
            }
            Err(reason) => {
                return finish(
                    ctx,
                    &job,
                    Err(ServeError::InvalidResume { reason }),
                    0,
                    None,
                    false,
                    None,
                );
            }
        }
    }
    let is_apsp = matches!(job.spec.kind, JobKind::Apsp { .. });

    let token = job.token.clone();
    if let Some(d) = deadline {
        let _ = ctx.watchdog_tx.send((job.submitted + d, token.clone()));
    }
    let budget = job.spec.step_budget.or(config.default_step_budget);
    let word_bits = mcp::fit_word_bits(&job.spec.graph).clamp(2, 62);
    let n = job.spec.graph.n();

    // With batching enabled, an APSP campaign retires destinations in
    // wavefronts of up to `max_lanes` per batched solve. Fault-injected
    // campaigns stay on the solo path: transient faults on a wide
    // machine would not reproduce the solo fault pattern.
    let apsp_lanes = match &job.spec.kind {
        JobKind::Apsp { .. } if config.batching.enabled && job.spec.transient_faults.is_none() => {
            Some(config.batching.max_lanes.clamp(1, 64).min(n.max(1)))
        }
        _ => None,
    };

    // Shortest-path jobs run lane-replicated under the configured
    // redundancy mode: the vote replaces the host reference check on
    // the hot path (DMR detects, TMR can correct).
    let redundant_shortest =
        matches!(job.spec.kind, JobKind::Shortest { .. }) && config.redundancy.replicas() > 1;

    let mut attempts = 0u32;
    let mut backend;
    let outcome = loop {
        attempts += 1;
        backend = route_backend(ctx);
        let result = if let Some(lanes) = apsp_lanes {
            attempt_apsp_batched(
                ctx,
                index,
                backend,
                &job.spec,
                &token,
                budget,
                lanes,
                &mut last_flush,
            )
        } else if redundant_shortest {
            attempt_shortest_redundant(ctx, index, backend, &job.spec, &token, budget, attempts)
        } else {
            match (backend, config.word) {
                (BackendChoice::Packed, WordWidth::W64) => attempt_on(
                    ctx,
                    index,
                    Ppa::<PackedBackend>::packed(n).with_word_bits(word_bits),
                    &job.spec,
                    &token,
                    budget,
                    attempts,
                    &mut last_flush,
                ),
                (BackendChoice::Packed, WordWidth::W256) => attempt_on(
                    ctx,
                    index,
                    Ppa::<PackedBackend<W256>>::packed_wide(n).with_word_bits(word_bits),
                    &job.spec,
                    &token,
                    budget,
                    attempts,
                    &mut last_flush,
                ),
                (BackendChoice::Threaded, WordWidth::W64) => attempt_on(
                    ctx,
                    index,
                    Ppa::<ThreadedBackend>::threaded(n, config.threads.max(1))
                        .with_word_bits(word_bits),
                    &job.spec,
                    &token,
                    budget,
                    attempts,
                    &mut last_flush,
                ),
                (BackendChoice::Threaded, WordWidth::W256) => attempt_on(
                    ctx,
                    index,
                    Ppa::<ThreadedBackend<W256>>::threaded_wide(n, config.threads.max(1))
                        .with_word_bits(word_bits),
                    &job.spec,
                    &token,
                    budget,
                    attempts,
                    &mut last_flush,
                ),
                (BackendChoice::Scalar, _) => attempt_on(
                    ctx,
                    index,
                    Ppa::square(n).with_word_bits(word_bits),
                    &job.spec,
                    &token,
                    budget,
                    attempts,
                    &mut last_flush,
                ),
            }
        };
        match result {
            Ok(out) => {
                if backend.is_fast() {
                    lock(&shared.breaker).record_success();
                }
                break Ok(out);
            }
            Err(e) if e.is_cancelled() => {
                // The same token serves the deadline watchdog and client
                // cancels; the client-cancel ledger disambiguates.
                if lock(&shared.client_cancelled).contains(&job.id) {
                    break Err(ServeError::Cancelled);
                }
                break Err(ServeError::DeadlineExceeded);
            }
            Err(e) if e.is_step_budget_exhausted() => {
                break Err(ServeError::StepBudgetExhausted {
                    budget: budget.unwrap_or_default(),
                })
            }
            Err(e) if e.indicates_corruption() => {
                // Vote disagreements were already recorded (with their
                // vote flavor) inside the redundant attempt.
                if !matches!(e, McpError::VoteDisagreement { .. }) {
                    note_sighting(ctx, index, false);
                }
                if backend.is_fast() && lock(&shared.breaker).record_failure() {
                    lock(&shared.metrics).inc("serve.breaker.trips", 1);
                }
                if attempts <= config.retry.max_retries && !token.is_cancelled() {
                    lock(&shared.metrics).inc("serve.retries", 1);
                    thread::sleep(config.retry.backoff(attempts, rng));
                    continue;
                }
                break Err(ServeError::Solver(e));
            }
            Err(e) => break Err(ServeError::Solver(e)),
        }
    };
    finish(
        ctx,
        &job,
        outcome,
        attempts,
        Some(backend),
        is_apsp,
        last_flush,
    )
}

/// Wraps APSP interruptions around their checkpoint, records outcome
/// metrics, and builds the report.
fn finish(
    ctx: &WorkerCtx,
    job: &QueuedJob,
    outcome: Result<JobOutcome, ServeError>,
    attempts: u32,
    backend: Option<BackendChoice>,
    is_apsp: bool,
    last_flush: Option<Json>,
) -> JobReport {
    let outcome = match (outcome, is_apsp, last_flush) {
        (Err(cause), true, Some(checkpoint)) => Err(ServeError::Interrupted {
            checkpoint,
            cause: Box::new(cause),
        }),
        (other, _, _) => other,
    };
    let latency = job.submitted.elapsed();
    let mut m = lock(&ctx.shared.metrics);
    match &outcome {
        Ok(_) => m.inc("serve.completed", 1),
        Err(e) => {
            m.inc("serve.failed", 1);
            let root = match e {
                ServeError::Interrupted { cause, .. } => cause.as_ref(),
                other => other,
            };
            match root {
                ServeError::DeadlineExceeded => m.inc("serve.deadline_exceeded", 1),
                ServeError::StepBudgetExhausted { .. } => m.inc("serve.budget_exhausted", 1),
                ServeError::Cancelled => m.inc("serve.cancelled", 1),
                _ => {}
            }
        }
    }
    m.observe("serve.latency_us", latency.as_micros() as u64);
    drop(m);
    JobReport {
        id: job.id,
        outcome,
        attempts,
        backend,
        latency,
    }
}

/// Picks the backend for the next attempt via the circuit breaker,
/// running the divergence probe when the breaker is half-open.
fn route_backend(ctx: &WorkerCtx) -> BackendChoice {
    let config = &ctx.shared.config;
    let fast = if config.prefer_threaded {
        BackendChoice::Threaded
    } else if config.prefer_packed {
        BackendChoice::Packed
    } else {
        return BackendChoice::Scalar;
    };
    let route = lock(&ctx.shared.breaker).route();
    match route {
        Route::Packed => fast,
        Route::Scalar => {
            lock(&ctx.shared.metrics).inc("serve.breaker.scalar_fallback", 1);
            BackendChoice::Scalar
        }
        Route::ProbeFirst => {
            lock(&ctx.shared.metrics).inc("serve.breaker.probes", 1);
            let passed = divergence_probe(fast, config.threads.max(1), config.word);
            lock(&ctx.shared.breaker).probe_result(passed);
            let mut m = lock(&ctx.shared.metrics);
            if passed {
                m.inc("serve.breaker.probe_pass", 1);
                drop(m);
                fast
            } else {
                m.inc("serve.breaker.probe_fail", 1);
                m.inc("serve.breaker.trips", 1);
                m.inc("serve.breaker.scalar_fallback", 1);
                drop(m);
                BackendChoice::Scalar
            }
        }
    }
}

/// The half-open health check: solve a fixed reference graph on the fast
/// backend under probe and on the scalar reference (fresh, clean
/// machines) and demand bit-identical results — the differential
/// equivalence the test suites assert statically, run live before fast
/// traffic resumes.
fn divergence_probe(fast: BackendChoice, threads: usize, word: WordWidth) -> bool {
    let w = ppa_graph::gen::random_connected(6, 0.5, 9, 0xD1FF);
    let probed = match (fast, word) {
        (BackendChoice::Packed, WordWidth::W64) => {
            McpSession::new_packed(&w).and_then(|mut s| s.solve(0))
        }
        (BackendChoice::Packed, WordWidth::W256) => {
            McpSession::<PackedBackend<W256>>::new_packed_wide(&w).and_then(|mut s| s.solve(0))
        }
        (BackendChoice::Threaded, WordWidth::W64) => {
            McpSession::new_threaded(&w, threads).and_then(|mut s| s.solve(0))
        }
        (BackendChoice::Threaded, WordWidth::W256) => {
            McpSession::<ThreadedBackend<W256>>::new_threaded_wide(&w, threads)
                .and_then(|mut s| s.solve(0))
        }
        (BackendChoice::Scalar, _) => return true,
    };
    let scalar = McpSession::new(&w).and_then(|mut s| s.solve(0));
    match (probed, scalar) {
        (Ok(a), Ok(b)) => a.sow == b.sow && a.ptn == b.ptn && a.iterations == b.iterations,
        _ => false,
    }
}

/// One solve attempt on a fresh runtime: arms the cancel token, step
/// budget, and fault injection, then dispatches on the job kind. APSP
/// campaigns restart from the last *flushed* checkpoint and flush every
/// `checkpoint_every` completed destinations.
/// Host-side verification of a widest-path result, mirroring what
/// [`McpSession::solve_verified`] does for shortest paths: a silently
/// corrupted run must surface as corruption-class [`McpError`] so the
/// retry/breaker machinery sees it.
///
/// Two invariants together pin the result exactly. The capacity vector
/// must be a Bellman fixed point (`cap[i] = max_j min(edge(i,j),
/// cap[j])` with the destination unlimited), which bounds every entry
/// from *below* by the true optimum; and walking the returned pointer
/// tree from each reachable vertex must hit the destination within `n`
/// hops with a bottleneck equal to the claimed capacity, which bounds it
/// from *above* (a claimed width is only real if some concrete path
/// achieves it). A spurious fixed point inflated by a cycle fails the
/// walk; a deflated tree fails the fixed point.
fn verify_widest(w: &WeightMatrix, out: &WidestOutput) -> Result<(), McpError> {
    let n = w.n();
    let d = out.dest;
    let edge = |i: usize, j: usize| -> Weight {
        let e = w.get(i, j);
        if e == INF {
            0
        } else {
            e
        }
    };
    let cap_to = |j: usize| -> Weight {
        if j == d {
            Weight::MAX
        } else {
            out.cap[j]
        }
    };
    for i in 0..n {
        if i == d {
            continue;
        }
        let best = (0..n)
            .filter(|&j| j != i)
            .map(|j| edge(i, j).min(cap_to(j)))
            .max()
            .unwrap_or(0);
        if out.cap[i] != best {
            return Err(McpError::InvariantViolation {
                invariant: "widest capacities are not a Bellman fixed point",
            });
        }
        if out.cap[i] > 0 {
            let mut v = i;
            let mut bottleneck = Weight::MAX;
            for _ in 0..n {
                let next = out.ptn[v];
                if next >= n {
                    return Err(McpError::InvariantViolation {
                        invariant: "widest pointer tree escapes the vertex set",
                    });
                }
                bottleneck = bottleneck.min(edge(v, next));
                v = next;
                if v == d {
                    break;
                }
            }
            if v != d || bottleneck != out.cap[i] {
                return Err(McpError::InvariantViolation {
                    invariant: "widest pointer tree does not achieve the claimed capacity",
                });
            }
        }
    }
    Ok(())
}

/// One redundant shortest-path attempt: the job's graph is replicated
/// into `replicas` disjoint lanes of one wide session, solved
/// vote-only (no sequential reference on the hot path), and the voted
/// outcome of the single destination is the job's outcome. TMR with
/// correction can succeed despite a corrupted replica; an unresolved
/// disagreement surfaces as corruption-class
/// [`McpError::VoteDisagreement`] and flows into the ordinary
/// retry/breaker machinery.
fn attempt_shortest_redundant(
    ctx: &WorkerCtx,
    index: u64,
    backend: BackendChoice,
    spec: &JobSpec,
    token: &CancelToken,
    budget: Option<u64>,
    attempt: u32,
) -> Result<JobOutcome, McpError> {
    let mode = ctx.shared.config.redundancy;
    let dest = match spec.kind {
        JobKind::Shortest { dest } => dest,
        _ => {
            return Err(McpError::InvariantViolation {
                invariant: "only shortest-path jobs run redundantly",
            })
        }
    };
    let graphs = replicate(&spec.graph, mode.replicas());
    let threads = ctx.shared.config.threads.max(1);
    match (backend, ctx.shared.config.word) {
        (BackendChoice::Packed, WordWidth::W64) => drive_redundant_solo(
            ctx,
            index,
            BatchSession::new_packed(&graphs)?,
            dest,
            spec,
            token,
            budget,
            attempt,
            mode,
        ),
        (BackendChoice::Packed, WordWidth::W256) => drive_redundant_solo(
            ctx,
            index,
            BatchSession::<PackedBackend<W256>>::new_packed_wide(&graphs)?,
            dest,
            spec,
            token,
            budget,
            attempt,
            mode,
        ),
        (BackendChoice::Threaded, WordWidth::W64) => drive_redundant_solo(
            ctx,
            index,
            BatchSession::new_threaded(&graphs, threads)?,
            dest,
            spec,
            token,
            budget,
            attempt,
            mode,
        ),
        (BackendChoice::Threaded, WordWidth::W256) => drive_redundant_solo(
            ctx,
            index,
            BatchSession::<ThreadedBackend<W256>>::new_threaded_wide(&graphs, threads)?,
            dest,
            spec,
            token,
            budget,
            attempt,
            mode,
        ),
        (BackendChoice::Scalar, _) => drive_redundant_solo(
            ctx,
            index,
            BatchSession::new(&graphs)?,
            dest,
            spec,
            token,
            budget,
            attempt,
            mode,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_redundant_solo<E: Executor>(
    ctx: &WorkerCtx,
    index: u64,
    mut sess: BatchSession<E>,
    dest: usize,
    spec: &JobSpec,
    token: &CancelToken,
    budget: Option<u64>,
    attempt: u32,
    mode: Redundancy,
) -> Result<JobOutcome, McpError> {
    if let Some(fm) = ctx
        .shared
        .plan_faults(index, sess.ppa_mut().machine().dim())
    {
        sess.ppa_mut().machine_mut().attach_faults(fm);
    }
    if let Some((p, seed)) = spec.transient_faults {
        sess.ppa_mut()
            .machine_mut()
            .attach_transient_faults(TransientFaults::new(p, seed.wrapping_add(attempt as u64)));
    }
    // The budget is per destination (solo-equivalent semantics), so a
    // redundant run keeps the caller's budget meaning unchanged.
    let limits = [LaneLimit {
        step_budget: budget,
        cancel: Some(token.clone()),
    }];
    let wave = sess.solve_redundant_with(&[dest], &limits, mode)?;
    let voted = wave
        .lanes
        .into_iter()
        .next()
        .ok_or(McpError::InvariantViolation {
            invariant: "a redundant wave returns one voted lane per destination",
        })?;
    if voted.vote.disagreed {
        note_sighting(ctx, index, true);
        if voted.vote.corrected {
            lock(&ctx.shared.metrics).inc("serve.health.vote_corrected", 1);
        }
    }
    Ok(JobOutcome::Shortest(voted.outcome?))
}

#[allow(clippy::too_many_arguments)]
fn attempt_on<E: Executor>(
    ctx: &WorkerCtx,
    index: u64,
    mut ppa: Ppa<E>,
    spec: &JobSpec,
    token: &CancelToken,
    budget: Option<u64>,
    attempt: u32,
    last_flush: &mut Option<Json>,
) -> Result<JobOutcome, McpError> {
    let metrics = &ctx.shared.metrics;
    ppa.attach_cancel(token.clone());
    if let Some(b) = budget {
        ppa.limit_steps(b);
    }
    if let Some(fm) = ctx.shared.plan_faults(index, ppa.machine().dim()) {
        ppa.machine_mut().attach_faults(fm);
    }
    if let Some((p, seed)) = spec.transient_faults {
        // Salting by attempt keeps faults transient: a retry sees a
        // different (still deterministic) fault pattern.
        ppa.machine_mut()
            .attach_transient_faults(TransientFaults::new(p, seed.wrapping_add(attempt as u64)));
    }
    match &spec.kind {
        JobKind::Shortest { dest } => {
            let mut session = McpSession::from_ppa(ppa, &spec.graph)?;
            Ok(JobOutcome::Shortest(session.solve_verified(*dest)?))
        }
        JobKind::Widest { dest } => {
            let out = widest_path(&mut ppa, &spec.graph, *dest)?;
            verify_widest(&spec.graph, &out)?;
            Ok(JobOutcome::Widest(out))
        }
        JobKind::Apsp {
            checkpoint_every, ..
        } => {
            let every = (*checkpoint_every).max(1);
            // A flushed checkpoint always round-trips; degrade to a
            // typed error rather than panicking the worker if that
            // invariant is ever broken.
            let mut cp = match last_flush.as_ref() {
                Some(doc) => {
                    ApspCheckpoint::from_json(doc).map_err(|_| McpError::InvariantViolation {
                        invariant: "a flushed APSP checkpoint failed to round-trip",
                    })?
                }
                None => ApspCheckpoint::new(spec.graph.n()),
            };
            let mut session = McpSession::from_ppa(ppa, &spec.graph)?;
            while !cp.is_complete() {
                let out = session.solve_verified(cp.next_dest())?;
                cp.record(&out);
                if cp.next_dest() % every == 0 {
                    *last_flush = Some(cp.to_json());
                    lock(metrics).inc("serve.checkpoints", 1);
                }
            }
            let doc = cp.to_json();
            *last_flush = Some(doc.clone());
            Ok(JobOutcome::Apsp(doc))
        }
        JobKind::Chaos => unreachable!("chaos jobs panic before the attempt loop"),
    }
}

/// One batched APSP attempt: the campaign's destinations are retired in
/// wavefronts of `lanes` per [`BatchSession`] solve instead of one at a
/// time. Checkpoints are recorded in destination order and flushed at
/// exactly the same destination boundaries as the solo campaign, so an
/// interrupted-and-resumed batched campaign produces a byte-identical
/// final checkpoint (outputs per destination are bit-identical anyway).
#[allow(clippy::too_many_arguments)]
fn attempt_apsp_batched(
    ctx: &WorkerCtx,
    index: u64,
    backend: BackendChoice,
    spec: &JobSpec,
    token: &CancelToken,
    budget: Option<u64>,
    lanes: usize,
    last_flush: &mut Option<Json>,
) -> Result<JobOutcome, McpError> {
    let graphs = replicate(&spec.graph, lanes);
    let threads = ctx.shared.config.threads.max(1);
    match (backend, ctx.shared.config.word) {
        (BackendChoice::Packed, WordWidth::W64) => drive_apsp_batch(
            ctx,
            index,
            BatchSession::new_packed(&graphs)?,
            spec,
            token,
            budget,
            last_flush,
        ),
        (BackendChoice::Packed, WordWidth::W256) => drive_apsp_batch(
            ctx,
            index,
            BatchSession::<PackedBackend<W256>>::new_packed_wide(&graphs)?,
            spec,
            token,
            budget,
            last_flush,
        ),
        (BackendChoice::Threaded, WordWidth::W64) => drive_apsp_batch(
            ctx,
            index,
            BatchSession::new_threaded(&graphs, threads)?,
            spec,
            token,
            budget,
            last_flush,
        ),
        (BackendChoice::Threaded, WordWidth::W256) => drive_apsp_batch(
            ctx,
            index,
            BatchSession::<ThreadedBackend<W256>>::new_threaded_wide(&graphs, threads)?,
            spec,
            token,
            budget,
            last_flush,
        ),
        (BackendChoice::Scalar, _) => drive_apsp_batch(
            ctx,
            index,
            BatchSession::new(&graphs)?,
            spec,
            token,
            budget,
            last_flush,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_apsp_batch<E: Executor>(
    ctx: &WorkerCtx,
    index: u64,
    mut batch: BatchSession<E>,
    spec: &JobSpec,
    token: &CancelToken,
    budget: Option<u64>,
    last_flush: &mut Option<Json>,
) -> Result<JobOutcome, McpError> {
    let metrics = &ctx.shared.metrics;
    // The campaign is one job: deadline/cancel and the step budget apply
    // machine-wide, exactly like the solo campaign's session machine.
    batch.ppa_mut().attach_cancel(token.clone());
    if let Some(b) = budget {
        batch.ppa_mut().limit_steps(b);
    }
    if let Some(fm) = ctx
        .shared
        .plan_faults(index, batch.ppa_mut().machine().dim())
    {
        batch.ppa_mut().machine_mut().attach_faults(fm);
    }
    let every = match &spec.kind {
        JobKind::Apsp {
            checkpoint_every, ..
        } => (*checkpoint_every).max(1),
        _ => unreachable!("batched campaigns are APSP jobs"),
    };
    let n = spec.graph.n();
    let lanes = batch.lanes();
    let mut cp = match last_flush.as_ref() {
        Some(doc) => ApspCheckpoint::from_json(doc).map_err(|_| McpError::InvariantViolation {
            invariant: "a flushed APSP checkpoint failed to round-trip",
        })?,
        None => ApspCheckpoint::new(n),
    };
    while !cp.is_complete() {
        let start = cp.next_dest();
        // Ragged final wave: padding lanes re-solve `n - 1` and are
        // discarded, mirroring `BatchSession::all_pairs`.
        let dests: Vec<usize> = (0..lanes).map(|l| (start + l).min(n - 1)).collect();
        let wave = batch.solve_verified(&dests)?;
        for (l, out) in wave.into_iter().enumerate() {
            if start + l >= n {
                break;
            }
            cp.record(&out?);
            if cp.next_dest() % every == 0 {
                *last_flush = Some(cp.to_json());
                lock(metrics).inc("serve.checkpoints", 1);
            }
        }
    }
    let doc = cp.to_json();
    *last_flush = Some(doc.clone());
    Ok(JobOutcome::Apsp(doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppa_graph::gen;

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            retry: RetryPolicy {
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_micros(500),
                ..RetryPolicy::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn mixed_batch_solves_to_reference_answers() {
        let w = gen::random_connected(7, 0.4, 9, 11);
        let svc = SolveService::start(quick_config());
        let shortest = svc
            .submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 3 }))
            .unwrap();
        let widest = svc
            .submit(JobSpec::new(w.clone(), JobKind::Widest { dest: 2 }))
            .unwrap();
        let short_report = shortest.wait();
        let wide_report = widest.wait();
        let metrics = svc.shutdown();

        let want_short = McpSession::new(&w).unwrap().solve_verified(3).unwrap();
        match short_report.outcome.unwrap() {
            JobOutcome::Shortest(out) => {
                assert_eq!(out.sow, want_short.sow);
                assert_eq!(out.ptn, want_short.ptn);
            }
            other => panic!("wrong outcome kind: {other:?}"),
        }
        let mut ppa = Ppa::square(7).with_word_bits(mcp::fit_word_bits(&w).clamp(2, 62));
        let want_wide = widest_path(&mut ppa, &w, 2).unwrap();
        match wide_report.outcome.unwrap() {
            JobOutcome::Widest(out) => assert_eq!(out.cap, want_wide.cap),
            other => panic!("wrong outcome kind: {other:?}"),
        }
        assert_eq!(metrics.counter("serve.accepted"), 2);
        assert_eq!(metrics.counter("serve.completed"), 2);
        assert_eq!(metrics.counter("serve.failed"), 0);
        assert_eq!(metrics.histogram("serve.latency_us").unwrap().count, 2);
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let w = gen::random_connected(10, 0.4, 9, 5);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..quick_config()
        });
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..6 {
            match svc.submit(JobSpec::new(
                w.clone(),
                JobKind::Apsp {
                    resume_from: None,
                    checkpoint_every: 4,
                },
            )) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Rejected { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        assert!(rejected > 0, "one worker + capacity 1 must shed load");
        for t in tickets {
            assert!(t.wait().outcome.is_ok());
        }
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.rejected_queue_full"), rejected);
        assert_eq!(
            metrics.counter("serve.accepted") + rejected,
            metrics.counter("serve.submitted")
        );
    }

    #[test]
    fn step_budget_failure_is_typed_and_not_retried() {
        let w = gen::random_connected(8, 0.4, 9, 2);
        let svc = SolveService::start(quick_config());
        let mut spec = JobSpec::new(w, JobKind::Shortest { dest: 0 });
        spec.step_budget = Some(10);
        let report = svc.submit(spec).unwrap().wait();
        assert_eq!(
            report.outcome.unwrap_err(),
            ServeError::StepBudgetExhausted { budget: 10 }
        );
        assert_eq!(report.attempts, 1, "resource limits are not retried");
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.budget_exhausted"), 1);
        assert_eq!(metrics.counter("serve.retries"), 0);
    }

    #[test]
    fn deadline_cancels_cooperatively() {
        let w = gen::random_connected(32, 0.4, 9, 8);
        let svc = SolveService::start(quick_config());
        let mut spec = JobSpec::new(
            w,
            JobKind::Apsp {
                resume_from: None,
                checkpoint_every: 1,
            },
        );
        spec.deadline = Some(Duration::from_micros(500));
        let report = svc.submit(spec).unwrap().wait();
        let err = report.outcome.unwrap_err();
        let root = match &err {
            ServeError::Interrupted { cause, .. } => cause.as_ref(),
            other => other,
        };
        assert!(
            matches!(
                root,
                ServeError::DeadlineExceeded | ServeError::DeadlineExpiredInQueue { .. }
            ),
            "expected a deadline-class failure, got {err}"
        );
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.deadline_exceeded"), 1);
        assert_eq!(metrics.counter("serve.failed"), 1);
    }

    #[test]
    fn client_cancel_stops_a_running_job_with_a_typed_error() {
        let w = gen::random_connected(32, 0.4, 9, 8);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            ..quick_config()
        });
        let ticket = svc
            .submit(JobSpec::new(
                w,
                JobKind::Apsp {
                    resume_from: None,
                    checkpoint_every: 1,
                },
            ))
            .unwrap();
        // Wait until the worker has picked the campaign up, then cancel.
        for _ in 0..400 {
            if !svc.introspect().inflight.is_empty() {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        assert!(svc.cancel(ticket.id()), "a running job must be known");
        let report = ticket.wait();
        let err = report.outcome.unwrap_err();
        let root = match &err {
            ServeError::Interrupted { cause, .. } => cause.as_ref(),
            other => other,
        };
        assert!(
            matches!(root, ServeError::Cancelled),
            "expected a client-cancel failure, got {err}"
        );
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.cancelled"), 1);
        assert_eq!(metrics.counter("serve.cancel_requests"), 1);
        assert_eq!(metrics.counter("serve.deadline_exceeded"), 0);
    }

    #[test]
    fn client_cancel_drops_a_queued_job_unrun() {
        let w = gen::random_connected(24, 0.4, 9, 9);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..quick_config()
        });
        // One long campaign occupies the single worker; the next job
        // waits in the queue where the cancel must reach it.
        let busy = svc
            .submit(JobSpec::new(
                w.clone(),
                JobKind::Apsp {
                    resume_from: None,
                    checkpoint_every: 1,
                },
            ))
            .unwrap();
        let queued = svc
            .submit(JobSpec::new(w, JobKind::Shortest { dest: 0 }))
            .unwrap();
        assert!(svc.cancel(queued.id()), "a queued job must be known");
        let report = queued.wait();
        assert_eq!(report.outcome.unwrap_err(), ServeError::Cancelled);
        assert_eq!(report.attempts, 0, "cancelled in queue: never started");
        assert!(busy.wait().outcome.is_ok());
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.cancelled"), 1);
    }

    #[test]
    fn cancel_of_a_finished_or_unknown_job_is_a_no_op() {
        let w = gen::ring(5);
        let svc = SolveService::start(quick_config());
        let ticket = svc
            .submit(JobSpec::new(w, JobKind::Shortest { dest: 1 }))
            .unwrap();
        let id = ticket.id();
        assert!(ticket.wait().outcome.is_ok());
        assert!(!svc.cancel(id), "a reported job is no longer cancellable");
        assert!(!svc.cancel(9999), "an unknown id is not cancellable");
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.cancelled"), 0);
        assert_eq!(metrics.counter("serve.cancel_requests"), 2);
        assert_eq!(metrics.counter("serve.completed"), 1);
    }

    #[test]
    fn chaos_panic_is_isolated_and_worker_replaced() {
        let w = gen::ring(5);
        let svc = SolveService::start(quick_config());
        let report = svc
            .submit(JobSpec::new(w.clone(), JobKind::Chaos))
            .unwrap()
            .wait();
        match report.outcome.unwrap_err() {
            ServeError::WorkerPanicked { message } => {
                assert!(message.contains("chaos"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other}"),
        }
        // The pool still serves after the panic.
        let after = svc
            .submit(JobSpec::new(w, JobKind::Shortest { dest: 1 }))
            .unwrap()
            .wait();
        assert!(after.outcome.is_ok(), "service must survive a worker panic");
        // The supervisor replaces the dead worker asynchronously.
        let mut replaced = 0;
        for _ in 0..200 {
            replaced = svc.metrics().counter("serve.workers_replaced");
            if replaced == 1 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(replaced, 1);
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.worker_panics"), 1);
    }

    #[test]
    fn corruption_is_retried_with_backoff_until_exhausted() {
        let w = gen::random_connected(6, 0.5, 9, 4);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            prefer_packed: false, // keep the breaker out of this test
            ..quick_config()
        });
        let mut spec = JobSpec::new(w, JobKind::Shortest { dest: 0 });
        spec.transient_faults = Some((1.0, 99)); // every transfer corrupted
        let report = svc.submit(spec).unwrap().wait();
        assert!(matches!(report.outcome.unwrap_err(), ServeError::Solver(_)));
        let want_attempts = 1 + RetryPolicy::default().max_retries;
        assert_eq!(report.attempts, want_attempts);
        let metrics = svc.shutdown();
        assert_eq!(
            metrics.counter("serve.retries"),
            u64::from(RetryPolicy::default().max_retries)
        );
    }

    #[test]
    fn breaker_trips_to_scalar_then_probe_recovers_packed() {
        let w = gen::random_connected(6, 0.5, 9, 4);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            prefer_packed: true,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_jobs: 1,
            },
            ..quick_config()
        });
        // Attempt 1+2 fail packed (trips at threshold 2); attempt 3 routes
        // scalar (burning the 1-job cooldown -> HalfOpen) and also fails.
        let mut faulty = JobSpec::new(w.clone(), JobKind::Shortest { dest: 0 });
        faulty.transient_faults = Some((1.0, 7));
        let report = svc.submit(faulty).unwrap().wait();
        assert!(report.outcome.is_err());
        assert_eq!(report.backend, Some(BackendChoice::Scalar));
        // Clean job: half-open -> divergence probe passes -> packed again.
        let clean = svc
            .submit(JobSpec::new(w, JobKind::Shortest { dest: 0 }))
            .unwrap()
            .wait();
        assert!(clean.outcome.is_ok());
        assert_eq!(clean.backend, Some(BackendChoice::Packed));
        assert_eq!(svc.breaker_state(), BreakerState::Closed);
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.breaker.trips"), 1);
        assert_eq!(metrics.counter("serve.breaker.scalar_fallback"), 1);
        assert_eq!(metrics.counter("serve.breaker.probes"), 1);
        assert_eq!(metrics.counter("serve.breaker.probe_pass"), 1);
    }

    #[test]
    fn breaker_downgrades_threaded_to_scalar_and_probe_recovers() {
        let w = gen::random_connected(6, 0.5, 9, 4);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            prefer_threaded: true,
            threads: 3,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_jobs: 1,
            },
            ..quick_config()
        });
        // Attempts 1+2 fail on the threaded backend (tripping at
        // threshold 2); attempt 3 routes scalar — the breaker guards the
        // threaded fast path exactly as it guards packed.
        let mut faulty = JobSpec::new(w.clone(), JobKind::Shortest { dest: 0 });
        faulty.transient_faults = Some((1.0, 7));
        let report = svc.submit(faulty).unwrap().wait();
        assert!(report.outcome.is_err());
        assert_eq!(report.backend, Some(BackendChoice::Scalar));
        assert_ne!(svc.breaker_state(), BreakerState::Closed);
        // Clean job: half-open -> threaded-vs-scalar divergence probe
        // passes -> threaded traffic resumes.
        let clean = svc
            .submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 0 }))
            .unwrap()
            .wait();
        assert!(clean.outcome.is_ok());
        assert_eq!(clean.backend, Some(BackendChoice::Threaded));
        assert_eq!(svc.breaker_state(), BreakerState::Closed);
        // The threaded answer that came back is the scalar answer: the
        // soak campaign's silent_wrong: 0 invariant has teeth here too.
        let want = McpSession::new(&w).unwrap().solve_verified(0).unwrap();
        match clean.outcome.unwrap() {
            JobOutcome::Shortest(out) => {
                assert_eq!(out.sow, want.sow);
                assert_eq!(out.ptn, want.ptn);
            }
            other => panic!("wrong outcome kind: {other:?}"),
        }
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.breaker.trips"), 1);
        assert_eq!(metrics.counter("serve.breaker.scalar_fallback"), 1);
        assert_eq!(metrics.counter("serve.breaker.probe_pass"), 1);
    }

    #[test]
    fn apsp_interrupts_with_checkpoint_and_resumes_byte_identically() {
        let w = gen::random_connected(6, 0.5, 9, 31);

        // Reference: the uninterrupted campaign document.
        let svc = SolveService::start(quick_config());
        let full = svc
            .submit(JobSpec::new(
                w.clone(),
                JobKind::Apsp {
                    resume_from: None,
                    checkpoint_every: 1,
                },
            ))
            .unwrap()
            .wait();
        let JobOutcome::Apsp(reference) = full.outcome.unwrap() else {
            panic!("expected an APSP outcome");
        };

        // Measure the full campaign's step cost, then grant half of it.
        let mut session = McpSession::new(&w).unwrap();
        session.ppa_mut().limit_steps(1_000_000);
        session.all_pairs().unwrap();
        let used = 1_000_000 - session.ppa_mut().steps_remaining().unwrap();

        let mut partial = JobSpec::new(
            w.clone(),
            JobKind::Apsp {
                resume_from: None,
                checkpoint_every: 1,
            },
        );
        partial.step_budget = Some(used / 2);
        let interrupted = svc.submit(partial).unwrap().wait();
        let ServeError::Interrupted { checkpoint, cause } = interrupted.outcome.unwrap_err() else {
            panic!("half the steps must interrupt mid-campaign");
        };
        assert!(matches!(*cause, ServeError::StepBudgetExhausted { .. }));
        let flushed = ApspCheckpoint::from_json(&checkpoint).unwrap();
        assert!(
            flushed.next_dest() > 0,
            "some destination must have flushed"
        );
        assert!(!flushed.is_complete());

        // Resume from the flushed checkpoint; no budget this time.
        let resumed = svc
            .submit(JobSpec::new(
                w,
                JobKind::Apsp {
                    resume_from: Some(checkpoint),
                    checkpoint_every: 1,
                },
            ))
            .unwrap()
            .wait();
        let JobOutcome::Apsp(resumed_doc) = resumed.outcome.unwrap() else {
            panic!("resumed campaign must complete");
        };
        assert_eq!(
            resumed_doc.to_string_compact(),
            reference.to_string_compact(),
            "resumed campaign must be byte-identical to the uninterrupted one"
        );
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.resumes"), 1);
        assert!(metrics.counter("serve.checkpoints") > 0);
    }

    #[test]
    fn invalid_resume_document_is_a_typed_error() {
        let svc = SolveService::start(quick_config());
        let report = svc
            .submit(JobSpec::new(
                gen::ring(4),
                JobKind::Apsp {
                    resume_from: Some(Json::Null),
                    checkpoint_every: 1,
                },
            ))
            .unwrap()
            .wait();
        assert!(matches!(
            report.outcome.unwrap_err(),
            ServeError::InvalidResume { .. }
        ));
        svc.shutdown();
    }

    #[test]
    fn drain_reports_every_accepted_job() {
        let w = gen::random_connected(6, 0.4, 9, 13);
        let svc = SolveService::start(ServeConfig {
            workers: 2,
            queue_capacity: 32,
            ..quick_config()
        });
        let tickets: Vec<_> = (0..10)
            .map(|d| {
                svc.submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: d % 6 }))
                    .unwrap()
            })
            .collect();
        let metrics = svc.shutdown(); // drain first, then collect
        for t in tickets {
            assert!(t.wait().outcome.is_ok(), "drained job lost its report");
        }
        assert_eq!(metrics.counter("serve.accepted"), 10);
        assert_eq!(metrics.counter("serve.completed"), 10);
    }

    #[test]
    fn introspection_reconciles_on_an_idle_service() {
        let w = gen::random_connected(6, 0.4, 9, 17);
        let svc = SolveService::start(quick_config());
        let tickets: Vec<_> = (0..4)
            .map(|d| {
                svc.submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: d % 6 }))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert!(t.wait().outcome.is_ok());
        }
        let snap = svc.introspect();
        assert_eq!(snap.queue_depth, 0, "all tickets reported: queue empty");
        assert!(snap.inflight.is_empty(), "no job can still be running");
        assert!(snap.accepting);
        assert_eq!(snap.workers.len(), 2, "quick_config starts two workers");
        assert!(snap.workers.iter().all(|w| w.job.is_none()));
        assert_eq!(snap.breaker.state, "closed");
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.workers_replaced, 0);
        assert_eq!(snap.metrics.counter("serve.accepted"), 4);
        assert_eq!(snap.metrics.counter("serve.completed"), 4);
        svc.shutdown();
    }

    #[test]
    fn live_snapshot_round_trips_exactly_and_sees_running_jobs() {
        let w = gen::random_connected(24, 0.4, 9, 23);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            queue_capacity: 8,
            ..quick_config()
        });
        let mut spec = JobSpec::new(
            w,
            JobKind::Apsp {
                resume_from: None,
                checkpoint_every: 1,
            },
        );
        spec.deadline = Some(Duration::from_secs(60));
        let ticket = svc.submit(spec).unwrap();
        // Poll until the single worker has picked the job up.
        let mut seen_running = None;
        for _ in 0..400 {
            let snap = svc.introspect();
            if let Some(job) = snap.inflight.first() {
                seen_running = Some(snap.clone());
                let _ = job;
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        let snap = seen_running.expect("a 24-vertex APSP must be observable in flight");
        let job = &snap.inflight[0];
        assert_eq!(job.id, ticket.id());
        assert_eq!(job.kind, "apsp");
        assert_eq!(job.deadline_us, Some(60_000_000));
        let running = snap
            .workers
            .iter()
            .find(|v| v.job == Some(job.id))
            .expect("the worker executing the job must be marked running");
        assert_eq!(running.index, job.worker);
        // The live snapshot round-trips exactly, bytes and all.
        let doc = snap.to_json();
        let back = Introspection::from_json(&doc).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json().to_string_compact(), doc.to_string_compact());
        assert!(ticket.wait().outcome.is_ok());
        svc.shutdown();
    }

    #[test]
    fn introspection_tracks_panic_replacement_and_drain() {
        let svc = SolveService::start(quick_config());
        let report = svc
            .submit(JobSpec::new(gen::ring(5), JobKind::Chaos))
            .unwrap()
            .wait();
        assert!(matches!(
            report.outcome.unwrap_err(),
            ServeError::WorkerPanicked { .. }
        ));
        // Wait for the supervisor to install the replacement worker.
        let mut snap = svc.introspect();
        for _ in 0..200 {
            snap = svc.introspect();
            if snap.workers_replaced == 1 && snap.workers.len() == 2 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(snap.workers_replaced, 1);
        assert_eq!(snap.workers.len(), 2, "replacement registered");
        assert!(
            snap.workers.iter().any(|w| w.index >= 2),
            "the replacement gets a fresh index: {:?}",
            snap.workers
        );
        assert!(snap.inflight.is_empty(), "the chaos job is gone");
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.worker_panics"), 1);
    }

    fn fast_scrub() -> ScrubConfig {
        ScrubConfig {
            enabled: true,
            idle_after: Duration::from_micros(200),
            min_interval: Duration::from_micros(100),
            duty_cycle: 1.0,
            probe_n: 5,
            benched_pause: Duration::from_micros(200),
        }
    }

    #[test]
    fn idle_workers_scrub_between_jobs_and_stay_healthy() {
        let svc = SolveService::start(ServeConfig {
            workers: 2,
            scrubbing: fast_scrub(),
            ..quick_config()
        });
        // Let the idle pool sweep a few times.
        let mut metrics = svc.metrics();
        for _ in 0..500 {
            metrics = svc.metrics();
            if metrics.counter("serve.scrub.sweeps") >= 3 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        assert!(
            metrics.counter("serve.scrub.sweeps") >= 3,
            "pool never scrubbed"
        );
        assert_eq!(
            metrics.counter("serve.scrub.clean"),
            metrics.counter("serve.scrub.sweeps"),
            "clean machines must sweep clean"
        );
        assert!(metrics.counter("serve.scrub.steps") > 0, "BIST costs steps");
        let snap = svc.introspect();
        assert!(
            snap.health.iter().all(|h| h.state == "healthy"),
            "{:?}",
            snap.health
        );
        assert_eq!(snap.quarantine_leaks, 0);
        // Scrubbing never blocks serving: jobs still solve to reference.
        let w = gen::random_connected(6, 0.4, 9, 31);
        let report = svc
            .submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 1 }))
            .unwrap()
            .wait();
        let want = McpSession::new(&w).unwrap().solve_verified(1).unwrap();
        match report.outcome.unwrap() {
            JobOutcome::Shortest(out) => assert_eq!(out.sow, want.sow),
            other => panic!("wrong outcome kind: {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn a_planted_fault_is_quarantined_benched_and_readmitted() {
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            scrubbing: fast_scrub(),
            // Worker 0's machines carry three stuck switches until two
            // faulty machines have been built — then the "repair" lands
            // and re-admission can be earned.
            fault_plan: MachineFaultPlan::default().with(
                0,
                FaultSpec {
                    count: 3,
                    seed: 0xFA117,
                    heal_after_builds: Some(2),
                },
            ),
            ..quick_config()
        });
        // The full drill: scrub localizes the fault -> quarantine (+ a
        // replacement worker) -> clean sweep -> probation -> clean
        // probes -> readmitted.
        let mut metrics = svc.metrics();
        for _ in 0..2000 {
            metrics = svc.metrics();
            if metrics.counter("serve.health.readmitted") >= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        assert!(
            metrics.counter("serve.health.readmitted") >= 1,
            "worker 0 was never readmitted: {metrics:?}"
        );
        assert!(metrics.counter("serve.scrub.faulty") >= 1);
        assert!(metrics.counter("serve.health.quarantined") >= 1);
        assert!(
            metrics.counter("serve.health.replacements") >= 1,
            "a benched machine must be replaced to keep capacity"
        );
        assert!(metrics.counter("serve.health.probes") >= 1);
        assert_eq!(
            metrics.counter("serve.health.quarantine_leaks"),
            0,
            "no job may ever reach a benched machine"
        );
        let snap = svc.introspect();
        let rec = snap
            .health
            .iter()
            .find(|h| h.worker == 0)
            .expect("worker 0 keeps its ledger record");
        assert_eq!(rec.state, "healthy", "{rec:?}");
        assert!(rec.bist_faults >= 1);
        // The healed, readmitted pool serves correctly.
        let w = gen::random_connected(6, 0.4, 9, 37);
        let report = svc
            .submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 0 }))
            .unwrap()
            .wait();
        assert!(report.outcome.is_ok());
        svc.shutdown();
    }

    #[test]
    fn redundant_shortest_solves_are_bit_identical_to_the_reference() {
        for mode in [Redundancy::Dmr, Redundancy::Tmr { correct: true }] {
            let w = gen::random_connected(6, 0.4, 9, 41);
            let svc = SolveService::start(ServeConfig {
                workers: 1,
                redundancy: mode,
                ..quick_config()
            });
            let report = svc
                .submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 2 }))
                .unwrap()
                .wait();
            let want = McpSession::new(&w).unwrap().solve_verified(2).unwrap();
            match report.outcome.unwrap() {
                JobOutcome::Shortest(out) => {
                    assert_eq!(out.sow, want.sow, "{mode}");
                    assert_eq!(out.ptn, want.ptn, "{mode}");
                    assert_eq!(out.iterations, want.iterations, "{mode}");
                }
                other => panic!("wrong outcome kind: {other:?}"),
            }
            let metrics = svc.shutdown();
            assert_eq!(metrics.counter("serve.completed"), 1);
            assert_eq!(metrics.counter("serve.health.vote_disagreements"), 0);
        }
    }

    #[test]
    fn redundant_batched_waves_match_the_reference() {
        let w = gen::random_connected(6, 0.4, 9, 43);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            redundancy: Redundancy::Tmr { correct: true },
            batching: BatchingConfig {
                enabled: true,
                max_lanes: 9,
                hold_window: Duration::from_millis(5),
            },
            ..quick_config()
        });
        let tickets: Vec<_> = (0..4)
            .map(|d| {
                svc.submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: d % 6 }))
                    .unwrap()
            })
            .collect();
        for (d, t) in tickets.into_iter().enumerate() {
            let want = McpSession::new(&w).unwrap().solve_verified(d % 6).unwrap();
            match t.wait().outcome.unwrap() {
                JobOutcome::Shortest(out) => {
                    assert_eq!(out.sow, want.sow);
                    assert_eq!(out.ptn, want.ptn);
                }
                other => panic!("wrong outcome kind: {other:?}"),
            }
        }
        let metrics = svc.shutdown();
        assert_eq!(metrics.counter("serve.completed"), 4);
        assert_eq!(metrics.counter("serve.health.vote_disagreements"), 0);
    }

    #[test]
    fn a_faulty_redundant_pool_never_returns_a_silent_wrong() {
        // A permanently faulty worker under DMR: every job either
        // returns the bit-identical reference answer or a typed
        // corruption-class failure — never a silently wrong result.
        let w = gen::random_connected(6, 0.4, 9, 47);
        let svc = SolveService::start(ServeConfig {
            workers: 1,
            redundancy: Redundancy::Dmr,
            fault_plan: MachineFaultPlan::default().with(
                0,
                FaultSpec {
                    count: 2,
                    seed: 0xBAD,
                    heal_after_builds: None,
                },
            ),
            ..quick_config()
        });
        let want = McpSession::new(&w).unwrap().solve_verified(1).unwrap();
        let mut disagreements_seen = false;
        for _ in 0..4 {
            let report = svc
                .submit(JobSpec::new(w.clone(), JobKind::Shortest { dest: 1 }))
                .unwrap()
                .wait();
            match report.outcome {
                Ok(JobOutcome::Shortest(out)) => {
                    assert_eq!(out.sow, want.sow, "silent wrong accepted");
                    assert_eq!(out.ptn, want.ptn, "silent wrong accepted");
                }
                Ok(other) => panic!("wrong outcome kind: {other:?}"),
                Err(ServeError::Solver(e)) => {
                    assert!(e.indicates_corruption(), "untyped failure: {e}");
                }
                Err(other) => panic!("unexpected serve error: {other}"),
            }
        }
        let metrics = svc.shutdown();
        if metrics.counter("serve.health.vote_disagreements") > 0 {
            disagreements_seen = true;
            assert!(metrics.counter("serve.health.sightings") > 0);
        }
        // The planted faults sit on real job machines; whether they
        // disturb this workload is seed-dependent, but when they do the
        // ledger must have seen it.
        let _ = disagreements_seen;
    }
}
