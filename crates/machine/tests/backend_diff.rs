//! Differential suite: [`PackedBackend`] must be bit-identical to
//! [`ScalarBackend`] — same results *and* same step counts — over
//! arbitrary switch patterns, masks, directions and word widths, with and
//! without fault injection. The backends share the issue side of the
//! machine, so any divergence here is an execution-side bug.

use ppa_machine::{Direction, FaultMap, Machine, Plane, ScalarBackend, TransientFaults};
use proptest::prelude::*;

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

fn bool_plane(rows: usize, cols: usize) -> impl Strategy<Value = Plane<bool>> {
    proptest::collection::vec(any::<bool>(), rows * cols)
        .prop_map(move |v| Plane::from_vec(ppa_machine::Dim::new(rows, cols), v))
}

fn value_plane(rows: usize, cols: usize) -> impl Strategy<Value = Plane<i64>> {
    proptest::collection::vec(0i64..=1023, rows * cols)
        .prop_map(move |v| Plane::from_vec(ppa_machine::Dim::new(rows, cols), v))
}

// The first property runs one full bit-serial scan step sequence (enable,
// bit extraction, vote, wired-OR, knockout, head resolution) on both
// backends and asserts every intermediate mask, every result, every error,
// and the step report agree.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scan_primitives_are_bit_identical(
        // Non-square dims crossing the 64-bit word boundary are the
        // interesting packing cases, so sizes run past 8x8.
        args in (1usize..=9, 1usize..=11).prop_flat_map(|(r, c)| {
            (Just((r, c)), value_plane(r, c), bool_plane(r, c), bool_plane(r, c))
        }),
        dir in direction(),
        j in 0u32..10,
        keep_low in any::<bool>(),
    ) {
        let ((rows, cols), src, open, sel) = args;
        let mut s = Machine::<ScalarBackend>::new(rows, cols);
        let mut p = Machine::new_packed(rows, cols);

        let l_s = s.pack_mask(&open).unwrap();
        let l_p = p.pack_mask(&open).unwrap();

        let en_s = s.load_mask(&sel).unwrap();
        let en_p = p.load_mask(&sel).unwrap();
        prop_assert_eq!(s.unpack_mask(&en_s), p.unpack_mask(&en_p));

        let bit_s = s.mask_bit(&src, j).unwrap();
        let bit_p = p.mask_bit(&src, j).unwrap();
        prop_assert_eq!(s.unpack_mask(&bit_s), p.unpack_mask(&bit_p));

        let votes_s = s.mask_vote(&en_s, &bit_s, keep_low);
        let votes_p = p.mask_vote(&en_p, &bit_p, keep_low);
        prop_assert_eq!(s.unpack_mask(&votes_s), p.unpack_mask(&votes_p));

        let present_s = s.mask_bus_or(&votes_s, dir, &l_s).unwrap();
        let present_p = p.mask_bus_or(&votes_p, dir, &l_p).unwrap();
        prop_assert_eq!(s.unpack_mask(&present_s), p.unpack_mask(&present_p));

        let out_s = s.mask_knockout(&en_s, &present_s, &bit_s, keep_low);
        let out_p = p.mask_knockout(&en_p, &present_p, &bit_p, keep_low);
        prop_assert_eq!(s.unpack_mask(&out_s), p.unpack_mask(&out_p));
        prop_assert_eq!(s.mask_count(&out_s), p.mask_count(&out_p));

        // Head resolution: the Open mask may leave lines driverless, so
        // errors must agree exactly too.
        let head_s = s.broadcast_open(&src, dir, &out_s);
        let head_p = p.broadcast_open(&src, dir, &out_p);
        match (head_s, head_p) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
        }

        // Identical instruction streams must cost identical step reports.
        prop_assert_eq!(s.controller().report(), p.controller().report());
    }

    #[test]
    fn plane_level_bus_ops_are_bit_identical(
        args in (2usize..=9, 2usize..=9).prop_flat_map(|(r, c)| {
            (Just((r, c)), value_plane(r, c), bool_plane(r, c), bool_plane(r, c))
        }),
        dir in direction(),
    ) {
        let ((rows, cols), src, open, vals) = args;
        let mut s = Machine::<ScalarBackend>::new(rows, cols);
        let mut p = Machine::new_packed(rows, cols);

        match (s.broadcast(&src, dir, &open), p.broadcast(&src, dir, &open)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
        }
        let or_s = s.bus_or(&vals, dir, &open).unwrap();
        let or_p = p.bus_or(&vals, dir, &open).unwrap();
        prop_assert_eq!(or_s, or_p);

        let sh_s = s.shift(&src, dir, -1).unwrap();
        let sh_p = p.shift(&src, dir, -1).unwrap();
        prop_assert_eq!(sh_s, sh_p);
        let shw_s = s.shift_wrapping(&src, dir).unwrap();
        let shw_p = p.shift_wrapping(&src, dir).unwrap();
        prop_assert_eq!(shw_s, shw_p);

        prop_assert_eq!(s.global_or(&vals).unwrap(), p.global_or(&vals).unwrap());
        prop_assert_eq!(s.controller().report(), p.controller().report());
    }

    #[test]
    fn fault_injection_bites_identically(
        args in (3usize..=8).prop_flat_map(|n| {
            (Just(n), value_plane(n, n), bool_plane(n, n), bool_plane(n, n))
        }),
        dir in direction(),
        k in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let (n, src, open, vals) = args;
        let mut s = Machine::<ScalarBackend>::new(n, n);
        let mut p = Machine::new_packed(n, n);
        let fm = FaultMap::random(s.dim(), k, seed);
        s.attach_faults(fm.clone());
        p.attach_faults(fm);
        // Same per-transfer glitch probability, same RNG seed: the two
        // machines must sample the same transient sequence because the
        // backends issue the same bus instructions in the same order.
        s.attach_transient_faults(TransientFaults::new(0.2, seed ^ 0xdead));
        p.attach_transient_faults(TransientFaults::new(0.2, seed ^ 0xdead));

        for round in 0..3 {
            let d = if round % 2 == 0 { dir } else { dir.opposite() };
            match (s.broadcast(&src, d, &open), p.broadcast(&src, d, &open)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a, b),
            }
            let or_s = s.bus_or(&vals, d, &open).unwrap();
            let or_p = p.bus_or(&vals, d, &open).unwrap();
            prop_assert_eq!(or_s, or_p);

            // The masked path routes through the same fault model.
            let lm_s = s.pack_mask(&open).unwrap();
            let lm_p = p.pack_mask(&open).unwrap();
            let vm_s = s.load_mask(&vals).unwrap();
            let vm_p = p.load_mask(&vals).unwrap();
            let mo_s = s.mask_bus_or(&vm_s, d, &lm_s).unwrap();
            let mo_p = p.mask_bus_or(&vm_p, d, &lm_p).unwrap();
            prop_assert_eq!(s.unpack_mask(&mo_s), p.unpack_mask(&mo_p));
        }
        prop_assert_eq!(s.controller().report(), p.controller().report());
    }
}
