//! Property tests of the observability layer: under *arbitrary* interleavings
//! of instructions, named spans, and phase labels, the trace a sink observes
//! must stay balanced and its span-aggregated step totals must reconcile
//! exactly with the controller's own [`StepReport`] — the invariant behind
//! the `report profile` experiment's cross-checked table.

use ppa_machine::{Controller, Op, StepReport};
use ppa_obs::{validate_chrome_trace, ChromeTraceSink, MemorySink};
use proptest::prelude::*;

/// Phase labels must be `&'static str`, so the generator draws from a pool.
const PHASES: [&str; 3] = ["stmt 5", "stmt 11", "stmt 18"];

/// Decodes one draw into an action against the controller. The encoding
/// weights plain instructions heaviest (like real programs), but still
/// exercises span pushes/pops — including spurious pops past the bottom —
/// and phase changes, including redundant ones.
fn apply(c: &mut Controller, b: u32) {
    match b % 12 {
        0..=4 => c.record(Op::ALL[(b % 5) as usize]),
        5 => c.record(Op::Alu),
        6 => c.enter_span(&format!("span[{}]", b / 12)),
        7 => c.exit_span(),
        8 | 9 => c.set_phase(Some(PHASES[(b / 12) as usize % PHASES.len()])),
        10 => c.set_phase(None),
        _ => c.record_labeled(Op::BusOr, Some("explicit")),
    }
}

fn actions() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..256, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_totals_reconcile_with_step_report(seq in actions()) {
        let sink = MemorySink::new();
        let mut c = Controller::new();
        c.install_sink(sink.clone());
        c.enable_metrics();
        for &b in &seq {
            apply(&mut c, b);
        }
        let report = c.report();
        let metrics = c.take_metrics();
        let _ = c.take_sink();

        // The sink saw a balanced trace with every step accounted for.
        prop_assert!(sink.balanced());
        prop_assert_eq!(sink.total_steps(), report.total());
        let span_sum: u64 = sink.span_totals().iter().map(|(_, n)| n).sum();
        prop_assert_eq!(span_sum, report.total());

        // The metrics counters are an exact per-class mirror of the report.
        for op in Op::ALL {
            prop_assert_eq!(metrics.counter(op.metric_name()), report.count(op));
        }
        prop_assert_eq!(metrics.counter("steps.total"), report.total());
    }

    #[test]
    fn chrome_export_is_well_formed_for_any_sequence(seq in actions()) {
        let sink = ChromeTraceSink::new();
        let mut c = Controller::new();
        c.install_sink(sink.clone());
        for &b in &seq {
            apply(&mut c, b);
        }
        let final_step = c.total_steps();
        let _ = c.take_sink();
        let doc = sink.finish(final_step);
        prop_assert!(
            validate_chrome_trace(&doc).is_ok(),
            "{:?}",
            validate_chrome_trace(&doc)
        );
    }

    #[test]
    fn checked_since_agrees_with_since_on_any_split(
        seq in actions(),
        split in 0usize..300,
    ) {
        let mut c = Controller::new();
        let mut earlier = StepReport::default();
        for (i, &b) in seq.iter().enumerate() {
            if i == split {
                earlier = c.report();
            }
            apply(&mut c, b);
        }
        let later = c.report();
        // A snapshot taken mid-run is always a prefix of the final report.
        let diff = later.checked_since(&earlier);
        prop_assert!(diff.is_some());
        prop_assert_eq!(diff.unwrap(), later.since(&earlier));
        prop_assert_eq!(later.checked_since(&later), Some(StepReport::default()));
        // And the reverse direction only succeeds when nothing happened
        // in between.
        let reverse = earlier.checked_since(&later);
        prop_assert_eq!(reverse.is_some(), earlier == later);
    }
}
