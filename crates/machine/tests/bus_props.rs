//! Property tests of the machine layer: bus cluster laws, shift algebra,
//! engine equivalence, and fault-map consistency.

#![allow(clippy::needless_range_loop)]
use ppa_machine::bus::{broadcast, bus_or, cluster_heads, shift, shift_wrapping};
use ppa_machine::faults::{FaultMap, SwitchFault};
use ppa_machine::{Coord, Dim, Direction, ExecMode, Plane};
use proptest::prelude::*;

const SEQ: ExecMode = ExecMode::Sequential;

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

fn grid(n: usize) -> impl Strategy<Value = (Vec<i64>, Vec<bool>)> {
    (
        proptest::collection::vec(-100i64..100, n * n),
        proptest::collection::vec(any::<bool>(), n * n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cluster_heads_are_open_and_self_heading((_, mask) in grid(6), dir in direction()) {
        let dim = Dim::square(6);
        let open = Plane::from_vec(dim, mask);
        match cluster_heads(dim, dir, &open) {
            Err(lines) => {
                // Every reported line really has no open node.
                for line in lines {
                    for pos in 0..dim.line_len(dir.axis()) {
                        let idx = dim.line_index(dir, line, pos);
                        prop_assert!(!open.as_slice()[idx]);
                    }
                }
            }
            Ok(heads) => {
                for (i, &h) in heads.iter().enumerate() {
                    // Heads are open nodes, and open nodes head themselves.
                    prop_assert!(open.as_slice()[h]);
                    if open.as_slice()[i] {
                        prop_assert_eq!(h, i);
                    }
                    // Heads are fixed points of the head map.
                    prop_assert_eq!(heads[h], h);
                    // A node and its head share the same bus line.
                    let (a, b) = (dim.coord(i), dim.coord(h));
                    match dir.axis() {
                        ppa_machine::Axis::Row => prop_assert_eq!(a.row, b.row),
                        ppa_machine::Axis::Col => prop_assert_eq!(a.col, b.col),
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_gathers_head_values((vals, mut mask) in grid(5), dir in direction()) {
        let dim = Dim::square(5);
        // Guarantee drivers on every line.
        for line in 0..dim.lines(dir.axis()) {
            let idx = dim.line_index(dir, line, 0);
            mask[idx] = true;
        }
        let open = Plane::from_vec(dim, mask);
        let src = Plane::from_vec(dim, vals);
        let heads = cluster_heads(dim, dir, &open).unwrap();
        let got = broadcast(SEQ, dim, &src, dir, &open).unwrap();
        for i in 0..dim.len() {
            prop_assert_eq!(got.as_slice()[i], src.as_slice()[heads[i]]);
        }
    }

    #[test]
    fn bus_or_is_monotone((_, mask) in grid(5), (flags_a, _) in grid(5), dir in direction()) {
        let dim = Dim::square(5);
        let open = Plane::from_vec(dim, mask);
        let a: Vec<bool> = flags_a.iter().map(|v| v % 3 == 0).collect();
        // b is a superset of a.
        let b: Vec<bool> = a.iter().enumerate().map(|(i, &x)| x || i % 7 == 0).collect();
        let oa = bus_or(SEQ, dim, &Plane::from_vec(dim, a), dir, &open).unwrap();
        let ob = bus_or(SEQ, dim, &Plane::from_vec(dim, b), dir, &open).unwrap();
        for i in 0..dim.len() {
            prop_assert!(!oa.as_slice()[i] || ob.as_slice()[i], "monotonicity at {}", i);
        }
    }

    #[test]
    fn shift_then_opposite_restores_interior((vals, _) in grid(6), dir in direction()) {
        let dim = Dim::square(6);
        let src = Plane::from_vec(dim, vals);
        let fwd = shift(SEQ, dim, &src, dir, i64::MIN).unwrap();
        let back = shift(SEQ, dim, &fwd, dir.opposite(), i64::MIN).unwrap();
        for (c, &v) in src.enumerate() {
            // Interior = nodes whose downstream neighbour exists.
            if c.neighbor(dir, dim).is_some() {
                prop_assert_eq!(*back.get(c), v, "at {}", c);
            }
        }
    }

    #[test]
    fn wrapping_shift_has_order_n((vals, _) in grid(4), dir in direction()) {
        let dim = Dim::square(4);
        let src = Plane::from_vec(dim, vals);
        let mut p = src.clone();
        for _ in 0..4 {
            p = shift_wrapping(SEQ, dim, &p, dir).unwrap();
        }
        prop_assert_eq!(p, src);
    }

    #[test]
    fn threaded_engine_matches_sequential_everywhere(
        (vals, mut mask) in grid(8),
        dir in direction(),
        threads in 2usize..5,
    ) {
        let dim = Dim::square(8);
        for line in 0..dim.lines(dir.axis()) {
            let idx = dim.line_index(dir, line, 0);
            mask[idx] = true;
        }
        let open = Plane::from_vec(dim, mask);
        let src = Plane::from_vec(dim, vals);
        let mode = ExecMode::threaded(threads);
        prop_assert_eq!(
            broadcast(SEQ, dim, &src, dir, &open).unwrap(),
            broadcast(mode, dim, &src, dir, &open).unwrap()
        );
        let flags = src.map_free(|&v| v > 0);
        prop_assert_eq!(
            bus_or(SEQ, dim, &flags, dir, &open).unwrap(),
            bus_or(mode, dim, &flags, dir, &open).unwrap()
        );
        prop_assert_eq!(
            shift(SEQ, dim, &src, dir, 0).unwrap(),
            shift(mode, dim, &src, dir, 0).unwrap()
        );
    }

    #[test]
    fn fault_apply_is_idempotent_and_resolves_distortion(
        (_, mask) in grid(5),
        fr in 0usize..5,
        fc in 0usize..5,
        stuck_open in any::<bool>(),
    ) {
        let dim = Dim::square(5);
        let intended = Plane::from_vec(dim, mask);
        let mut fm = FaultMap::new();
        let fault = if stuck_open { SwitchFault::StuckOpen } else { SwitchFault::StuckShort };
        fm.inject(Coord::new(fr, fc), fault);
        let once = fm.apply(&intended);
        let twice = fm.apply(&once);
        prop_assert_eq!(&once, &twice, "apply must be idempotent");
        // After applying, the map no longer distorts.
        prop_assert!(!fm.distorts(&once));
        // And distortion <=> the effective mask differs from the intent.
        prop_assert_eq!(fm.distorts(&intended), once != intended);
    }
}
