//! Switch-box fault injection, transient glitches, and the runtime BIST.
//!
//! The PPA's practicality argument (paper reference \[2\]) rests on its
//! switch boxes being simple enough to implement — and simple hardware
//! still fails. This module models the two stuck-at failure modes of a
//! switch box, a seeded transient (one-shot) glitch process, and the
//! built-in self-test sweep that a bring-up team would run: *which bus
//! patterns still work with a given fault map, and does the algorithm
//! layer notice when one doesn't?*
//!
//! * [`SwitchFault::StuckShort`] — the switch can no longer cut the bus:
//!   the node is forced to propagate and can never inject. A cluster
//!   head planted on such a node silently disappears, so downstream
//!   nodes read the *previous* head's value.
//! * [`SwitchFault::StuckOpen`] — the switch can no longer close: the
//!   node always injects, splitting every line it sits on.
//!
//! [`FaultMap::apply`] rewrites an intended Open mask into the effective
//! one. A map attached to a live [`Machine`](crate::Machine) (via
//! [`Machine::attach_faults`](crate::Machine::attach_faults)) intercepts
//! every switch-configuring instruction, so stuck faults corrupt real
//! algorithm runs; [`TransientFaults`] adds a deterministic per-transfer
//! probability of a one-shot bit flip. [`bist_sweep`] lists the
//! executable patterns behind
//! [`Machine::self_test`](crate::Machine::self_test), which runs them on
//! the live machine and *localizes* disagreeing switch boxes.

use crate::geometry::{Coord, Dim, Direction};
use crate::plane::Plane;
use crate::StepReport;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A stuck-at switch-box fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchFault {
    /// The switch is stuck in the Short configuration (cannot inject).
    StuckShort,
    /// The switch is stuck in the Open configuration (always injects).
    StuckOpen,
}

impl fmt::Display for SwitchFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchFault::StuckShort => f.write_str("stuck-short"),
            SwitchFault::StuckOpen => f.write_str("stuck-open"),
        }
    }
}

/// A set of faulty switch boxes.
///
/// Backed by a `Vec` kept sorted by [`Coord`], so bulk campaigns stay
/// `O(k log k)` and [`FaultMap::fault_at`] is a binary search rather than
/// a linear scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMap {
    /// Sorted by `Coord` (row-major order), at most one fault per node.
    faults: Vec<(Coord, SwitchFault)>,
}

impl FaultMap {
    /// An empty (healthy) map.
    pub fn new() -> Self {
        FaultMap::default()
    }

    /// A reproducible random map: exactly `count` distinct faulty switch
    /// boxes inside `dim`, each stuck Short or Open with equal
    /// probability, drawn deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `count > dim.len()` — there are not enough switch boxes.
    pub fn random(dim: Dim, count: usize, seed: u64) -> Self {
        assert!(
            count <= dim.len(),
            "cannot place {count} faults on a {dim} array"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut map = FaultMap::new();
        while map.len() < count {
            let at = dim.coord(rng.gen_range(0..dim.len()));
            let fault = if rng.gen_bool(0.5) {
                SwitchFault::StuckShort
            } else {
                SwitchFault::StuckOpen
            };
            // Re-drawing an occupied node replaces it; keep drawing until
            // `count` distinct nodes are hit (terminates: count <= len).
            if map.fault_at(at).is_none() {
                map.inject(at, fault);
            }
        }
        map
    }

    /// Marks the switch box at `at` as faulty. A later fault at the same
    /// coordinate replaces the earlier one.
    pub fn inject(&mut self, at: Coord, fault: SwitchFault) -> &mut Self {
        match self.faults.binary_search_by_key(&at, |&(c, _)| c) {
            Ok(i) => self.faults[i] = (at, fault),
            Err(i) => self.faults.insert(i, (at, fault)),
        }
        self
    }

    /// The fault at `at`, if any.
    pub fn fault_at(&self, at: Coord) -> Option<SwitchFault> {
        self.faults
            .binary_search_by_key(&at, |&(c, _)| c)
            .ok()
            .map(|i| self.faults[i].1)
    }

    /// Number of faulty switch boxes.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the map is healthy.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faulty switch boxes, sorted by coordinate.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, SwitchFault)> + '_ {
        self.faults.iter().copied()
    }

    /// Row indices touched by at least one fault (sorted, deduplicated).
    pub fn faulty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.faults.iter().map(|(c, _)| c.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Column indices touched by at least one fault (sorted, deduplicated).
    pub fn faulty_cols(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.faults.iter().map(|(c, _)| c.col).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// The faults whose column lies inside `cols` (sorted by
    /// coordinate) — the physical column band a lane-replicated vote
    /// indicts when one replica disagrees (see `LaneLayout::band`).
    /// Targeted BIST localization intersects its sweep verdict with
    /// this window to name the switch boxes behind a vote disagreement.
    pub fn faults_in_cols(&self, cols: std::ops::Range<usize>) -> Vec<(Coord, SwitchFault)> {
        self.faults
            .iter()
            .filter(|(c, _)| cols.contains(&c.col))
            .copied()
            .collect()
    }

    /// Rewrites an intended Open mask into the mask the faulty hardware
    /// actually realizes.
    pub fn apply(&self, intended: &Plane<bool>) -> Plane<bool> {
        let mut effective = intended.clone();
        for &(c, fault) in &self.faults {
            if intended.dim().contains(c) {
                effective.set(
                    c,
                    match fault {
                        SwitchFault::StuckShort => false,
                        SwitchFault::StuckOpen => true,
                    },
                );
            }
        }
        effective
    }

    /// Whether this fault map changes the effect of an instruction that
    /// would configure the switches as `intended` — i.e. whether any
    /// fault disagrees with the intended setting at its location.
    pub fn distorts(&self, intended: &Plane<bool>) -> bool {
        self.faults.iter().any(|&(c, fault)| {
            intended.dim().contains(c)
                && match fault {
                    SwitchFault::StuckShort => *intended.get(c),
                    SwitchFault::StuckOpen => !*intended.get(c),
                }
        })
    }

    /// The coordinates whose intended configuration the map overrides.
    pub fn distorted_nodes(&self, intended: &Plane<bool>) -> Vec<Coord> {
        self.faults
            .iter()
            .filter(|&&(c, fault)| {
                intended.dim().contains(c)
                    && match fault {
                        SwitchFault::StuckShort => *intended.get(c),
                        SwitchFault::StuckOpen => !*intended.get(c),
                    }
            })
            .map(|&(c, _)| c)
            .collect()
    }
}

/// A seeded transient-fault process: on every bus transfer, with
/// probability `per_transfer_prob`, a single uniformly chosen switch box
/// flips its configuration for *that transfer only* (a one-shot glitch,
/// as opposed to the permanent stuck-at faults of [`FaultMap`]).
///
/// The process is deterministic given the seed and the sequence of
/// transfers, so fault campaigns replay exactly.
#[derive(Debug, Clone)]
pub struct TransientFaults {
    per_transfer_prob: f64,
    rng: SmallRng,
}

impl TransientFaults {
    /// A glitch process flipping one switch per transfer with the given
    /// probability.
    ///
    /// # Panics
    /// Panics unless `0.0 <= per_transfer_prob <= 1.0`.
    pub fn new(per_transfer_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&per_transfer_prob),
            "transient fault probability must be in [0, 1]"
        );
        TransientFaults {
            per_transfer_prob,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The per-transfer glitch probability.
    pub fn probability(&self) -> f64 {
        self.per_transfer_prob
    }

    /// Draws the glitch (if any) for the next bus transfer: the
    /// coordinate whose Open bit flips for this one transfer.
    pub fn sample(&mut self, dim: Dim) -> Option<Coord> {
        if self.rng.gen_bool(self.per_transfer_prob) {
            Some(dim.coord(self.rng.gen_range(0..dim.len())))
        } else {
            None
        }
    }
}

/// One executable step of the BIST sweep: broadcast a known source plane
/// with `open` in `dir` and compare the readback against the healthy
/// expectation.
#[derive(Debug, Clone)]
pub struct BistPattern {
    /// Human-readable pattern name (for reports).
    pub name: &'static str,
    /// Data-movement direction of the test broadcast.
    pub dir: Direction,
    /// Intended Open mask.
    pub open: Plane<bool>,
}

/// The passive two-pattern sweep: for an array of shape `dim`, a set of
/// Open masks that together make every switch box both inject and
/// propagate — any single stuck-at fault *distorts* at least one pattern
/// (in the [`FaultMap::distorts`] sense). Retained for mask-level
/// coverage arguments; the executable sweep is [`bist_sweep`].
pub fn bist_patterns(dim: Dim) -> Vec<Plane<bool>> {
    vec![
        // Everyone opens: catches every StuckShort.
        Plane::filled(dim, true),
        // No one opens: catches every StuckOpen.
        Plane::filled(dim, false),
    ]
}

/// The executable BIST sweep run by
/// [`Machine::self_test`](crate::Machine::self_test).
///
/// Three patterns per axis:
///
/// 1. **all-Open** — every node injects; a stuck-Short node reads its
///    cyclic upstream neighbour instead of itself, localizing the fault
///    at the mismatching coordinate;
/// 2. **single head at line position 0** and
/// 3. **single head at line position 1** (arrays with lines of length
///    ≥ 2) — every line is one cluster; a stuck-Open node splits its
///    line and, because the test source is the unique flat-index plane,
///    the wrong value *names* the rogue driver. The two head positions
///    ensure every node is intended-Short in at least one pattern.
///
/// Any single stuck-at fault disagrees with at least one pattern, so the
/// sweep both detects and localizes it.
pub fn bist_sweep(dim: Dim) -> Vec<BistPattern> {
    let mut sweep = vec![BistPattern {
        name: "all-open (east)",
        dir: Direction::East,
        open: Plane::filled(dim, true),
    }];
    sweep.push(BistPattern {
        name: "heads col 0 (east)",
        dir: Direction::East,
        open: Plane::from_fn(dim, |c| c.col == 0),
    });
    if dim.cols > 1 {
        sweep.push(BistPattern {
            name: "heads col 1 (east)",
            dir: Direction::East,
            open: Plane::from_fn(dim, |c| c.col == 1),
        });
    }
    sweep.push(BistPattern {
        name: "all-open (south)",
        dir: Direction::South,
        open: Plane::filled(dim, true),
    });
    sweep.push(BistPattern {
        name: "heads row 0 (south)",
        dir: Direction::South,
        open: Plane::from_fn(dim, |c| c.row == 0),
    });
    if dim.rows > 1 {
        sweep.push(BistPattern {
            name: "heads row 1 (south)",
            dir: Direction::South,
            open: Plane::from_fn(dim, |c| c.row == 1),
        });
    }
    sweep
}

/// Outcome of one [`Machine::self_test`](crate::Machine::self_test) run:
/// the switch boxes whose observed behaviour disagreed with their
/// intended configuration, plus the cost of finding out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Localized faults, sorted by coordinate. The inferred stuck-at
    /// kind is exact for any single fault per bus cluster; overlapping
    /// faults are still *detected* but may be attributed to a neighbour.
    pub located: Vec<(Coord, SwitchFault)>,
    /// Number of BIST patterns executed.
    pub patterns_run: usize,
    /// Controller steps the self-test consumed.
    pub steps: StepReport,
}

impl FaultReport {
    /// Whether the sweep found no disagreeing switch box.
    pub fn is_healthy(&self) -> bool {
        self.located.is_empty()
    }

    /// The located fault coordinates, sorted.
    pub fn coords(&self) -> Vec<Coord> {
        self.located.iter().map(|&(c, _)| c).collect()
    }

    /// Row indices touched by located faults (sorted, deduplicated).
    pub fn faulty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.located.iter().map(|(c, _)| c.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Column indices touched by located faults (sorted, deduplicated).
    pub fn faulty_cols(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.located.iter().map(|(c, _)| c.col).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Records one located fault, keeping the list sorted and unique by
    /// coordinate (first attribution wins).
    pub(crate) fn note(&mut self, at: Coord, fault: SwitchFault) {
        if let Err(i) = self.located.binary_search_by_key(&at, |&(c, _)| c) {
            self.located.insert(i, (at, fault));
        }
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_healthy() {
            write!(
                f,
                "self-test: healthy ({} patterns, {} steps)",
                self.patterns_run,
                self.steps.total()
            )
        } else {
            write!(
                f,
                "self-test: {} faulty switch box(es) [",
                self.located.len()
            )?;
            for (i, (c, k)) in self.located.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "({},{}) {k}", c.row, c.col)?;
            }
            write!(
                f,
                "] ({} patterns, {} steps)",
                self.patterns_run,
                self.steps.total()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus;
    use crate::engine::ExecMode;

    fn dim() -> Dim {
        Dim::square(4)
    }

    #[test]
    fn inject_and_query() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 2), SwitchFault::StuckOpen);
        assert_eq!(fm.fault_at(Coord::new(1, 2)), Some(SwitchFault::StuckOpen));
        assert_eq!(fm.fault_at(Coord::new(0, 0)), None);
        assert_eq!(fm.len(), 1);
        // Re-injection replaces.
        fm.inject(Coord::new(1, 2), SwitchFault::StuckShort);
        assert_eq!(fm.fault_at(Coord::new(1, 2)), Some(SwitchFault::StuckShort));
        assert_eq!(fm.len(), 1);
    }

    #[test]
    fn bulk_injection_stays_sorted_and_unique() {
        let mut fm = FaultMap::new();
        // Inject in reverse row-major order; the map must stay sorted.
        for idx in (0..16).rev() {
            fm.inject(dim().coord(idx), SwitchFault::StuckOpen);
        }
        assert_eq!(fm.len(), 16);
        let coords: Vec<Coord> = fm.iter().map(|(c, _)| c).collect();
        let mut sorted = coords.clone();
        sorted.sort();
        assert_eq!(coords, sorted);
        for idx in 0..16 {
            assert!(fm.fault_at(dim().coord(idx)).is_some());
        }
    }

    #[test]
    fn random_maps_are_reproducible_and_distinct() {
        let a = FaultMap::random(dim(), 5, 42);
        let b = FaultMap::random(dim(), 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = FaultMap::random(dim(), 5, 43);
        assert_ne!(a, c, "different seeds should differ (16 choose 5 maps)");
        // Saturating the array is allowed.
        let full = FaultMap::random(dim(), 16, 7);
        assert_eq!(full.len(), 16);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn random_rejects_overfull() {
        let _ = FaultMap::random(dim(), 17, 0);
    }

    #[test]
    fn faulty_rows_and_cols_dedupe() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 2), SwitchFault::StuckOpen)
            .inject(Coord::new(1, 3), SwitchFault::StuckShort)
            .inject(Coord::new(3, 2), SwitchFault::StuckOpen);
        assert_eq!(fm.faulty_rows(), vec![1, 3]);
        assert_eq!(fm.faulty_cols(), vec![2, 3]);
    }

    #[test]
    fn faults_in_cols_windows_a_single_fault_map() {
        // A lone fault lands in exactly one band of a 3-lane n=4 layout.
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(2, 5), SwitchFault::StuckOpen);
        assert_eq!(
            fm.faults_in_cols(4..8),
            vec![(Coord::new(2, 5), SwitchFault::StuckOpen)]
        );
        assert!(fm.faults_in_cols(0..4).is_empty());
        assert!(fm.faults_in_cols(8..12).is_empty());
    }

    #[test]
    fn faults_in_cols_windows_a_seeded_multi_fault_map() {
        let wide = Dim::new(4, 12);
        let fm = FaultMap::random(wide, 7, 0x5eed);
        let mut seen = 0usize;
        for band in [0..4usize, 4..8, 8..12] {
            let in_band = fm.faults_in_cols(band.clone());
            seen += in_band.len();
            // Exactly the map's faults whose column is in the window,
            // in the map's own (sorted) order.
            let expect: Vec<_> = fm.iter().filter(|(c, _)| band.contains(&c.col)).collect();
            assert_eq!(in_band, expect);
        }
        assert_eq!(seen, fm.len(), "the three bands partition the array");
        assert!(fm.faults_in_cols(12..16).is_empty());
    }

    #[test]
    fn apply_overrides_intended_mask() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 0), SwitchFault::StuckShort)
            .inject(Coord::new(2, 2), SwitchFault::StuckOpen);
        let intended = Plane::from_fn(dim(), |c| c.col == 0);
        let effective = fm.apply(&intended);
        assert!(!*effective.get(Coord::new(0, 0)), "stuck-short wins");
        assert!(*effective.get(Coord::new(2, 2)), "stuck-open wins");
        assert!(
            *effective.get(Coord::new(1, 0)),
            "healthy nodes keep intent"
        );
    }

    #[test]
    fn distortion_detection_is_exact() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 1), SwitchFault::StuckOpen);
        // A mask that already opens (1,1) is NOT distorted.
        let agrees = Plane::from_fn(dim(), |c| c.row == 1);
        assert!(!fm.distorts(&agrees));
        // A mask that shorts (1,1) is distorted.
        let disagrees = Plane::from_fn(dim(), |c| c.row == 0);
        assert!(fm.distorts(&disagrees));
        assert_eq!(fm.distorted_nodes(&disagrees), vec![Coord::new(1, 1)]);
    }

    #[test]
    fn stuck_short_swallows_a_cluster_head() {
        // Intended: heads at columns 0 and 2 (East movement). The head at
        // (0,2) is stuck Short, so row 0 becomes a single cluster driven
        // by column 0.
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 2), SwitchFault::StuckShort);
        let intended = Plane::from_fn(dim(), |c| c.col == 0 || c.col == 2);
        let effective = fm.apply(&intended);
        let src = Plane::from_fn(dim(), |c| c.col as i64);
        let healthy = bus::broadcast(
            ExecMode::Sequential,
            dim(),
            &src,
            Direction::East,
            &intended,
        )
        .unwrap();
        let faulty = bus::broadcast(
            ExecMode::Sequential,
            dim(),
            &src,
            Direction::East,
            &effective,
        )
        .unwrap();
        assert_eq!(healthy.row(0), &[0, 0, 2, 2]);
        assert_eq!(faulty.row(0), &[0, 0, 0, 0], "row 0 lost its second head");
        assert_eq!(faulty.row(1), healthy.row(1), "other rows unaffected");
    }

    #[test]
    fn stuck_open_splits_a_line() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 2), SwitchFault::StuckOpen);
        let intended = Plane::from_fn(dim(), |c| c.col == 0);
        let effective = fm.apply(&intended);
        let src = Plane::from_fn(dim(), |c| (c.row * 10 + c.col) as i64);
        let faulty = bus::broadcast(
            ExecMode::Sequential,
            dim(),
            &src,
            Direction::East,
            &effective,
        )
        .unwrap();
        // Row 1 now has heads at cols 0 and 2.
        assert_eq!(faulty.row(1), &[10, 10, 12, 12]);
    }

    #[test]
    fn bist_patterns_catch_any_single_fault() {
        let patterns = bist_patterns(dim());
        for r in 0..4 {
            for c in 0..4 {
                for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                    let mut fm = FaultMap::new();
                    fm.inject(Coord::new(r, c), fault);
                    assert!(
                        patterns.iter().any(|p| fm.distorts(p)),
                        "fault {fault:?} at ({r},{c}) escapes the BIST sweep"
                    );
                }
            }
        }
    }

    #[test]
    fn bist_sweep_distorts_on_any_single_fault() {
        let sweep = bist_sweep(dim());
        for r in 0..4 {
            for c in 0..4 {
                for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                    let mut fm = FaultMap::new();
                    fm.inject(Coord::new(r, c), fault);
                    assert!(
                        sweep.iter().any(|p| fm.distorts(&p.open)),
                        "fault {fault:?} at ({r},{c}) escapes the executable sweep"
                    );
                }
            }
        }
    }

    #[test]
    fn transient_faults_replay_deterministically() {
        let d = dim();
        let mut a = TransientFaults::new(0.5, 11);
        let mut b = TransientFaults::new(0.5, 11);
        let sa: Vec<Option<Coord>> = (0..64).map(|_| a.sample(d)).collect();
        let sb: Vec<Option<Coord>> = (0..64).map(|_| b.sample(d)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(Option::is_some), "p=0.5 over 64 draws");
        assert!(sa.iter().any(Option::is_none));
        let mut never = TransientFaults::new(0.0, 11);
        assert!((0..64).all(|_| never.sample(d).is_none()));
        let mut always = TransientFaults::new(1.0, 11);
        assert!((0..64).all(|_| always.sample(d).is_some()));
    }

    #[test]
    fn out_of_range_faults_are_inert() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(9, 9), SwitchFault::StuckOpen);
        let intended = Plane::filled(dim(), false);
        assert!(!fm.distorts(&intended));
        assert_eq!(fm.apply(&intended), intended);
    }

    #[test]
    fn fault_report_notes_sorted_unique() {
        let mut r = FaultReport::default();
        r.note(Coord::new(2, 0), SwitchFault::StuckOpen);
        r.note(Coord::new(0, 1), SwitchFault::StuckShort);
        r.note(Coord::new(2, 0), SwitchFault::StuckShort); // duplicate coord
        assert_eq!(r.coords(), vec![Coord::new(0, 1), Coord::new(2, 0)]);
        assert_eq!(r.located[1].1, SwitchFault::StuckOpen, "first wins");
        assert_eq!(r.faulty_rows(), vec![0, 2]);
        assert_eq!(r.faulty_cols(), vec![0, 1]);
        assert!(!r.is_healthy());
        assert!(r.to_string().contains("(2,0)"));
    }
}
