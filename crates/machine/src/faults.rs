//! Switch-box fault injection.
//!
//! The PPA's practicality argument (paper reference \[2\]) rests on its
//! switch boxes being simple enough to implement — and simple hardware
//! still fails. This module models the two stuck-at failure modes of a
//! switch box and lets the test suite ask the questions a bring-up team
//! would: *which bus patterns still work with a given fault map, and does
//! the algorithm layer notice when one doesn't?*
//!
//! * [`SwitchFault::StuckShort`] — the switch can no longer cut the bus:
//!   the node is forced to propagate and can never inject. A cluster
//!   head planted on such a node silently disappears, so downstream
//!   nodes read the *previous* head's value.
//! * [`SwitchFault::StuckOpen`] — the switch can no longer close: the
//!   node always injects, splitting every line it sits on.
//!
//! [`FaultMap::apply`] rewrites an intended Open mask into the effective
//! one; [`FaultMap::distorts`] reports whether a given instruction would
//! be affected (the basis of the built-in self-test in the tests below).

use crate::geometry::{Coord, Dim};
use crate::plane::Plane;

/// A stuck-at switch-box fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchFault {
    /// The switch is stuck in the Short configuration (cannot inject).
    StuckShort,
    /// The switch is stuck in the Open configuration (always injects).
    StuckOpen,
}

/// A set of faulty switch boxes.
#[derive(Debug, Clone, Default)]
pub struct FaultMap {
    faults: Vec<(Coord, SwitchFault)>,
}

impl FaultMap {
    /// An empty (healthy) map.
    pub fn new() -> Self {
        FaultMap::default()
    }

    /// Marks the switch box at `at` as faulty. A later fault at the same
    /// coordinate replaces the earlier one.
    pub fn inject(&mut self, at: Coord, fault: SwitchFault) -> &mut Self {
        self.faults.retain(|(c, _)| *c != at);
        self.faults.push((at, fault));
        self
    }

    /// The fault at `at`, if any.
    pub fn fault_at(&self, at: Coord) -> Option<SwitchFault> {
        self.faults.iter().find(|(c, _)| *c == at).map(|(_, f)| *f)
    }

    /// Number of faulty switch boxes.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the map is healthy.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Rewrites an intended Open mask into the mask the faulty hardware
    /// actually realizes.
    pub fn apply(&self, intended: &Plane<bool>) -> Plane<bool> {
        let mut effective = intended.clone();
        for &(c, fault) in &self.faults {
            if intended.dim().contains(c) {
                effective.set(
                    c,
                    match fault {
                        SwitchFault::StuckShort => false,
                        SwitchFault::StuckOpen => true,
                    },
                );
            }
        }
        effective
    }

    /// Whether this fault map changes the effect of an instruction that
    /// would configure the switches as `intended` — i.e. whether any
    /// fault disagrees with the intended setting at its location.
    pub fn distorts(&self, intended: &Plane<bool>) -> bool {
        self.faults.iter().any(|&(c, fault)| {
            intended.dim().contains(c)
                && match fault {
                    SwitchFault::StuckShort => *intended.get(c),
                    SwitchFault::StuckOpen => !*intended.get(c),
                }
        })
    }

    /// The coordinates whose intended configuration the map overrides.
    pub fn distorted_nodes(&self, intended: &Plane<bool>) -> Vec<Coord> {
        self.faults
            .iter()
            .filter(|&&(c, fault)| {
                intended.dim().contains(c)
                    && match fault {
                        SwitchFault::StuckShort => *intended.get(c),
                        SwitchFault::StuckOpen => !*intended.get(c),
                    }
            })
            .map(|&(c, _)| c)
            .collect()
    }
}

/// A built-in self-test pattern sweep: returns, for an array of shape
/// `dim`, a set of Open masks that together make every switch box both
/// inject and propagate on both axes — any single stuck-at fault distorts
/// at least one pattern.
pub fn bist_patterns(dim: Dim) -> Vec<Plane<bool>> {
    vec![
        // Everyone opens: catches every StuckShort.
        Plane::filled(dim, true),
        // No one opens: catches every StuckOpen.
        Plane::filled(dim, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus;
    use crate::engine::ExecMode;
    use crate::geometry::Direction;

    fn dim() -> Dim {
        Dim::square(4)
    }

    #[test]
    fn inject_and_query() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 2), SwitchFault::StuckOpen);
        assert_eq!(fm.fault_at(Coord::new(1, 2)), Some(SwitchFault::StuckOpen));
        assert_eq!(fm.fault_at(Coord::new(0, 0)), None);
        assert_eq!(fm.len(), 1);
        // Re-injection replaces.
        fm.inject(Coord::new(1, 2), SwitchFault::StuckShort);
        assert_eq!(fm.fault_at(Coord::new(1, 2)), Some(SwitchFault::StuckShort));
        assert_eq!(fm.len(), 1);
    }

    #[test]
    fn apply_overrides_intended_mask() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 0), SwitchFault::StuckShort)
            .inject(Coord::new(2, 2), SwitchFault::StuckOpen);
        let intended = Plane::from_fn(dim(), |c| c.col == 0);
        let effective = fm.apply(&intended);
        assert!(!*effective.get(Coord::new(0, 0)), "stuck-short wins");
        assert!(*effective.get(Coord::new(2, 2)), "stuck-open wins");
        assert!(
            *effective.get(Coord::new(1, 0)),
            "healthy nodes keep intent"
        );
    }

    #[test]
    fn distortion_detection_is_exact() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 1), SwitchFault::StuckOpen);
        // A mask that already opens (1,1) is NOT distorted.
        let agrees = Plane::from_fn(dim(), |c| c.row == 1);
        assert!(!fm.distorts(&agrees));
        // A mask that shorts (1,1) is distorted.
        let disagrees = Plane::from_fn(dim(), |c| c.row == 0);
        assert!(fm.distorts(&disagrees));
        assert_eq!(fm.distorted_nodes(&disagrees), vec![Coord::new(1, 1)]);
    }

    #[test]
    fn stuck_short_swallows_a_cluster_head() {
        // Intended: heads at columns 0 and 2 (East movement). The head at
        // (0,2) is stuck Short, so row 0 becomes a single cluster driven
        // by column 0.
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(0, 2), SwitchFault::StuckShort);
        let intended = Plane::from_fn(dim(), |c| c.col == 0 || c.col == 2);
        let effective = fm.apply(&intended);
        let src = Plane::from_fn(dim(), |c| c.col as i64);
        let healthy = bus::broadcast(
            ExecMode::Sequential,
            dim(),
            &src,
            Direction::East,
            &intended,
        )
        .unwrap();
        let faulty = bus::broadcast(
            ExecMode::Sequential,
            dim(),
            &src,
            Direction::East,
            &effective,
        )
        .unwrap();
        assert_eq!(healthy.row(0), &[0, 0, 2, 2]);
        assert_eq!(faulty.row(0), &[0, 0, 0, 0], "row 0 lost its second head");
        assert_eq!(faulty.row(1), healthy.row(1), "other rows unaffected");
    }

    #[test]
    fn stuck_open_splits_a_line() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(1, 2), SwitchFault::StuckOpen);
        let intended = Plane::from_fn(dim(), |c| c.col == 0);
        let effective = fm.apply(&intended);
        let src = Plane::from_fn(dim(), |c| (c.row * 10 + c.col) as i64);
        let faulty = bus::broadcast(
            ExecMode::Sequential,
            dim(),
            &src,
            Direction::East,
            &effective,
        )
        .unwrap();
        // Row 1 now has heads at cols 0 and 2.
        assert_eq!(faulty.row(1), &[10, 10, 12, 12]);
    }

    #[test]
    fn bist_patterns_catch_any_single_fault() {
        let patterns = bist_patterns(dim());
        for r in 0..4 {
            for c in 0..4 {
                for fault in [SwitchFault::StuckShort, SwitchFault::StuckOpen] {
                    let mut fm = FaultMap::new();
                    fm.inject(Coord::new(r, c), fault);
                    assert!(
                        patterns.iter().any(|p| fm.distorts(p)),
                        "fault {fault:?} at ({r},{c}) escapes the BIST sweep"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_faults_are_inert() {
        let mut fm = FaultMap::new();
        fm.inject(Coord::new(9, 9), SwitchFault::StuckOpen);
        let intended = Plane::filled(dim(), false);
        assert!(!fm.distorts(&intended));
        assert_eq!(fm.apply(&intended), intended);
    }
}
