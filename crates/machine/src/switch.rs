//! Switch-box configurations.
//!
//! Each PPA node contains a switch box traversed by the horizontal and the
//! vertical bus. Per SIMD instruction the controller fixes the data-movement
//! direction; each node then selects one of exactly two local
//! configurations (Section 2 of the paper):
//!
//! * [`SwitchConfig::Open`] — the switch box *disconnects* the bus at this
//!   node and connects the PE's output to the downstream port, so the PE
//!   injects data into (drives) the sub-bus that starts here;
//! * [`SwitchConfig::Short`] — the switch box lets data propagate through
//!   the node; the PE cannot inject, it can only listen.
//!
//! In either configuration the PE *reads* from its upstream port (e.g. the
//! West port when the movement direction is East).

use crate::geometry::Dim;
use crate::plane::Plane;
use std::fmt;

/// The two legal switch-box configurations of a PPA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchConfig {
    /// Bus cut here; this PE drives the downstream sub-bus.
    Open,
    /// Bus passes through; this PE only listens.
    Short,
}

impl SwitchConfig {
    /// `true` for [`SwitchConfig::Open`].
    pub fn is_open(self) -> bool {
        matches!(self, SwitchConfig::Open)
    }

    /// Converts the PPC convention — a *parallel logical* variable whose
    /// `true` elements denote Open switches — into a configuration.
    pub fn from_bool(open: bool) -> Self {
        if open {
            SwitchConfig::Open
        } else {
            SwitchConfig::Short
        }
    }
}

impl fmt::Display for SwitchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SwitchConfig::Open => "Open",
            SwitchConfig::Short => "Short",
        })
    }
}

/// Builds a full switch plane from a boolean Open mask (the form every PPC
/// communication primitive takes its `L` argument in).
pub fn switch_plane(open: &Plane<bool>) -> Plane<SwitchConfig> {
    open.map_free(|&b| SwitchConfig::from_bool(b))
}

/// Convenience: an all-`Short` switch mask (a single cluster per line once
/// any node opens, or an undriven bus otherwise).
pub fn all_short(dim: Dim) -> Plane<bool> {
    Plane::filled(dim, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Coord, Dim};

    #[test]
    fn from_bool_maps_true_to_open() {
        assert_eq!(SwitchConfig::from_bool(true), SwitchConfig::Open);
        assert_eq!(SwitchConfig::from_bool(false), SwitchConfig::Short);
        assert!(SwitchConfig::Open.is_open());
        assert!(!SwitchConfig::Short.is_open());
    }

    #[test]
    fn switch_plane_matches_mask() {
        let dim = Dim::new(2, 2);
        let open = Plane::from_fn(dim, |c| c.row == c.col);
        let sw = switch_plane(&open);
        assert_eq!(*sw.get(Coord::new(0, 0)), SwitchConfig::Open);
        assert_eq!(*sw.get(Coord::new(0, 1)), SwitchConfig::Short);
    }

    #[test]
    fn all_short_has_no_open() {
        assert_eq!(all_short(Dim::new(3, 3)).count_true(), 0);
    }
}
