//! # ppa-machine — a functional simulator of the Polymorphic Processor Array
//!
//! The Polymorphic Processor Array (PPA) is a massively parallel SIMD
//! architecture built around an `n x n` mesh of processing elements (PEs).
//! Every PE carries a *switch box* that connects its four ports to two bus
//! systems — one horizontal bus per row and one vertical bus per column.
//! At every instruction the central SIMD controller selects a single global
//! *data movement direction* (North, East, South or West); each PE then
//! locally chooses one of two switch configurations:
//!
//! * **Short** — the bus passes through the PE, letting data propagate along
//!   the line;
//! * **Open** — the bus is cut at the PE and the PE itself drives the
//!   downstream segment.
//!
//! The Open nodes therefore partition every row/column bus into independent
//! sub-buses ("clusters") and each cluster receives, in a single controller
//! step, the value injected by its Open head. This crate models that
//! machine faithfully enough to carry the complexity claims of the paper
//! *"A Parallel Algorithm for Minimum Cost Path Computation on Polymorphic
//! Processor Array"* (Baglietto, Maresca, Migliardi — IPPS 1998):
//!
//! * [`Plane`] — a rectangular register plane holding one value per PE;
//! * [`Direction`]/[`Dim`]/[`Coord`] — mesh geometry ([`geometry`]);
//! * [`bus`] — the reconfigurable bus semantics (broadcast, wired-OR);
//! * [`Controller`] — SIMD step accounting: every controller instruction
//!   (parallel ALU op, shift, broadcast, bus OR, global OR) costs one step;
//! * [`Machine`] — the assembled machine: geometry + execution engine +
//!   controller, exposing the primitive instruction set;
//! * [`engine`] — sequential or multi-threaded execution of the per-PE
//!   data-parallel loops (threads only affect host wall-clock, never the
//!   simulated step counts);
//! * [`render`] — ASCII visualization of switch settings and bus clusters
//!   (used to reproduce Figure 1 of the paper).
//!
//! ## Bus model
//!
//! Buses are modeled as *circular* (wrap-around) lines: a cluster is an Open
//! node plus the Short nodes that follow it in the data-movement direction,
//! in cyclic order up to (and excluding) the next Open node. The paper's
//! algorithm requires this totality (e.g. statement 16 of
//! `minimum_cost_path` broadcasts from diagonal PEs southwards and reads the
//! result in row `d`, which may lie *above* the injecting PE). A line with
//! no Open node has no driver: [`Machine::broadcast`] reports it as a
//! [`error::MachineError::BusFault`], while the wired-OR treats the whole
//! line as a single cluster.
//!
//! ## Quick example
//!
//! ```
//! use ppa_machine::{Machine, Direction, Plane};
//!
//! let mut m = Machine::new(4, 4);
//! // Row index plane: value r at every PE of row r.
//! let src = Plane::from_fn(m.dim(), |c| c.row as i64);
//! // Open the switch on row 2 only and broadcast southwards: every column
//! // is one cluster driven by the row-2 PE.
//! let open = Plane::from_fn(m.dim(), |c| c.row == 2);
//! let got = m.broadcast(&src, Direction::South, &open).unwrap();
//! assert!(got.iter().all(|&v| v == 2));
//! assert_eq!(m.controller().total_steps(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod bus;
pub mod controller;
pub mod engine;
pub mod error;
pub mod faults;
pub mod geometry;
pub mod isa;
pub mod lane;
pub mod machine;
pub mod packed;
pub mod plane;
pub mod render;
pub mod switch;
pub mod threaded;
pub mod word;

pub use budget::CancelToken;
pub use controller::{Controller, Op, StepReport};
pub use engine::ExecMode;
pub use error::MachineError;
pub use faults::{FaultMap, FaultReport, SwitchFault, TransientFaults};
pub use geometry::{Axis, Coord, Dim, Direction};
pub use isa::{ExecStats, Executor, Fill, MicroOp, ScalarBackend};
pub use lane::LaneLayout;
pub use machine::Machine;
pub use packed::{PackedBackend, PackedMask};
pub use plane::Plane;
pub use ppa_obs::OccupancySampling;
pub use switch::SwitchConfig;
pub use threaded::{SharedMask, ThreadedBackend};
pub use word::{Word, WordWidth, W256, W64};
