//! The typed micro-op ISA and the pluggable execution-backend trait.
//!
//! [`Machine`](crate::Machine) is split into two halves: an *issue* side
//! (step accounting, fault routing, observability — one [`MicroOp`] per
//! controller instruction) and an *execution* side (the per-PE mechanics)
//! behind the [`Executor`] trait. [`ScalarBackend`] reproduces the
//! historical `Vec<T>`-plane semantics verbatim; the packed backend in
//! [`crate::packed`] executes mask logic on u64-word bitsets with a
//! bus-plan cache.
//!
//! The contract every backend must satisfy: for any instruction sequence,
//! the *values* delivered to PEs, the per-class step counts, and the
//! fault-routing behavior are bit-identical across backends. Only
//! host-side wall-clock may differ.

use crate::bus;
use crate::engine::{self, ExecMode};
use crate::error::MachineError;
use crate::geometry::{Axis, Dim, Direction};
use crate::plane::Plane;

/// One controller instruction, as seen by the issue logic.
///
/// Every costed [`Machine`](crate::Machine) method issues exactly one
/// `MicroOp`; the variant determines the step class charged by the
/// controller and which shared metrics counters the instruction feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Elementwise unary ALU operation (also bit-plane extraction).
    Map,
    /// Elementwise binary ALU operation (also mask votes).
    Zip,
    /// Elementwise ternary ALU operation (also mask knockouts).
    Zip3,
    /// Immediate load into every PE.
    Imm,
    /// Copy of a hardwired index register along `Axis`.
    Index(Axis),
    /// Masked register write `where (mask) dst = src`.
    AssignMasked,
    /// Cluster-head broadcast along `Direction`.
    Broadcast(Direction),
    /// Wired-OR over bus clusters along `Direction`.
    BusOr(Direction),
    /// Nearest-neighbour transfer towards `Direction`.
    Shift(Direction),
    /// Controller-side global-OR condition read.
    GlobalOr,
}

impl MicroOp {
    /// The step class this micro-op is charged as.
    pub fn class(self) -> crate::controller::Op {
        use crate::controller::Op;
        match self {
            MicroOp::Map
            | MicroOp::Zip
            | MicroOp::Zip3
            | MicroOp::Imm
            | MicroOp::Index(_)
            | MicroOp::AssignMasked => Op::Alu,
            MicroOp::Broadcast(_) => Op::Broadcast,
            MicroOp::BusOr(_) => Op::BusOr,
            MicroOp::Shift(_) => Op::Shift,
            MicroOp::GlobalOr => Op::GlobalOr,
        }
    }

    /// The data-movement direction, for micro-ops that have one.
    pub fn direction(self) -> Option<Direction> {
        match self {
            MicroOp::Broadcast(d) | MicroOp::BusOr(d) | MicroOp::Shift(d) => Some(d),
            _ => None,
        }
    }

    /// The bus axis engaged by this micro-op, if any.
    pub fn axis(self) -> Option<Axis> {
        match self {
            MicroOp::Index(a) => Some(a),
            _ => self.direction().map(Direction::axis),
        }
    }
}

/// Edge fill policy for [`crate::bus::shift_with`] / `Machine` shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill<T> {
    /// Upstream-edge PEs receive this constant.
    Value(T),
    /// Toroidal wrap: edge PEs receive the wrapped neighbour's value.
    Wrap,
}

/// Backend-internal resource counters, for cache/arena observability.
///
/// All counters are cumulative since backend construction (or the last
/// [`Executor::reset_stats`]). A backend without caches reports zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Bus-plan cache lookups that found a plan for the switch pattern.
    pub plan_hits: u64,
    /// Bus-plan cache lookups that had to derive clusters from scratch.
    pub plan_misses: u64,
    /// Mask allocations served by a fresh host allocation.
    pub arena_fresh: u64,
    /// Mask allocations recycled from the backend's arena.
    pub arena_reused: u64,
}

impl ExecStats {
    /// Fraction of bus-plan lookups served from the cache (0 when none ran).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }

    /// Counterwise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            plan_hits: self.plan_hits.saturating_sub(earlier.plan_hits),
            plan_misses: self.plan_misses.saturating_sub(earlier.plan_misses),
            arena_fresh: self.arena_fresh.saturating_sub(earlier.arena_fresh),
            arena_reused: self.arena_reused.saturating_sub(earlier.arena_reused),
        }
    }
}

/// An execution substrate for the PPA micro-op ISA.
///
/// The executor owns the *mechanics* of each micro-op: how planes and masks
/// are represented and how the per-PE effects are computed. It never touches
/// the controller — step accounting, phase labels, fault application and
/// activity statistics all live in [`Machine`](crate::Machine), which calls
/// exactly one executor method per issued instruction.
///
/// `Mask` is the backend's representation of a `Plane<bool>` used as a bus
/// switch pattern or an enable set inside the bit-serial `min` loop. The
/// scalar backend keeps it as a `Plane<bool>`; the packed backend uses
/// 64-PE-per-word bitsets.
pub trait Executor: std::fmt::Debug + Clone {
    /// Backend representation of a boolean mask plane.
    type Mask: Clone + std::fmt::Debug + PartialEq;

    /// Short backend name used to key wall-clock attribution
    /// (`exec.<NAME>.<class>.ns` metrics, folded-stack frames). The three
    /// built-in backends report `"scalar"`, `"packed"`, `"threaded"`.
    const NAME: &'static str = "custom";

    /// Converts a plane into the backend mask representation (uncosted
    /// mechanics; the machine charges the step where conversion is an
    /// instruction).
    fn mask_from_plane(&mut self, dim: Dim, plane: &Plane<bool>) -> Self::Mask;

    /// Converts a backend mask back to a plane (uncosted mechanics).
    fn mask_to_plane(&self, dim: Dim, mask: &Self::Mask) -> Plane<bool>;

    /// A mask with every PE set to `value`.
    fn mask_filled(&mut self, dim: Dim, value: bool) -> Self::Mask;

    /// Number of set PEs in the mask.
    fn mask_count(&self, dim: Dim, mask: &Self::Mask) -> usize;

    /// Extracts bit `j` of every (non-negative) PE value as a mask.
    fn bit_plane(&mut self, mode: ExecMode, dim: Dim, src: &Plane<i64>, j: u32) -> Self::Mask;

    /// The bit-serial voting step: `keep_low` selects the Min rule
    /// `enable && !bit`; otherwise the Max rule `enable && bit`.
    fn vote(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        enable: &Self::Mask,
        bit: &Self::Mask,
        keep_low: bool,
    ) -> Self::Mask;

    /// The bit-serial knockout step: `keep_low` selects the Min rule
    /// `enable && !(present && bit)`; otherwise the Max rule
    /// `enable && (!present || bit)`.
    fn knockout(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        enable: &Self::Mask,
        present: &Self::Mask,
        bit: &Self::Mask,
        keep_low: bool,
    ) -> Self::Mask;

    /// Wired-OR of `values` over the clusters induced by the `open` mask.
    fn mask_bus_or(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        values: &Self::Mask,
        dir: Direction,
        open: &Self::Mask,
    ) -> Result<Self::Mask, MachineError>;

    /// Cluster-head broadcast with the switch pattern given as a plane.
    ///
    /// `T: 'static` (here and on the other plane-moving micro-ops) lets a
    /// backend hand the plane's shared storage to persistent worker
    /// threads; every plane in the instruction set holds owned values.
    fn broadcast<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        bus::broadcast(mode, dim, src, dir, open)
    }

    /// Cluster-head broadcast with the switch pattern given as a backend
    /// mask.
    fn broadcast_masked<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &Self::Mask,
    ) -> Result<Plane<T>, MachineError>;

    /// Wired-OR with both operands as planes.
    fn bus_or(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        bus::bus_or(mode, dim, values, dir, open)
    }

    /// Nearest-neighbour shift with an edge fill policy.
    fn shift<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        fill: Fill<T>,
    ) -> Result<Plane<T>, MachineError> {
        bus::shift_with(mode, dim, src, dir, fill)
    }

    /// Per-PE plane builder for generic ALU micro-ops.
    fn build<U, F>(&mut self, mode: ExecMode, len: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        engine::build(mode, len, f)
    }

    /// Backend resource counters (cache hits, arena recycling).
    fn stats(&self) -> ExecStats {
        ExecStats::default()
    }

    /// Zeroes the backend resource counters.
    fn reset_stats(&mut self) {}
}

/// The historical eager `Vec<T>`-plane execution substrate.
///
/// Masks are ordinary `Plane<bool>` values and every bus instruction
/// re-derives cluster structure from the Open mask, exactly as the
/// pre-backend-split simulator did. This backend is the semantic reference:
/// the differential suite asserts other backends against it bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Executor for ScalarBackend {
    type Mask = Plane<bool>;

    const NAME: &'static str = "scalar";

    fn mask_from_plane(&mut self, _dim: Dim, plane: &Plane<bool>) -> Plane<bool> {
        plane.clone()
    }

    fn mask_to_plane(&self, _dim: Dim, mask: &Plane<bool>) -> Plane<bool> {
        mask.clone()
    }

    fn mask_filled(&mut self, dim: Dim, value: bool) -> Plane<bool> {
        Plane::filled(dim, value)
    }

    fn mask_count(&self, _dim: Dim, mask: &Plane<bool>) -> usize {
        mask.count_true()
    }

    fn bit_plane(&mut self, mode: ExecMode, dim: Dim, src: &Plane<i64>, j: u32) -> Plane<bool> {
        let s = src.as_slice();
        let data = engine::build(mode, dim.len(), |i| {
            let x = s[i];
            debug_assert!(x >= 0, "bit-serial scan expects non-negative values");
            (x >> j) & 1 == 1
        });
        Plane::from_vec(dim, data)
    }

    fn vote(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        enable: &Plane<bool>,
        bit: &Plane<bool>,
        keep_low: bool,
    ) -> Plane<bool> {
        let (e, b) = (enable.as_slice(), bit.as_slice());
        let data = if keep_low {
            engine::build(mode, dim.len(), |i| e[i] && !b[i])
        } else {
            engine::build(mode, dim.len(), |i| e[i] && b[i])
        };
        Plane::from_vec(dim, data)
    }

    fn knockout(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        enable: &Plane<bool>,
        present: &Plane<bool>,
        bit: &Plane<bool>,
        keep_low: bool,
    ) -> Plane<bool> {
        let (e, p, b) = (enable.as_slice(), present.as_slice(), bit.as_slice());
        let data = if keep_low {
            engine::build(mode, dim.len(), |i| e[i] && !(p[i] && b[i]))
        } else {
            engine::build(mode, dim.len(), |i| e[i] && (!p[i] || b[i]))
        };
        Plane::from_vec(dim, data)
    }

    fn mask_bus_or(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        bus::bus_or(mode, dim, values, dir, open)
    }

    fn broadcast_masked<T: Copy + Send + Sync + 'static>(
        &mut self,
        mode: ExecMode,
        dim: Dim,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        bus::broadcast(mode, dim, src, dir, open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_op_classes_cover_all_step_classes() {
        use crate::controller::Op;
        assert_eq!(MicroOp::Map.class(), Op::Alu);
        assert_eq!(MicroOp::AssignMasked.class(), Op::Alu);
        assert_eq!(MicroOp::Broadcast(Direction::East).class(), Op::Broadcast);
        assert_eq!(MicroOp::BusOr(Direction::South).class(), Op::BusOr);
        assert_eq!(MicroOp::Shift(Direction::West).class(), Op::Shift);
        assert_eq!(MicroOp::GlobalOr.class(), Op::GlobalOr);
    }

    #[test]
    fn micro_op_axis_follows_direction() {
        assert_eq!(MicroOp::Broadcast(Direction::East).axis(), Some(Axis::Row));
        assert_eq!(MicroOp::BusOr(Direction::North).axis(), Some(Axis::Col));
        assert_eq!(MicroOp::Map.axis(), None);
        assert_eq!(MicroOp::Index(Axis::Row).axis(), Some(Axis::Row));
        assert_eq!(
            MicroOp::Shift(Direction::South).direction(),
            Some(Direction::South)
        );
    }

    #[test]
    fn scalar_vote_and_knockout_match_the_paper_rules() {
        let dim = Dim::new(1, 4);
        let mut be = ScalarBackend;
        let e = Plane::from_vec(dim, vec![true, true, true, false]);
        let b = Plane::from_vec(dim, vec![false, true, false, true]);
        let min_votes = be.vote(ExecMode::Sequential, dim, &e, &b, true);
        assert_eq!(min_votes.as_slice(), &[true, false, true, false]);
        let max_votes = be.vote(ExecMode::Sequential, dim, &e, &b, false);
        assert_eq!(max_votes.as_slice(), &[false, true, false, false]);
        let p = Plane::from_vec(dim, vec![true, true, false, false]);
        let min_keep = be.knockout(ExecMode::Sequential, dim, &e, &p, &b, true);
        assert_eq!(min_keep.as_slice(), &[true, false, true, false]);
        let max_keep = be.knockout(ExecMode::Sequential, dim, &e, &p, &b, false);
        assert_eq!(max_keep.as_slice(), &[false, true, true, false]);
    }

    #[test]
    fn exec_stats_hit_rate_and_since() {
        let a = ExecStats {
            plan_hits: 9,
            plan_misses: 1,
            arena_fresh: 4,
            arena_reused: 16,
        };
        assert!((a.plan_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(ExecStats::default().plan_hit_rate(), 0.0);
        let d = a.since(&ExecStats {
            plan_hits: 4,
            plan_misses: 1,
            arena_fresh: 4,
            arena_reused: 6,
        });
        assert_eq!(d.plan_hits, 5);
        assert_eq!(d.plan_misses, 0);
        assert_eq!(d.arena_reused, 10);
    }
}
