//! The machine-word seam behind the packed backends.
//!
//! The paper's bit-plane layout packs one boolean per PE into machine
//! words; nothing about the kernels cares *how wide* those words are, only
//! that they support the handful of bitset operations below. [`Word`]
//! captures that contract so [`PackedBackend`](crate::PackedBackend) and
//! [`ThreadedBackend`](crate::ThreadedBackend) can be generic over width:
//!
//! * [`W64`] — plain `u64`, the historical word and the default type
//!   parameter everywhere, so existing call sites are unchanged.
//! * [`W256`] — a 4x`u64` SWAR struct. Every operation is a fixed-length
//!   limb loop over `[u64; 4]`, which the compiler auto-vectorises on
//!   targets with 128/256-bit vector units; no `std::simd` or intrinsics
//!   are involved, so `#![forbid(unsafe_code)]` holds.
//!
//! The trait is deliberately limb-oriented (`limb`/`set_limb` over 64-bit
//! halves) rather than bit-oriented: the hot kernels in
//! [`packed`](crate::packed) build each 64-bit limb branchlessly exactly as
//! the pre-seam `u64` code did, so `PackedBackend<W64>` compiles to the
//! same inner loops as the historical backend and stays bit-identical to
//! it by construction.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};
use std::str::FromStr;

/// A machine word for packed bit-plane masks.
///
/// Implementations must behave as a `Self::BITS`-wide bitset addressed in
/// little-endian bit order (bit `b` lives in limb `b / 64` at in-limb
/// position `b % 64`). All default methods are derived from
/// [`limb`](Word::limb)/[`set_limb`](Word::set_limb) plus the bitwise
/// operator supertraits, so a new width only has to supply storage.
pub trait Word:
    Copy
    + fmt::Debug
    + PartialEq
    + Eq
    + Send
    + Sync
    + 'static
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + BitXorAssign
    + Not<Output = Self>
{
    /// Width of the word in bits (`64 * LIMBS`).
    const BITS: usize;
    /// Number of 64-bit limbs backing the word.
    const LIMBS: usize;
    /// `Executor::NAME` of `PackedBackend<Self>` — keys the
    /// `exec.<backend>.<class>.ns` metric namespace and bench baselines.
    const PACKED_NAME: &'static str;
    /// `Executor::NAME` of `ThreadedBackend<Self>`.
    const THREADED_NAME: &'static str;

    /// The all-zeros word.
    fn zero() -> Self;
    /// Limb `i` (little-endian: limb 0 holds bits `0..64`).
    fn limb(self, i: usize) -> u64;
    /// Overwrites limb `i`.
    fn set_limb(&mut self, i: usize, v: u64);

    /// The all-ones word.
    fn ones() -> Self {
        let mut w = Self::zero();
        for i in 0..Self::LIMBS {
            w.set_limb(i, !0u64);
        }
        w
    }

    /// Whether bit `b` is set.
    #[inline]
    fn bit(self, b: usize) -> bool {
        (self.limb(b / 64) >> (b % 64)) & 1 == 1
    }

    /// `self` with bit `b` set.
    #[inline]
    fn with_bit(mut self, b: usize) -> Self {
        let li = b / 64;
        self.set_limb(li, self.limb(li) | 1u64 << (b % 64));
        self
    }

    /// Number of set bits.
    #[inline]
    fn count_ones(self) -> usize {
        let mut n = 0;
        for i in 0..Self::LIMBS {
            n += self.limb(i).count_ones() as usize;
        }
        n
    }

    /// Whether no bit is set.
    #[inline]
    fn is_zero(self) -> bool {
        for i in 0..Self::LIMBS {
            if self.limb(i) != 0 {
                return false;
            }
        }
        true
    }

    /// Bits `0..n` set (`n <= BITS`; `n == BITS` gives [`ones`](Word::ones)).
    fn low_mask(n: usize) -> Self {
        debug_assert!(n <= Self::BITS);
        let mut w = Self::zero();
        for i in 0..Self::LIMBS {
            let base = i * 64;
            if n >= base + 64 {
                w.set_limb(i, !0u64);
            } else if n > base {
                w.set_limb(i, (1u64 << (n - base)) - 1);
            }
        }
        w
    }

    /// Bits `start..end` set.
    fn range_mask(start: usize, end: usize) -> Self {
        Self::low_mask(end) & !Self::low_mask(start)
    }

    /// Calls `f` with each set bit position, in ascending order.
    #[inline]
    fn for_each_set_bit(self, mut f: impl FnMut(usize)) {
        for i in 0..Self::LIMBS {
            let mut bits = self.limb(i);
            while bits != 0 {
                f(i * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }

    /// Folds the word's limbs into an FNV-1a accumulator — the bus-plan
    /// fingerprint primitive, width-stable per limb.
    #[inline]
    fn fold_fnv(self, mut h: u64) -> u64 {
        for i in 0..Self::LIMBS {
            h ^= self.limb(i);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The historical 64-bit machine word — an alias so width-generic code can
/// name it symmetrically with [`W256`].
pub type W64 = u64;

impl Word for u64 {
    const BITS: usize = 64;
    const LIMBS: usize = 1;
    const PACKED_NAME: &'static str = "packed";
    const THREADED_NAME: &'static str = "threaded";

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn limb(self, _i: usize) -> u64 {
        self
    }

    #[inline]
    fn set_limb(&mut self, _i: usize, v: u64) {
        *self = v;
    }
}

/// A 256-bit SWAR word: four `u64` limbs, little-endian bit order.
#[derive(Copy, Clone, PartialEq, Eq)]
pub struct W256(pub [u64; 4]);

impl Word for W256 {
    const BITS: usize = 256;
    const LIMBS: usize = 4;
    const PACKED_NAME: &'static str = "packed256";
    const THREADED_NAME: &'static str = "threaded256";

    #[inline]
    fn zero() -> Self {
        W256([0; 4])
    }

    #[inline]
    fn limb(self, i: usize) -> u64 {
        self.0[i]
    }

    #[inline]
    fn set_limb(&mut self, i: usize, v: u64) {
        self.0[i] = v;
    }
}

impl BitAnd for W256 {
    type Output = W256;
    #[inline]
    fn bitand(self, rhs: W256) -> W256 {
        let (a, b) = (self.0, rhs.0);
        W256([a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]])
    }
}

impl BitOr for W256 {
    type Output = W256;
    #[inline]
    fn bitor(self, rhs: W256) -> W256 {
        let (a, b) = (self.0, rhs.0);
        W256([a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]])
    }
}

impl BitXor for W256 {
    type Output = W256;
    #[inline]
    fn bitxor(self, rhs: W256) -> W256 {
        let (a, b) = (self.0, rhs.0);
        W256([a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]])
    }
}

impl BitAndAssign for W256 {
    #[inline]
    fn bitand_assign(&mut self, rhs: W256) {
        for (l, r) in self.0.iter_mut().zip(rhs.0) {
            *l &= r;
        }
    }
}

impl BitOrAssign for W256 {
    #[inline]
    fn bitor_assign(&mut self, rhs: W256) {
        for (l, r) in self.0.iter_mut().zip(rhs.0) {
            *l |= r;
        }
    }
}

impl BitXorAssign for W256 {
    #[inline]
    fn bitxor_assign(&mut self, rhs: W256) {
        for (l, r) in self.0.iter_mut().zip(rhs.0) {
            *l ^= r;
        }
    }
}

impl Not for W256 {
    type Output = W256;
    #[inline]
    fn not(self) -> W256 {
        let a = self.0;
        W256([!a[0], !a[1], !a[2], !a[3]])
    }
}

impl fmt::Debug for W256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Most-significant limb first, so the printout reads as one
        // 256-bit number.
        write!(
            f,
            "W256({:#018x}_{:016x}_{:016x}_{:016x})",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

/// Runtime selection of a packed-backend word width — what `solve --word`
/// and `ServeConfig::word` carry before the type-level dispatch happens.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum WordWidth {
    /// 64-bit words ([`W64`], the default).
    #[default]
    W64,
    /// 256-bit SWAR words ([`W256`]).
    W256,
}

impl WordWidth {
    /// The width in bits.
    pub fn bits(self) -> usize {
        match self {
            WordWidth::W64 => 64,
            WordWidth::W256 => 256,
        }
    }
}

impl fmt::Display for WordWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

impl FromStr for WordWidth {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "64" => Ok(WordWidth::W64),
            "256" => Ok(WordWidth::W256),
            other => Err(format!("unknown word width '{other}' (expected 64 or 256)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference bitset over `Vec<bool>` that any `Word` must agree with.
    fn check_word_semantics<W: Word>() {
        assert_eq!(W::BITS, W::LIMBS * 64);
        assert!(W::zero().is_zero());
        assert_eq!(W::zero().count_ones(), 0);
        assert_eq!(W::ones().count_ones(), W::BITS);
        assert!(!W::ones().is_zero());

        // Single-bit walk: set/test/count each position independently.
        for b in 0..W::BITS {
            let w = W::zero().with_bit(b);
            assert!(w.bit(b), "bit {b}");
            assert_eq!(w.count_ones(), 1);
            for other in 0..W::BITS {
                assert_eq!(w.bit(other), other == b);
            }
            let mut seen = Vec::new();
            w.for_each_set_bit(|i| seen.push(i));
            assert_eq!(seen, vec![b]);
        }

        // low_mask at every cut point, including 0 and BITS.
        for n in 0..=W::BITS {
            let m = W::low_mask(n);
            assert_eq!(m.count_ones(), n, "low_mask({n})");
            for b in 0..W::BITS {
                assert_eq!(m.bit(b), b < n);
            }
        }
    }

    #[test]
    fn w64_matches_reference_bitset_semantics() {
        check_word_semantics::<W64>();
    }

    #[test]
    fn w256_matches_reference_bitset_semantics() {
        check_word_semantics::<W256>();
    }

    #[test]
    fn w256_bitwise_ops_match_per_limb_u64() {
        let a = W256([0xDEAD_BEEF, !0, 0, 0x0123_4567_89AB_CDEF]);
        let b = W256([0xFFFF_0000, 0x5555_5555_5555_5555, 7, !0]);
        for i in 0..4 {
            assert_eq!((a & b).0[i], a.0[i] & b.0[i]);
            assert_eq!((a | b).0[i], a.0[i] | b.0[i]);
            assert_eq!((a ^ b).0[i], a.0[i] ^ b.0[i]);
            assert_eq!((!a).0[i], !a.0[i]);
        }
        let mut c = a;
        c &= b;
        assert_eq!(c, a & b);
        let mut d = a;
        d |= b;
        assert_eq!(d, a | b);
    }

    #[test]
    fn w256_range_mask_straddles_limb_boundaries() {
        // Ranges chosen to start/end at each of the four sub-word (limb)
        // offsets: 0, 64, 128, 192 — plus interior straddles.
        for (s, e) in [
            (0, 64),
            (64, 128),
            (128, 192),
            (192, 256),
            (0, 256),
            (63, 65),
            (127, 130),
            (190, 200),
            (1, 255),
            (200, 200),
        ] {
            let m = W256::range_mask(s, e);
            assert_eq!(m.count_ones(), e - s, "range {s}..{e}");
            for b in 0..256 {
                assert_eq!(m.bit(b), (s..e).contains(&b), "range {s}..{e} bit {b}");
            }
        }
    }

    #[test]
    fn w256_set_bit_iteration_is_ascending_across_limbs() {
        let w = W256::zero()
            .with_bit(0)
            .with_bit(63)
            .with_bit(64)
            .with_bit(130)
            .with_bit(255);
        let mut seen = Vec::new();
        w.for_each_set_bit(|b| seen.push(b));
        assert_eq!(seen, vec![0, 63, 64, 130, 255]);
    }

    #[test]
    fn fnv_fold_distinguishes_widths_and_limbs() {
        // A W256 word and a W64 word with equal limb 0 must not collide
        // once the remaining limbs differ.
        let seed = 0xcbf2_9ce4_8422_2325u64;
        let narrow = 0xABCDu64.fold_fnv(seed);
        let wide_same = W256([0xABCD, 0, 0, 0]).fold_fnv(seed);
        let wide_diff = W256([0xABCD, 1, 0, 0]).fold_fnv(seed);
        assert_ne!(wide_same, wide_diff);
        // Limb-count asymmetry: folding 4 limbs is not folding 1.
        assert_ne!(narrow, wide_same);
    }

    #[test]
    fn word_width_parses_and_prints() {
        assert_eq!("64".parse::<WordWidth>().unwrap(), WordWidth::W64);
        assert_eq!("256".parse::<WordWidth>().unwrap(), WordWidth::W256);
        assert!("128".parse::<WordWidth>().is_err());
        assert_eq!(WordWidth::W256.to_string(), "256");
        assert_eq!(WordWidth::default(), WordWidth::W64);
        assert_eq!(WordWidth::W64.bits(), 64);
        assert_eq!(WordWidth::W256.bits(), 256);
    }
}
