//! Mesh geometry: dimensions, coordinates, directions and line/axis math.
//!
//! The PPA is a two-dimensional mesh. Rows are numbered top to bottom
//! (row 0 is the northernmost row), columns left to right (column 0 is the
//! westernmost column). Data moving **South** therefore travels towards
//! increasing row indices and data moving **East** towards increasing column
//! indices, matching Figure 1 of the paper.

use std::fmt;

/// Dimensions of a PE array (`rows x cols`).
///
/// The paper always uses square `n x n` arrays (one PE per weight-matrix
/// entry), but the machine model supports rectangular arrays as well; the
/// graph algorithms simply require `rows == cols == n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Dim {
    /// Creates a new dimension descriptor.
    ///
    /// # Panics
    /// Panics if either extent is zero — a bus needs at least one node.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "PPA dimensions must be non-zero");
        Dim { rows, cols }
    }

    /// Creates a square `n x n` dimension descriptor.
    pub fn square(n: usize) -> Self {
        Dim::new(n, n)
    }

    /// Total number of processing elements.
    pub fn len(self) -> usize {
        self.rows * self.cols
    }

    /// Whether the array is empty (never true: constructors reject it).
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Whether the array is square.
    pub fn is_square(self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major index of a coordinate.
    #[inline]
    pub fn index(self, c: Coord) -> usize {
        debug_assert!(c.row < self.rows && c.col < self.cols);
        c.row * self.cols + c.col
    }

    /// Coordinate of a flat row-major index.
    #[inline]
    pub fn coord(self, idx: usize) -> Coord {
        debug_assert!(idx < self.len());
        Coord {
            row: idx / self.cols,
            col: idx % self.cols,
        }
    }

    /// Whether the coordinate lies inside the array.
    pub fn contains(self, c: Coord) -> bool {
        c.row < self.rows && c.col < self.cols
    }

    /// Number of bus lines along the given axis: one horizontal bus per row,
    /// one vertical bus per column.
    pub fn lines(self, axis: Axis) -> usize {
        match axis {
            Axis::Row => self.rows,
            Axis::Col => self.cols,
        }
    }

    /// Number of nodes on each bus line of the given axis.
    pub fn line_len(self, axis: Axis) -> usize {
        match axis {
            Axis::Row => self.cols,
            Axis::Col => self.rows,
        }
    }

    /// Flat index of the `pos`-th node of bus `line`, counted in the
    /// direction of data movement `dir` (cyclic position `0` is the node a
    /// moving datum would visit first on a non-wrapping bus).
    #[inline]
    pub fn line_index(self, dir: Direction, line: usize, pos: usize) -> usize {
        let len = self.line_len(dir.axis());
        debug_assert!(pos < len);
        let along = if dir.is_increasing() {
            pos
        } else {
            len - 1 - pos
        };
        match dir.axis() {
            // Horizontal buses: `line` is the row, `along` the column.
            Axis::Row => self.index(Coord::new(line, along)),
            // Vertical buses: `line` is the column, `along` the row.
            Axis::Col => self.index(Coord::new(along, line)),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Coordinate of a PE in the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Row index (0 = northernmost).
    pub row: usize,
    /// Column index (0 = westernmost).
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// The neighbour of this coordinate one step towards `dir`, if it exists
    /// (mesh edges are not wrapped for neighbour communication; the *buses*
    /// wrap, point-to-point `shift` does not unless requested).
    pub fn neighbor(self, dir: Direction, dim: Dim) -> Option<Coord> {
        let (dr, dc) = dir.delta();
        let row = self.row as isize + dr;
        let col = self.col as isize + dc;
        if row < 0 || col < 0 || row >= dim.rows as isize || col >= dim.cols as isize {
            None
        } else {
            Some(Coord::new(row as usize, col as usize))
        }
    }

    /// The neighbour one step towards `dir` with toroidal wrap-around.
    pub fn neighbor_wrapping(self, dir: Direction, dim: Dim) -> Coord {
        let (dr, dc) = dir.delta();
        let row = (self.row as isize + dr).rem_euclid(dim.rows as isize) as usize;
        let col = (self.col as isize + dc).rem_euclid(dim.cols as isize) as usize;
        Coord::new(row, col)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// The four global data-movement directions selectable by the SIMD
/// controller. All PEs move data the same way at any given instruction; only
/// the switch-box configuration (Open/Short) is local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards decreasing row indices.
    North,
    /// Towards increasing column indices.
    East,
    /// Towards increasing row indices.
    South,
    /// Towards decreasing column indices.
    West,
}

impl Direction {
    /// All four directions, in N/E/S/W order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The direction opposite to `self` (the paper's `opposite(x)`).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// Which bus system the direction travels on: East/West use the
    /// horizontal (row) buses, North/South the vertical (column) buses.
    pub fn axis(self) -> Axis {
        match self {
            Direction::East | Direction::West => Axis::Row,
            Direction::North | Direction::South => Axis::Col,
        }
    }

    /// Whether movement increases the coordinate along its axis
    /// (East increases columns, South increases rows).
    pub fn is_increasing(self) -> bool {
        matches!(self, Direction::East | Direction::South)
    }

    /// Row/column delta of a single step in this direction.
    pub fn delta(self) -> (isize, isize) {
        match self {
            Direction::North => (-1, 0),
            Direction::East => (0, 1),
            Direction::South => (1, 0),
            Direction::West => (0, -1),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "North",
            Direction::East => "East",
            Direction::South => "South",
            Direction::West => "West",
        };
        f.write_str(s)
    }
}

/// The two bus systems of the PPA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Horizontal buses: one per row, traversed by East/West movement.
    Row,
    /// Vertical buses: one per column, traversed by North/South movement.
    Col,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::Row => "row",
            Axis::Col => "column",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_indexing_round_trips() {
        let d = Dim::new(3, 5);
        for idx in 0..d.len() {
            assert_eq!(d.index(d.coord(idx)), idx);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        let _ = Dim::new(0, 4);
    }

    #[test]
    fn direction_opposites_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn axis_of_directions() {
        assert_eq!(Direction::East.axis(), Axis::Row);
        assert_eq!(Direction::West.axis(), Axis::Row);
        assert_eq!(Direction::North.axis(), Axis::Col);
        assert_eq!(Direction::South.axis(), Axis::Col);
    }

    #[test]
    fn line_index_east_orders_columns_ascending() {
        let d = Dim::new(2, 4);
        let idxs: Vec<usize> = (0..4)
            .map(|p| d.line_index(Direction::East, 1, p))
            .collect();
        assert_eq!(idxs, vec![4, 5, 6, 7]);
    }

    #[test]
    fn line_index_west_orders_columns_descending() {
        let d = Dim::new(2, 4);
        let idxs: Vec<usize> = (0..4)
            .map(|p| d.line_index(Direction::West, 0, p))
            .collect();
        assert_eq!(idxs, vec![3, 2, 1, 0]);
    }

    #[test]
    fn line_index_south_orders_rows_ascending() {
        let d = Dim::new(3, 2);
        let idxs: Vec<usize> = (0..3)
            .map(|p| d.line_index(Direction::South, 1, p))
            .collect();
        assert_eq!(idxs, vec![1, 3, 5]);
    }

    #[test]
    fn line_index_north_orders_rows_descending() {
        let d = Dim::new(3, 2);
        let idxs: Vec<usize> = (0..3)
            .map(|p| d.line_index(Direction::North, 0, p))
            .collect();
        assert_eq!(idxs, vec![4, 2, 0]);
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let d = Dim::new(2, 2);
        assert_eq!(Coord::new(0, 0).neighbor(Direction::North, d), None);
        assert_eq!(Coord::new(0, 0).neighbor(Direction::West, d), None);
        assert_eq!(
            Coord::new(0, 0).neighbor(Direction::South, d),
            Some(Coord::new(1, 0))
        );
        assert_eq!(
            Coord::new(0, 0).neighbor(Direction::East, d),
            Some(Coord::new(0, 1))
        );
    }

    #[test]
    fn wrapping_neighbor_wraps() {
        let d = Dim::new(3, 3);
        assert_eq!(
            Coord::new(0, 0).neighbor_wrapping(Direction::North, d),
            Coord::new(2, 0)
        );
        assert_eq!(
            Coord::new(2, 2).neighbor_wrapping(Direction::East, d),
            Coord::new(2, 0)
        );
    }
}
