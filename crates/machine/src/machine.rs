//! The assembled PPA machine: geometry + engine + controller.
//!
//! [`Machine`] exposes the *costed* instruction set: every method that
//! corresponds to one SIMD controller instruction records exactly one step
//! of the matching [`Op`] class before executing its per-PE
//! effect through the [`crate::engine`]. Higher layers (the PPC
//! runtime, the algorithms) are written exclusively against this interface,
//! so the controller's tallies are a faithful census of the simulated
//! machine's time steps.

use crate::bus;
use crate::controller::{Controller, Op};
use crate::engine::ExecMode;
use crate::error::MachineError;
use crate::geometry::{Dim, Direction};
use crate::plane::Plane;

/// A Polymorphic Processor Array instance.
#[derive(Debug, Clone)]
pub struct Machine {
    dim: Dim,
    mode: ExecMode,
    controller: Controller,
}

impl Machine {
    /// Creates a `rows x cols` machine running per-PE loops sequentially.
    pub fn new(rows: usize, cols: usize) -> Self {
        Machine::with_mode(Dim::new(rows, cols), ExecMode::Sequential)
    }

    /// Creates a square `n x n` machine (the shape used by all the graph
    /// algorithms: one PE per weight-matrix element).
    pub fn square(n: usize) -> Self {
        Machine::new(n, n)
    }

    /// Creates a machine with an explicit host execution mode.
    pub fn with_mode(dim: Dim, mode: ExecMode) -> Self {
        Machine {
            dim,
            mode,
            controller: Controller::new(),
        }
    }

    /// The array dimensions.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The host execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Changes the host execution mode (does not affect step counts).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Read access to the step-counting controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the controller (for tracing or phase labels).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Zeroes the step counters.
    pub fn reset_steps(&mut self) {
        self.controller.reset();
    }

    fn check<TP>(&self, p: &Plane<TP>) -> Result<(), MachineError> {
        if p.dim() == self.dim {
            Ok(())
        } else {
            Err(MachineError::DimMismatch {
                expected: self.dim,
                found: p.dim(),
            })
        }
    }

    /// Fraction of `true` cells in a mask plane, computed only when an
    /// observer is attached (the count is O(p) host work the simulated
    /// machine would not perform).
    fn occupancy_of(&self, mask: &Plane<bool>) -> Option<f64> {
        if !self.controller.observing() {
            return None;
        }
        let active = mask.as_slice().iter().filter(|&&b| b).count();
        Some(active as f64 / self.dim.len().max(1) as f64)
    }

    /// Number of bus clusters the Open mask induces for `dir` (only when
    /// observing). `None` when some line has no driver — the primitive
    /// itself reports that case as a fault or a single cluster.
    fn clusters_of(&self, dir: Direction, open: &Plane<bool>) -> Option<u64> {
        if !self.controller.observing() {
            return None;
        }
        match bus::cluster_heads(self.dim, dir, open) {
            Ok(heads) => Some(heads.iter().enumerate().filter(|&(i, &h)| i == h).count() as u64),
            Err(_) => None,
        }
    }

    /// Records one bus-class instruction with activity statistics and the
    /// shared bus metrics counters.
    fn record_bus(&mut self, op: Op, occupancy: Option<f64>, clusters: Option<u64>) {
        let label = self.controller.phase();
        self.controller
            .record_observed(op, label, occupancy, clusters);
        let len = self.dim.len();
        if let Some(m) = self.controller.metrics_mut() {
            m.inc("bus.transactions", 1);
            if let Some(k) = clusters {
                m.inc("bus.clusters", k);
            }
            if let Some(o) = occupancy {
                m.inc("mask.active_pes", (o * len as f64).round() as u64);
            }
        }
    }

    // ----- communication instructions -------------------------------------

    /// `broadcast(src, dir, L)`: one controller step; every PE receives the
    /// `src` value of the Open node heading its bus cluster.
    pub fn broadcast<T: Copy + Send + Sync>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<T>, MachineError> {
        let (occ, clusters) = (self.occupancy_of(open), self.clusters_of(dir, open));
        self.record_bus(Op::Broadcast, occ, clusters);
        bus::broadcast(self.mode, self.dim, src, dir, open)
    }

    /// Wired-OR over bus clusters: one controller step.
    pub fn bus_or(
        &mut self,
        values: &Plane<bool>,
        dir: Direction,
        open: &Plane<bool>,
    ) -> Result<Plane<bool>, MachineError> {
        let (occ, clusters) = (self.occupancy_of(open), self.clusters_of(dir, open));
        self.record_bus(Op::BusOr, occ, clusters);
        bus::bus_or(self.mode, self.dim, values, dir, open)
    }

    /// `shift(src, dir)`: one controller step; data moves one PE towards
    /// `dir`, upstream-edge PEs receive `fill`.
    pub fn shift<T: Copy + Send + Sync>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
        fill: T,
    ) -> Result<Plane<T>, MachineError> {
        self.controller.record(Op::Shift);
        bus::shift(self.mode, self.dim, src, dir, fill)
    }

    /// Toroidal `shift`: one controller step.
    pub fn shift_wrapping<T: Copy + Send + Sync>(
        &mut self,
        src: &Plane<T>,
        dir: Direction,
    ) -> Result<Plane<T>, MachineError> {
        self.controller.record(Op::Shift);
        bus::shift_wrapping(self.mode, self.dim, src, dir)
    }

    /// Global-OR: one controller step; `true` iff any PE raises `flags`.
    /// This is the controller-side condition read used by data-dependent
    /// loops such as the MCP termination test (statement 20).
    pub fn global_or(&mut self, flags: &Plane<bool>) -> Result<bool, MachineError> {
        self.check(flags)?;
        let occ = self.occupancy_of(flags);
        let label = self.controller.phase();
        self.controller
            .record_observed(Op::GlobalOr, label, occ, None);
        let f = flags.as_slice();
        Ok(crate::engine::reduce(
            self.mode,
            self.dim.len(),
            false,
            |i| f[i],
            |a, b| a || b,
        ))
    }

    // ----- ALU instructions ------------------------------------------------

    /// Elementwise unary operation: one controller step.
    pub fn map<T, U, F>(&mut self, src: &Plane<T>, f: F) -> Result<Plane<U>, MachineError>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.check(src)?;
        self.controller.record(Op::Alu);
        let s = src.as_slice();
        let data = crate::engine::build(self.mode, self.dim.len(), |i| f(&s[i]));
        Ok(Plane::from_vec(self.dim, data))
    }

    /// Elementwise binary operation: one controller step.
    pub fn zip<A, B, U, F>(
        &mut self,
        a: &Plane<A>,
        b: &Plane<B>,
        f: F,
    ) -> Result<Plane<U>, MachineError>
    where
        A: Sync,
        B: Sync,
        U: Send,
        F: Fn(&A, &B) -> U + Sync,
    {
        self.check(a)?;
        self.check(b)?;
        self.controller.record(Op::Alu);
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let data = crate::engine::build(self.mode, self.dim.len(), |i| f(&sa[i], &sb[i]));
        Ok(Plane::from_vec(self.dim, data))
    }

    /// Elementwise ternary operation: one controller step.
    pub fn zip3<A, B, C, U, F>(
        &mut self,
        a: &Plane<A>,
        b: &Plane<B>,
        c: &Plane<C>,
        f: F,
    ) -> Result<Plane<U>, MachineError>
    where
        A: Sync,
        B: Sync,
        C: Sync,
        U: Send,
        F: Fn(&A, &B, &C) -> U + Sync,
    {
        self.check(a)?;
        self.check(b)?;
        self.check(c)?;
        self.controller.record(Op::Alu);
        let (sa, sb, sc) = (a.as_slice(), b.as_slice(), c.as_slice());
        let data = crate::engine::build(self.mode, self.dim.len(), |i| f(&sa[i], &sb[i], &sc[i]));
        Ok(Plane::from_vec(self.dim, data))
    }

    /// Loads an immediate into every PE: one controller step.
    pub fn imm<T: Clone + Send + Sync>(&mut self, value: T) -> Plane<T> {
        self.controller.record(Op::Alu);
        Plane::filled(self.dim, value)
    }

    /// The hardwired `ROW` register (each PE knows its row index):
    /// one controller step to copy it into a plane.
    pub fn row_index(&mut self) -> Plane<i64> {
        self.controller.record(Op::Alu);
        Plane::from_fn(self.dim, |c| c.row as i64)
    }

    /// The hardwired `COL` register: one controller step.
    pub fn col_index(&mut self) -> Plane<i64> {
        self.controller.record(Op::Alu);
        Plane::from_fn(self.dim, |c| c.col as i64)
    }

    /// Masked assignment `where (mask) dst = src`: one controller step.
    /// PEs where `mask` is false keep their previous `dst` value — the
    /// SIMD `where` construct gates register *writes*, not instruction
    /// issue.
    pub fn assign_masked<T>(
        &mut self,
        dst: &mut Plane<T>,
        src: &Plane<T>,
        mask: &Plane<bool>,
    ) -> Result<(), MachineError>
    where
        T: Copy + Send + Sync,
    {
        self.check(dst)?;
        self.check(src)?;
        self.check(mask)?;
        let occ = self.occupancy_of(mask);
        let label = self.controller.phase();
        self.controller.record_observed(Op::Alu, label, occ, None);
        let len = self.dim.len();
        if let Some(mx) = self.controller.metrics_mut() {
            mx.inc("mask.writes", 1);
            if let Some(o) = occ {
                mx.inc("mask.active_pes", (o * len as f64).round() as u64);
            }
        }
        let (d, s, m) = (dst.as_slice(), src.as_slice(), mask.as_slice());
        let data = crate::engine::build(
            self.mode,
            self.dim.len(),
            |i| if m[i] { s[i] } else { d[i] },
        );
        *dst = Plane::from_vec(self.dim, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Op;
    use crate::geometry::Coord;

    #[test]
    fn every_primitive_costs_one_step() {
        let mut m = Machine::square(4);
        let p = m.imm(1i64);
        assert_eq!(m.controller().steps(Op::Alu), 1);
        let open = m.imm(true);
        assert_eq!(m.controller().steps(Op::Alu), 2);
        m.broadcast(&p, Direction::East, &open).unwrap();
        assert_eq!(m.controller().steps(Op::Broadcast), 1);
        let flags = m.map(&p, |&v| v > 0).unwrap();
        m.bus_or(&flags, Direction::South, &open).unwrap();
        assert_eq!(m.controller().steps(Op::BusOr), 1);
        m.shift(&p, Direction::West, 0).unwrap();
        assert_eq!(m.controller().steps(Op::Shift), 1);
        m.global_or(&flags).unwrap();
        assert_eq!(m.controller().steps(Op::GlobalOr), 1);
    }

    #[test]
    fn zip_and_zip3_compute_elementwise() {
        let mut m = Machine::square(3);
        let a = Plane::from_fn(m.dim(), |c| c.row as i64);
        let b = Plane::from_fn(m.dim(), |c| c.col as i64);
        let s = m.zip(&a, &b, |x, y| x + y).unwrap();
        assert_eq!(*s.at(2, 1), 3);
        let mask = Plane::from_fn(m.dim(), |c| c.row == 0);
        let t = m
            .zip3(&s, &a, &mask, |x, y, &k| if k { *x } else { *y })
            .unwrap();
        assert_eq!(*t.at(0, 2), 2);
        assert_eq!(*t.at(1, 2), 1);
    }

    #[test]
    fn assign_masked_preserves_unmasked() {
        let mut m = Machine::square(2);
        let mut dst = Plane::filled(m.dim(), 0i64);
        let src = Plane::filled(m.dim(), 9i64);
        let mask = Plane::from_fn(m.dim(), |c| c.col == 1);
        m.assign_masked(&mut dst, &src, &mask).unwrap();
        assert_eq!(*dst.at(0, 0), 0);
        assert_eq!(*dst.at(0, 1), 9);
    }

    #[test]
    fn global_or_detects_single_flag() {
        let mut m = Machine::square(5);
        let mut flags = Plane::filled(m.dim(), false);
        assert!(!m.global_or(&flags).unwrap());
        flags.set(Coord::new(4, 4), true);
        assert!(m.global_or(&flags).unwrap());
    }

    #[test]
    fn row_col_index_registers() {
        let mut m = Machine::new(2, 3);
        let r = m.row_index();
        let c = m.col_index();
        assert_eq!(*r.at(1, 2), 1);
        assert_eq!(*c.at(1, 2), 2);
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let mut m = Machine::square(3);
        let wrong = Plane::filled(Dim::new(2, 3), 1i64);
        assert!(matches!(
            m.map(&wrong, |&v: &i64| v),
            Err(MachineError::DimMismatch { .. })
        ));
    }

    #[test]
    fn reset_steps_zeroes_counters() {
        let mut m = Machine::square(2);
        let _ = m.imm(0u8);
        m.reset_steps();
        assert_eq!(m.controller().total_steps(), 0);
    }
}
